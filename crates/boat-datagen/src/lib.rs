//! The Agrawal–Imielinski–Swami synthetic classification benchmark \[AIS93\].
//!
//! The BOAT paper's entire evaluation (§5) runs on this generator — the same
//! one used by SLIQ, SPRINT, PUBLIC and RainForest. Each tuple has nine
//! predictor attributes describing a (fictional) person:
//!
//! | attribute  | type | distribution |
//! |---|---|---|
//! | `salary`     | numeric | uniform 20 000 … 150 000 |
//! | `commission` | numeric | 0 if `salary ≥ 75 000`, else uniform 10 000 … 75 000 |
//! | `age`        | numeric | uniform 20 … 80 |
//! | `elevel`     | categorical(5)  | uniform 0 … 4 |
//! | `car`        | categorical(20) | uniform |
//! | `zipcode`    | categorical(9)  | uniform |
//! | `hvalue`     | numeric | uniform `0.5·k·100 000 … 1.5·k·100 000`, `k` from `zipcode` |
//! | `hyears`     | numeric | uniform 1 … 30 |
//! | `loan`       | numeric | uniform 0 … 500 000 |
//!
//! Ten published classification functions assign the binary class label
//! ("Group A" = label 0, "Group B" = label 1). The paper uses functions 1, 6
//! and 7; all ten are implemented. The generator also supports the paper's
//! evaluation knobs: label **noise** (Figures 7–9), **extra random
//! attributes** (Figures 10–11), and a **perturbed Function 1** whose
//! decision surface changes in part of the attribute space (Figure 14's
//! distribution-drift experiment).
//!
//! [`SyntheticSource`] implements [`RecordSource`] directly: every `scan()`
//! regenerates the identical pseudo-random stream from the configured seed,
//! so a training run can stream from the generator *without materializing
//! the training set* — the paper's data-warehouse motivation. Use
//! [`GeneratorConfig::materialize`] to write a [`FileDataset`] when on-disk
//! behaviour (and scan-cost realism) is wanted.

#![warn(missing_docs)]

pub mod adversarial;
pub mod instability;

use boat_data::dataset::{RecordScan, RecordSource};
use boat_data::{
    Attribute, Field, FileDataset, FileDatasetWriter, IoStats, Record, Result, Schema,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;

/// Which published classification function labels the tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are the published function numbers
pub enum LabelFunction {
    F1,
    F2,
    F3,
    F4,
    F5,
    F6,
    F7,
    F8,
    F9,
    F10,
    /// Function 1 with the decision surface *changed* in the high-salary
    /// region (`salary > 100 000`): there, group A is `40 ≤ age < 60`
    /// (the complement of F1's predicate). Models the paper's Figure 14
    /// "distribution changes in part of the attribute space".
    F1Drift,
}

impl LabelFunction {
    /// Parse `1..=10` into the corresponding function.
    pub fn from_number(n: u32) -> Option<Self> {
        use LabelFunction::*;
        Some(match n {
            1 => F1,
            2 => F2,
            3 => F3,
            4 => F4,
            5 => F5,
            6 => F6,
            7 => F7,
            8 => F8,
            9 => F9,
            10 => F10,
            _ => return None,
        })
    }

    /// Evaluate the function on the nine base attribute values.
    /// Returns `true` for "Group A" (label 0).
    pub fn is_group_a(self, t: &BaseTuple) -> bool {
        use LabelFunction::*;
        let total = t.salary + t.commission;
        match self {
            F1 => t.age < 40.0 || t.age >= 60.0,
            F1Drift => {
                if t.salary > 100_000.0 {
                    (40.0..60.0).contains(&t.age)
                } else {
                    t.age < 40.0 || t.age >= 60.0
                }
            }
            F2 => {
                (t.age < 40.0 && (50_000.0..=100_000.0).contains(&t.salary))
                    || ((40.0..60.0).contains(&t.age) && (75_000.0..=125_000.0).contains(&t.salary))
                    || (t.age >= 60.0 && (25_000.0..=75_000.0).contains(&t.salary))
            }
            F3 => {
                (t.age < 40.0 && t.elevel <= 1)
                    || ((40.0..60.0).contains(&t.age) && (1..=3).contains(&t.elevel))
                    || (t.age >= 60.0 && (2..=4).contains(&t.elevel))
            }
            F4 => {
                if t.age < 40.0 {
                    if t.elevel <= 1 {
                        (25_000.0..=75_000.0).contains(&t.salary)
                    } else {
                        (50_000.0..=100_000.0).contains(&t.salary)
                    }
                } else if t.age < 60.0 {
                    if (1..=3).contains(&t.elevel) {
                        (50_000.0..=100_000.0).contains(&t.salary)
                    } else {
                        (75_000.0..=125_000.0).contains(&t.salary)
                    }
                } else if (2..=4).contains(&t.elevel) {
                    (50_000.0..=100_000.0).contains(&t.salary)
                } else {
                    (25_000.0..=75_000.0).contains(&t.salary)
                }
            }
            F5 => {
                if t.age < 40.0 {
                    if (50_000.0..=100_000.0).contains(&t.salary) {
                        (100_000.0..=300_000.0).contains(&t.loan)
                    } else {
                        (200_000.0..=400_000.0).contains(&t.loan)
                    }
                } else if t.age < 60.0 {
                    if (75_000.0..=125_000.0).contains(&t.salary) {
                        (200_000.0..=400_000.0).contains(&t.loan)
                    } else {
                        (300_000.0..=500_000.0).contains(&t.loan)
                    }
                } else if (25_000.0..=75_000.0).contains(&t.salary) {
                    (300_000.0..=500_000.0).contains(&t.loan)
                } else {
                    (100_000.0..=300_000.0).contains(&t.loan)
                }
            }
            F6 => {
                (t.age < 40.0 && (50_000.0..=100_000.0).contains(&total))
                    || ((40.0..60.0).contains(&t.age) && (75_000.0..=125_000.0).contains(&total))
                    || (t.age >= 60.0 && (25_000.0..=75_000.0).contains(&total))
            }
            F7 => 0.67 * total - 0.2 * t.loan - 20_000.0 > 0.0,
            F8 => 0.67 * total - 5_000.0 * t.elevel as f64 - 20_000.0 > 0.0,
            F9 => 0.67 * total - 5_000.0 * t.elevel as f64 - 0.2 * t.loan - 10_000.0 > 0.0,
            F10 => {
                let equity = 0.1 * t.hvalue * (t.hyears - 20.0).max(0.0);
                0.67 * total - 5_000.0 * t.elevel as f64 + 0.2 * equity - 10_000.0 > 0.0
            }
        }
    }
}

/// The nine base attribute values of one tuple, before labelling.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field names are the published attribute names
pub struct BaseTuple {
    pub salary: f64,
    pub commission: f64,
    pub age: f64,
    pub elevel: u32,
    pub car: u32,
    pub zipcode: u32,
    pub hvalue: f64,
    pub hyears: f64,
    pub loan: f64,
}

impl BaseTuple {
    /// Draw one tuple from the published attribute distributions.
    ///
    /// Monetary attributes are whole currency units (integers stored as
    /// `f64`), matching the original generator's integer tuples — this is
    /// also what makes the RainForest AVC memory budgets of the paper's
    /// experiments meaningful (AVC-set size is the distinct-value count).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let salary = rng.random_range(20_000.0f64..150_000.0).floor();
        let commission = if salary >= 75_000.0 {
            0.0
        } else {
            rng.random_range(10_000.0f64..75_000.0).floor()
        };
        // Integer-valued, inclusive upper end (61 distinct ages). The
        // inclusive domain matters: it is what makes F1's root split at 59
        // strictly better than the one at 39 rather than an exact tie.
        let age = rng.random_range(20u32..=80) as f64;
        let elevel = rng.random_range(0..5u32);
        let car = rng.random_range(0..20u32);
        let zipcode = rng.random_range(0..9u32);
        // hvalue depends on zipcode: k in 1..=9.
        let k = (zipcode + 1) as f64;
        let hvalue = rng
            .random_range(0.5 * k * 100_000.0..1.5 * k * 100_000.0)
            .floor();
        let hyears = rng.random_range(1u32..=30) as f64;
        let loan = rng.random_range(0.0f64..500_000.0).floor();
        BaseTuple {
            salary,
            commission,
            age,
            elevel,
            car,
            zipcode,
            hvalue,
            hyears,
            loan,
        }
    }
}

/// Configuration of the synthetic workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    function: LabelFunction,
    seed: u64,
    noise: f64,
    extra_attrs: usize,
}

impl GeneratorConfig {
    /// A generator for the given labelling function, with no noise and no
    /// extra attributes.
    pub fn new(function: LabelFunction) -> Self {
        GeneratorConfig {
            function,
            seed: 0xB0A7,
            noise: 0.0,
            extra_attrs: 0,
        }
    }

    /// Set the pseudo-random seed (scans are deterministic in the seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the label-noise probability: with probability `p`, a tuple's
    /// label is flipped (Figures 7–9 sweep this from 2% to 10%).
    pub fn with_noise(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "noise must be a probability");
        self.noise = p;
        self
    }

    /// Append `k` extra numeric attributes with uniform random values in
    /// `[0, 1)` (Figures 10–11). They carry no predictive power, so the
    /// final tree is unchanged; only construction cost grows.
    pub fn with_extra_attrs(mut self, k: usize) -> Self {
        self.extra_attrs = k;
        self
    }

    /// The labelling function.
    pub fn function(&self) -> LabelFunction {
        self.function
    }

    /// The schema of generated records (9 base attributes + extras).
    pub fn schema(&self) -> Arc<Schema> {
        let mut attrs = vec![
            Attribute::numeric("salary"),
            Attribute::numeric("commission"),
            Attribute::numeric("age"),
            Attribute::categorical("elevel", 5),
            Attribute::categorical("car", 20),
            Attribute::categorical("zipcode", 9),
            Attribute::numeric("hvalue"),
            Attribute::numeric("hyears"),
            Attribute::numeric("loan"),
        ];
        for i in 0..self.extra_attrs {
            attrs.push(Attribute::numeric(format!("extra{i}")));
        }
        Schema::shared(attrs, 2).expect("generator schema is statically valid")
    }

    /// A streaming, resettable source of `n` synthetic records.
    pub fn source(&self, n: u64) -> SyntheticSource {
        SyntheticSource {
            config: self.clone(),
            schema: self.schema(),
            n,
            stats: IoStats::new(),
        }
    }

    /// Generate `n` records into memory.
    pub fn generate_vec(&self, n: usize) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n).map(|_| self.generate_one(&mut rng)).collect()
    }

    /// Materialize `n` records into a dataset file at `path`.
    pub fn materialize(&self, path: impl AsRef<Path>, n: u64) -> Result<FileDataset> {
        self.materialize_with_stats(path, n, IoStats::new())
    }

    /// Like [`GeneratorConfig::materialize`], reporting I/O into `stats`.
    pub fn materialize_with_stats(
        &self,
        path: impl AsRef<Path>,
        n: u64,
        stats: IoStats,
    ) -> Result<FileDataset> {
        let mut writer = FileDatasetWriter::create(path, self.schema(), stats)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..n {
            writer.append(&self.generate_one(&mut rng))?;
        }
        writer.finish()
    }

    fn generate_one(&self, rng: &mut StdRng) -> Record {
        let base = BaseTuple::generate(rng);
        let mut label: u16 = if self.function.is_group_a(&base) {
            0
        } else {
            1
        };
        // Label noise consumes one rng draw per tuple regardless of p, so
        // the attribute stream is identical across noise levels (as in the
        // paper, where noise perturbs labels of the same underlying data).
        let flip = rng.random::<f64>() < self.noise;
        if flip {
            label = 1 - label;
        }
        let mut fields = Vec::with_capacity(9 + self.extra_attrs);
        fields.push(Field::Num(base.salary));
        fields.push(Field::Num(base.commission));
        fields.push(Field::Num(base.age));
        fields.push(Field::Cat(base.elevel));
        fields.push(Field::Cat(base.car));
        fields.push(Field::Cat(base.zipcode));
        fields.push(Field::Num(base.hvalue));
        fields.push(Field::Num(base.hyears));
        fields.push(Field::Num(base.loan));
        for _ in 0..self.extra_attrs {
            fields.push(Field::Num(rng.random::<f64>()));
        }
        Record::new(fields, label)
    }
}

/// A resettable streaming source of synthetic records: every scan replays
/// the identical pseudo-random stream.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    config: GeneratorConfig,
    schema: Arc<Schema>,
    n: u64,
    stats: IoStats,
}

impl RecordSource for SyntheticSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let config = self.config.clone();
        let stats = self.stats.clone();
        let width = self.schema.record_width() as u64;
        Ok(Box::new((0..self.n).map(move |_| {
            stats.record_read(1, width);
            Ok(config.generate_one(&mut rng))
        })))
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::dataset::RecordSource;

    #[test]
    fn schema_has_nine_base_attributes() {
        let s = GeneratorConfig::new(LabelFunction::F1).schema();
        assert_eq!(s.n_attributes(), 9);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.attr_index("salary"), Some(0));
        assert_eq!(s.attr_index("loan"), Some(8));
        assert_eq!(s.numeric_attrs().count(), 6);
        assert_eq!(s.categorical_attrs().count(), 3);
    }

    #[test]
    fn extra_attrs_extend_schema() {
        let s = GeneratorConfig::new(LabelFunction::F1)
            .with_extra_attrs(4)
            .schema();
        assert_eq!(s.n_attributes(), 13);
        assert_eq!(s.attr_index("extra3"), Some(12));
    }

    #[test]
    fn records_validate_against_schema() {
        let cfg = GeneratorConfig::new(LabelFunction::F7)
            .with_seed(9)
            .with_extra_attrs(2);
        let schema = cfg.schema();
        for r in cfg.generate_vec(500) {
            r.validate(&schema).unwrap();
        }
    }

    #[test]
    fn attribute_ranges_match_the_published_distributions() {
        let cfg = GeneratorConfig::new(LabelFunction::F1).with_seed(3);
        for r in cfg.generate_vec(2000) {
            let salary = r.num(0);
            let commission = r.num(1);
            assert_eq!(salary.fract(), 0.0, "monetary attributes are integers");
            assert_eq!(commission.fract(), 0.0);
            assert_eq!(r.num(6).fract(), 0.0);
            assert_eq!(r.num(8).fract(), 0.0);
            assert!((20_000.0..150_000.0).contains(&salary));
            if salary >= 75_000.0 {
                assert_eq!(commission, 0.0);
            } else {
                assert!((10_000.0..75_000.0).contains(&commission));
            }
            assert!((20.0..=80.0).contains(&r.num(2)));
            assert!(r.cat(3) < 5);
            assert!(r.cat(4) < 20);
            assert!(r.cat(5) < 9);
            let k = (r.cat(5) + 1) as f64;
            assert!((0.5 * k * 100_000.0..1.5 * k * 100_000.0).contains(&r.num(6)));
            assert!((1.0..=30.0).contains(&r.num(7)));
            assert!((0.0..500_000.0).contains(&r.num(8)));
        }
    }

    #[test]
    fn f1_labels_follow_the_age_predicate() {
        let cfg = GeneratorConfig::new(LabelFunction::F1).with_seed(4);
        for r in cfg.generate_vec(1000) {
            let age = r.num(2);
            let expect_a = !(40.0..60.0).contains(&age);
            assert_eq!(r.label() == 0, expect_a);
        }
    }

    #[test]
    fn f7_labels_follow_the_linear_rule() {
        let cfg = GeneratorConfig::new(LabelFunction::F7).with_seed(5);
        for r in cfg.generate_vec(1000) {
            let disposable = 0.67 * (r.num(0) + r.num(1)) - 0.2 * r.num(8) - 20_000.0;
            assert_eq!(r.label() == 0, disposable > 0.0);
        }
    }

    #[test]
    fn f6_labels_follow_the_three_band_rule() {
        let cfg = GeneratorConfig::new(LabelFunction::F6).with_seed(13);
        for r in cfg.generate_vec(1000) {
            let (salary, commission, age) = (r.num(0), r.num(1), r.num(2));
            let total = salary + commission;
            let expect_a = (age < 40.0 && (50_000.0..=100_000.0).contains(&total))
                || ((40.0..60.0).contains(&age) && (75_000.0..=125_000.0).contains(&total))
                || (age >= 60.0 && (25_000.0..=75_000.0).contains(&total));
            assert_eq!(r.label() == 0, expect_a);
        }
    }

    #[test]
    fn f9_labels_follow_the_four_attribute_rule() {
        let cfg = GeneratorConfig::new(LabelFunction::F9).with_seed(14);
        for r in cfg.generate_vec(1000) {
            let disposable = 0.67 * (r.num(0) + r.num(1))
                - 5_000.0 * r.cat(3) as f64
                - 0.2 * r.num(8)
                - 10_000.0;
            assert_eq!(r.label() == 0, disposable > 0.0);
        }
    }

    #[test]
    fn f10_labels_use_home_equity() {
        let cfg = GeneratorConfig::new(LabelFunction::F10).with_seed(15);
        for r in cfg.generate_vec(1000) {
            let equity = 0.1 * r.num(6) * (r.num(7) - 20.0).max(0.0);
            let disposable =
                0.67 * (r.num(0) + r.num(1)) - 5_000.0 * r.cat(3) as f64 + 0.2 * equity - 10_000.0;
            assert_eq!(r.label() == 0, disposable > 0.0);
        }
    }

    #[test]
    fn every_function_produces_both_classes() {
        for n in 1..=10 {
            let f = LabelFunction::from_number(n).unwrap();
            let cfg = GeneratorConfig::new(f).with_seed(6);
            let labels: Vec<u16> = cfg.generate_vec(3000).iter().map(|r| r.label()).collect();
            let a = labels.iter().filter(|&&l| l == 0).count();
            assert!(
                a > 0 && a < labels.len(),
                "function F{n} is degenerate: {a} group-A"
            );
        }
    }

    #[test]
    fn from_number_rejects_out_of_range() {
        assert_eq!(LabelFunction::from_number(0), None);
        assert_eq!(LabelFunction::from_number(11), None);
        assert_eq!(LabelFunction::from_number(6), Some(LabelFunction::F6));
    }

    #[test]
    fn noise_flips_roughly_p_of_labels() {
        let clean = GeneratorConfig::new(LabelFunction::F1).with_seed(7);
        let noisy = clean.clone().with_noise(0.10);
        let a = clean.generate_vec(20_000);
        let b = noisy.generate_vec(20_000);
        // Same seed + same draw structure => identical attributes.
        assert_eq!(a[0].num(0), b[0].num(0));
        let flipped = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.label() != y.label())
            .count();
        let frac = flipped as f64 / 20_000.0;
        assert!(
            (frac - 0.10).abs() < 0.01,
            "flip fraction {frac} far from 10%"
        );
    }

    #[test]
    fn drift_function_differs_only_in_high_salary_region() {
        let base = GeneratorConfig::new(LabelFunction::F1).with_seed(8);
        let drift = GeneratorConfig::new(LabelFunction::F1Drift).with_seed(8);
        for (x, y) in base.generate_vec(5000).iter().zip(drift.generate_vec(5000)) {
            if x.num(0) <= 100_000.0 {
                assert_eq!(x.label(), y.label(), "low-salary region must be unchanged");
            } else {
                assert_ne!(x.label(), y.label(), "high-salary region must be inverted");
            }
        }
    }

    #[test]
    fn source_scans_are_deterministic_and_counted() {
        let cfg = GeneratorConfig::new(LabelFunction::F6).with_seed(10);
        let src = cfg.source(100);
        let a = src.collect_records().unwrap();
        let b = src.collect_records().unwrap();
        assert_eq!(a, b, "rescanning a synthetic source must replay the stream");
        assert_eq!(src.stats().snapshot().scans, 2);
        assert_eq!(src.len(), 100);
    }

    #[test]
    fn source_matches_generate_vec() {
        let cfg = GeneratorConfig::new(LabelFunction::F2).with_seed(11);
        assert_eq!(
            cfg.source(50).collect_records().unwrap(),
            cfg.generate_vec(50)
        );
    }

    #[test]
    fn materialize_roundtrips() {
        let dir = std::env::temp_dir().join("boat-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f1.boat");
        let cfg = GeneratorConfig::new(LabelFunction::F1).with_seed(12);
        let ds = cfg.materialize(&path, 200).unwrap();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.collect_records().unwrap(), cfg.generate_vec(200));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(1)
            .generate_vec(10);
        let b = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(2)
            .generate_vec(10);
        assert_ne!(a, b);
    }
}
