//! The paper's Figure 12 *instability* scenario.
//!
//! Figure 12 illustrates why impurity-based split selection can destabilize
//! BOAT's bootstrapping: a numeric attribute with 81 values (0…80) where the
//! impurity function has two near-tied minima, at attribute values 20 and
//! 60. Inserting or deleting a handful of tuples makes the *global* minimum
//! jump between the two, so bootstrap repetitions split about half the time
//! near 20 and half the time near 60, the subtrees disagree, and tree growth
//! stops at that node.
//!
//! [`two_minima_dataset`] constructs that situation deterministically: class
//! composition is pure group-0 below 20, perfectly mixed on \[20, 60), and
//! pure group-1 from 60 up. With the Gini index, splitting at 20 and
//! splitting at 60 then score within a fraction of a percent of each other,
//! while every split in between scores visibly worse. A `tilt` parameter
//! nudges the balance so either side can be made the true global minimum.

use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};

/// Number of distinct attribute values (0 ..= 80), as in the paper's figure.
pub const N_VALUES: u32 = 81;

/// Build the two-minima dataset.
///
/// * `per_value` — tuples per attribute value (the figure's "nearly the same
///   number of tuples inside each interval"). Must be even so the middle
///   region can be perfectly mixed.
/// * `tilt` — number of *extra* class-0 tuples added at attribute value 70
///   (inside the otherwise-pure high region). They make the split at 60
///   slightly impure on its right side, so the split at 20 becomes the
///   strict global minimum — while staying within bootstrap-noise distance
///   of the split at 60, which is exactly the bimodal situation the paper
///   describes.
///
/// The single predictor attribute is numeric with integer values 0…80.
pub fn two_minima_dataset(per_value: usize, tilt: usize) -> MemoryDataset {
    assert!(
        per_value >= 2 && per_value.is_multiple_of(2),
        "per_value must be even and >= 2"
    );
    let schema = Schema::shared(vec![Attribute::numeric("x")], 2)
        .expect("instability schema is statically valid");
    let mut records = Vec::with_capacity(per_value * N_VALUES as usize + tilt);
    for x in 0..N_VALUES {
        for i in 0..per_value {
            let label: u16 = if x < 20 {
                0
            } else if x < 60 {
                (i % 2) as u16 // perfectly mixed
            } else {
                1
            };
            records.push(Record::new(vec![Field::Num(x as f64)], label));
        }
    }
    for _ in 0..tilt {
        records.push(Record::new(vec![Field::Num(70.0)], 0));
    }
    MemoryDataset::new(schema, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::dataset::RecordSource;

    /// Gini impurity of splitting `records` at `x <= split`.
    fn gini_at(records: &[Record], split: f64) -> f64 {
        let (mut l0, mut l1, mut r0, mut r1) = (0f64, 0f64, 0f64, 0f64);
        for r in records {
            match (r.num(0) <= split, r.label()) {
                (true, 0) => l0 += 1.0,
                (true, _) => l1 += 1.0,
                (false, 0) => r0 += 1.0,
                (false, _) => r1 += 1.0,
            }
        }
        let n = l0 + l1 + r0 + r1;
        let gini = |a: f64, b: f64| {
            let m = a + b;
            if m == 0.0 {
                0.0
            } else {
                2.0 * (a / m) * (b / m) * (m / n)
            }
        };
        gini(l0, l1) + gini(r0, r1)
    }

    #[test]
    fn minima_sit_at_20_and_60_and_nearly_tie() {
        let ds = two_minima_dataset(10, 0);
        let recs = ds.records();
        // The candidate split "x <= 19" isolates the pure low region; the
        // candidate "x <= 59" isolates the pure high region.
        let at_20 = gini_at(recs, 19.0);
        let at_60 = gini_at(recs, 59.0);
        let mid = gini_at(recs, 40.0);
        assert!(
            (at_20 - at_60).abs() < 0.01,
            "minima should nearly tie: {at_20} vs {at_60}"
        );
        assert!(
            mid > at_20 + 0.02,
            "the middle must be clearly worse: {mid} vs {at_20}"
        );
        // And both minima beat every other candidate by being local minima
        // of the sweep.
        let at_10 = gini_at(recs, 10.0);
        let at_70 = gini_at(recs, 70.0);
        assert!(at_10 > at_20 && at_70 > at_60);
    }

    #[test]
    fn tilt_breaks_the_tie_towards_20() {
        let ds = two_minima_dataset(10, 6);
        let recs = ds.records();
        let at_20 = gini_at(recs, 19.0);
        let at_60 = gini_at(recs, 59.0);
        assert!(at_20 < at_60, "positive tilt must favour the low split");
        assert!(
            at_60 - at_20 < 0.01,
            "…but only slightly, to stay inside bootstrap noise"
        );
    }

    #[test]
    fn record_count_is_as_documented() {
        let ds = two_minima_dataset(4, 3);
        assert_eq!(ds.len(), 4 * 81 + 3);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_per_value_rejected() {
        two_minima_dataset(3, 0);
    }
}
