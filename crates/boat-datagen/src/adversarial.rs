//! Adversarial sample-phase scenarios (ISSUE 8 / ROADMAP item 4).
//!
//! Purpose-built datasets for the shapes where subsampled split search is
//! either hardest (heavy ties, where snapping degrades the gate to the
//! exact sweep) or most profitable (wide schemas of fine-grained numeric
//! columns, where candidate counts dominate the sample phase). Each
//! generator is a pure function of `(n, seed)` via a seeded [`StdRng`], so
//! benches and the exactness oracles see identical data across engines and
//! processes.

use boat_data::{Attribute, Field, Record, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated scenario: schema plus records.
pub type Scenario = (Schema, Vec<Record>);

/// Heavy ties: every numeric column is quantized to a handful of distinct
/// values, so run-snapping budgets blow and the gate must degrade to the
/// exact sweep without losing correctness (or much time).
pub fn heavy_ties(n: usize, seed: u64) -> Scenario {
    let schema = Schema::new(
        vec![
            Attribute::numeric("q4"),
            Attribute::numeric("q8"),
            Attribute::numeric("q3"),
            Attribute::categorical("c", 4),
        ],
        2,
    )
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7135);
    let records = (0..n)
        .map(|_| {
            let a = rng.random_range(0..4u32) as f64 * 10.0;
            let b = rng.random_range(0..8u32) as f64 * 2.5;
            let c = rng.random_range(0..3u32) as f64;
            let cat = rng.random_range(0..4u32);
            let noisy = rng.random_range(0..20u32) == 0;
            let label = u16::from((a + b >= 25.0) ^ noisy);
            Record::new(
                vec![Field::Num(a), Field::Num(b), Field::Num(c), Field::Cat(cat)],
                label,
            )
        })
        .collect();
    (schema, records)
}

/// High-cardinality categoricals: cardinalities past
/// `EXHAUSTIVE_SUBSET_MAX` (12) exercise the Breiman ordering sweep, with
/// one fine-grained numeric column so trees still grow deep.
pub fn high_cardinality(n: usize, seed: u64) -> Scenario {
    let schema = Schema::new(
        vec![
            Attribute::numeric("x"),
            Attribute::categorical("wide", 24),
            Attribute::categorical("wider", 40),
        ],
        2,
    )
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA2D);
    let records = (0..n)
        .map(|_| {
            let x = rng.random_range(0..100_000u32) as f64 * 0.01;
            let c1 = rng.random_range(0..24u32);
            let c2 = rng.random_range(0..40u32);
            // Label driven by a categorical subset plus a numeric shift.
            let in_set = matches!(c1, 1 | 3 | 7 | 11 | 18 | 22);
            let noisy = rng.random_range(0..25u32) == 0;
            let label = u16::from((in_set || x >= 700.0) ^ noisy);
            Record::new(vec![Field::Num(x), Field::Cat(c1), Field::Cat(c2)], label)
        })
        .collect();
    (schema, records)
}

/// Skewed class priors: ~4 % positives. Impurity curves hug zero, boundary
/// leaders are tiny numbers, and equal-impurity ties get common — the
/// regime where sloppy bound comparisons would corrupt the tree.
pub fn skewed_priors(n: usize, seed: u64) -> Scenario {
    let schema = Schema::new(
        vec![
            Attribute::numeric("score"),
            Attribute::numeric("amount"),
            Attribute::categorical("region", 6),
        ],
        2,
    )
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x53E3);
    let records = (0..n)
        .map(|_| {
            let score = rng.random_range(0..10_000u32) as f64 * 0.1;
            let amount = rng.random_range(0..5_000u32) as f64;
            let region = rng.random_range(0..6u32);
            // Positives concentrate in a thin high-score slice.
            let base = score >= 960.0 && amount >= 1_000.0;
            let stray = rng.random_range(0..200u32) == 0;
            let label = u16::from(base || stray);
            Record::new(
                vec![Field::Num(score), Field::Num(amount), Field::Cat(region)],
                label,
            )
        })
        .collect();
    (schema, records)
}

/// Wide schema: `n_attrs` fine-grained numeric columns of which only the
/// first two are informative — the candidate-evaluation-bound shape where
/// gap pruning (especially cross-attribute pruning of the noise columns)
/// pays most.
pub fn wide_schema(n: usize, n_attrs: usize, seed: u64) -> Scenario {
    assert!(n_attrs >= 2, "wide_schema needs the two informative attrs");
    let attrs: Vec<Attribute> = (0..n_attrs)
        .map(|i| Attribute::numeric(format!("w{i}")))
        .collect();
    let schema = Schema::new(attrs, 2).expect("static schema");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51DE);
    let records = (0..n)
        .map(|_| {
            let fields: Vec<Field> = (0..n_attrs)
                .map(|_| Field::Num(rng.random_range(0..1_000_000u32) as f64 * 0.001))
                .collect();
            let (x0, x1) = match (&fields[0], &fields[1]) {
                (Field::Num(a), Field::Num(b)) => (*a, *b),
                _ => unreachable!("all attributes are numeric"),
            };
            let noisy = rng.random_range(0..25u32) == 0;
            let label = u16::from((x0 + 0.5 * x1 >= 750.0) ^ noisy);
            Record::new(fields, label)
        })
        .collect();
    (schema, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_in_seed() {
        for (name, a, b, c) in [
            (
                "ties",
                heavy_ties(200, 1),
                heavy_ties(200, 1),
                heavy_ties(200, 2),
            ),
            (
                "card",
                high_cardinality(200, 1),
                high_cardinality(200, 1),
                high_cardinality(200, 2),
            ),
            (
                "skew",
                skewed_priors(200, 1),
                skewed_priors(200, 1),
                skewed_priors(200, 2),
            ),
            (
                "wide",
                wide_schema(200, 6, 1),
                wide_schema(200, 6, 1),
                wide_schema(200, 6, 2),
            ),
        ] {
            assert_eq!(a.1, b.1, "{name}: same seed, same records");
            assert_ne!(a.1, c.1, "{name}: different seed, different records");
        }
    }

    #[test]
    fn scenario_shapes_hold() {
        let (schema, records) = heavy_ties(500, 9);
        assert_eq!(records.len(), 500);
        // Quantized: at most 4/8/3 distinct values per numeric column.
        for (attr, max_distinct) in [(0usize, 4), (1, 8), (2, 3)] {
            let mut vals: Vec<u64> = records.iter().map(|r| r.num(attr).to_bits()).collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(vals.len() <= max_distinct, "attr {attr}: {}", vals.len());
        }
        assert_eq!(schema.n_attributes(), 4);

        let (_, skewed) = skewed_priors(4000, 9);
        let positives = skewed.iter().filter(|r| r.label() == 1).count();
        assert!(
            positives * 10 < skewed.len(),
            "priors must be skewed: {positives}/{}",
            skewed.len()
        );
        assert!(positives > 0, "but not empty");

        let (wide_schema_, wide) = wide_schema(300, 12, 9);
        assert_eq!(wide_schema_.n_attributes(), 12);
        assert!(wide.iter().any(|r| r.label() == 0));
        assert!(wide.iter().any(|r| r.label() == 1));
    }
}
