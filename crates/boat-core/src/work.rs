//! The working tree: per-node cleanup state, the cleanup scan, and the
//! top-down verification pass (paper §3.3–§3.5).
//!
//! ## Routing invariant
//!
//! Stored per-node statistics cover exactly the tuples that *reached* the
//! node under the **parking rule**: at a node with a numeric coarse
//! criterion, a tuple whose splitting-attribute value lies inside the
//! closed confidence interval `[lo, hi]` is parked in the node's `S_n`
//! buffer and never contributes to descendant statistics. Final split
//! points therefore never influence stored state — which is what makes the
//! same state incrementally maintainable under insertions and deletions
//! (paper §4): the verification pass re-derives exact splits every time,
//! carrying parked ancestor tuples downward *transiently*.

use crate::buckets::{build_boundaries, BucketSet};
use crate::coarse::{CoarseCriterion, CoarseTree, FrontierReason};
use crate::config::BoatConfig;
use crate::verify::bucket_passes;
use boat_data::spill::SpillBuffer;
use boat_data::{
    spawn_prefetch, AttrType, DataError, IoStats, Record, RecordSource, Result, RowRange, Schema,
};
use boat_obs::Registry;
use boat_tree::split::{best_categorical_split, cmp_splits, sweep_numeric};
use boat_tree::{AvcGroup, CatAvc, GrowthLimits, Impurity, NumAvc, SplitEval, Tree};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Stopping rules for a subtree grown at absolute depth `base_depth`.
pub(crate) fn limits_for_subtree(limits: GrowthLimits, base_depth: u32) -> GrowthLimits {
    GrowthLimits {
        max_depth: limits.max_depth.map(|d| d.saturating_sub(base_depth)),
        ..limits
    }
}

/// Per-node statistics accumulated during the cleanup scan (and maintained
/// by incremental updates).
pub(crate) struct NodeState {
    /// Per-class totals of tuples that reached this node (`N^i` minus
    /// ancestor-parked).
    pub class_totals: Vec<u64>,
    /// Full category/class counts, per categorical attribute (internal
    /// nodes only).
    pub cat: Vec<Option<CatAvc>>,
    /// Bucket counts, per numeric attribute (internal nodes only).
    pub buckets: Vec<Option<BucketSet>>,
    /// Class counts of tuples with splitting-attribute value `< lo`
    /// (numeric criteria only).
    pub edge_left: Vec<u64>,
    /// Parked tuples `S_n` (numeric criteria only).
    pub parked: Option<SpillBuffer>,
    /// Retained family records (frontier nodes that may need growth).
    pub family: Option<SpillBuffer>,
    /// Incremental: the node's retained records changed since last grow.
    pub dirty: bool,
}

/// How a node was resolved by the verification pass.
#[derive(Debug, Clone)]
pub(crate) enum Resolution {
    /// Not yet finalized.
    Pending,
    /// The stopping rules make this a leaf of the final tree.
    Leaf { counts: Vec<u64> },
    /// The coarse criterion was verified; this is the exact final split.
    Split { eval: SplitEval },
    /// Frontier leaf that needs growth (records via its family buffer or a
    /// collection scan).
    Frontier { counts: Vec<u64> },
    /// Verification failed; the subtree must be rebuilt (paper §3.4).
    Failed { counts: Vec<u64> },
}

impl Resolution {
    /// The exact family class counts, when resolved.
    pub fn counts(&self) -> Option<&[u64]> {
        match self {
            Resolution::Pending => None,
            Resolution::Leaf { counts }
            | Resolution::Frontier { counts }
            | Resolution::Failed { counts } => Some(counts),
            Resolution::Split { eval } => {
                // Split stores the partition counts; totals are derivable,
                // so report nothing here (callers use the children).
                let _ = eval;
                None
            }
        }
    }
}

/// A pending completion job produced by the verification pass.
pub(crate) struct Job {
    /// Work-tree node index.
    pub idx: usize,
    /// Ancestor-parked tuples routed into this node by final splits.
    pub carried: Vec<Record>,
    /// Fingerprint of `carried` (for grown-subtree reuse).
    pub carried_fp: u64,
}

/// One node of the working tree.
pub(crate) struct WorkNode {
    pub crit: Option<CoarseCriterion>,
    /// Why the coarse node is a frontier leaf (diagnostics).
    #[allow(dead_code)]
    pub reason: Option<FrontierReason>,
    pub left: Option<usize>,
    pub right: Option<usize>,
    #[allow(dead_code)] // parent links are kept for diagnostics/debugging
    pub parent: Option<usize>,
    pub depth: u32,
    /// Estimated `|F_n|` extrapolated from the sample (spill policy only).
    #[allow(dead_code)]
    pub est_family: u64,
    pub state: NodeState,
    pub resolution: Resolution,
    /// Completed subtree for Frontier/Failed nodes.
    pub grown: Option<Tree>,
    /// Fingerprint of the carried set the grown subtree was built with.
    pub grown_carried_fp: Option<u64>,
    /// How many times this position has been promoted to maintained state.
    /// Positions that keep failing verification (noise-driven structure)
    /// fall back to cheap static regrowth instead of re-promoting.
    pub promotions: u32,
}

/// The working tree: coarse structure + cleanup state + resolutions.
pub(crate) struct WorkTree {
    pub schema: Arc<Schema>,
    pub nodes: Vec<WorkNode>,
    pub spill_stats: IoStats,
    /// Observability registry (shared with the owning `Boat`): cleanup-shard
    /// timers, merge spans and verification-verdict counters record here.
    pub metrics: Registry,
}

/// One node of a [`CleanupShard`]: the routing fields of the corresponding
/// [`WorkNode`] plus zeroed clones of its mergeable statistics.
struct ShardNode {
    crit: Option<CoarseCriterion>,
    left: Option<usize>,
    right: Option<usize>,
    /// Whether the frontier node retains family records.
    keep_family: bool,
    /// The shard routed at least one tuple through this node (drives the
    /// dirty flag on merge, mirroring serial `absorb`).
    touched: bool,
    class_totals: Vec<u64>,
    cat: Vec<Option<CatAvc>>,
    buckets: Vec<Option<BucketSet>>,
    edge_left: Vec<u64>,
}

/// Thread-local accumulator for one worker of the parallel cleanup scan.
///
/// A shard carries a private copy of the coarse routing structure plus
/// zeroed clones of every node's statistics. Routing a record updates the
/// shard only; records the serial scan would store in a spill buffer
/// (parked `S_n` tuples, retained frontier families) are emitted as
/// `(node, record)` *deposits* for the caller to apply in chunk order.
/// Two invariants make the reduction exact (see `WorkTree::merge_shard`
/// and `WorkTree::apply_deposits`):
///
/// * every statistic is an integer count, so shard merges are associative
///   and commutative — any merge order is bit-identical to one serial
///   accumulation;
/// * deposits preserve record order within a chunk, and chunks are applied
///   in ascending index (= serial scan order), so spill-buffer contents
///   and spill behaviour are byte-identical to the serial path.
pub(crate) struct CleanupShard {
    nodes: Vec<ShardNode>,
}

impl CleanupShard {
    /// Route one record down the shard (the insertion half of
    /// [`WorkTree::absorb`], against thread-local state). Records that
    /// park at a numeric criterion or land in a retained frontier family
    /// are appended to `deposits` as `(node index, record)`.
    pub fn route(&mut self, r: Record, deposits: &mut Vec<(u32, Record)>) {
        let mut idx = 0usize;
        loop {
            let node = &mut self.nodes[idx];
            node.touched = true;
            let label = r.label() as usize;
            node.class_totals[label] += 1;
            let Some(crit) = node.crit.clone() else {
                if node.keep_family {
                    deposits.push((idx as u32, r));
                }
                return;
            };
            for (a, slot) in node.cat.iter_mut().enumerate() {
                if let Some(avc) = slot {
                    avc.add(r.cat(a), r.label());
                }
            }
            for (a, slot) in node.buckets.iter_mut().enumerate() {
                if let Some(b) = slot {
                    b.add(r.num(a), r.label());
                }
            }
            match crit {
                CoarseCriterion::Num { attr, lo, hi } => {
                    let v = r.num(attr);
                    if v < lo {
                        node.edge_left[label] += 1;
                        idx = node.left.expect("internal");
                    } else if v <= hi {
                        deposits.push((idx as u32, r));
                        return;
                    } else {
                        idx = node.right.expect("internal");
                    }
                }
                CoarseCriterion::Cat { attr, subset } => {
                    idx = if subset.contains(r.cat(attr)) {
                        node.left.expect("internal")
                    } else {
                        node.right.expect("internal")
                    };
                }
            }
        }
    }
}

/// The spill-bound output of routing one input chunk through a shard.
pub(crate) struct RoutedChunk {
    /// Chunk index in scan order (restores the serial application order).
    pub index: usize,
    /// `(node index, record)` pairs in within-chunk scan order.
    pub deposits: Vec<(u32, Record)>,
}

impl WorkTree {
    /// Prepare a working tree from the coarse tree and the in-memory
    /// sample: route the sample down the coarse structure (numeric criteria
    /// route by interval midpoint), estimate family sizes, build per-node
    /// discretizations, and allocate cleanup state.
    ///
    /// `retain_all_families` keeps family buffers at *every* frontier node
    /// (needed for incremental maintenance); otherwise only frontier nodes
    /// expected to need growth retain records.
    #[allow(clippy::too_many_arguments)] // construction-time plumbing
    pub fn prepare(
        coarse: &CoarseTree,
        schema: Arc<Schema>,
        sample: &[Record],
        imp: &dyn Impurity,
        config: &BoatConfig,
        full_size: u64,
        retain_all_families: bool,
        spill_stats: IoStats,
        metrics: Registry,
    ) -> WorkTree {
        // Route the sample down the coarse tree to get per-node sample
        // families (estimation + discretization input only).
        let mut node_samples: Vec<Vec<u32>> = vec![Vec::new(); coarse.nodes.len()];
        for (ri, r) in sample.iter().enumerate() {
            let mut idx = 0usize;
            loop {
                node_samples[idx].push(ri as u32);
                match &coarse.nodes[idx].crit {
                    None => break,
                    Some(CoarseCriterion::Num { attr, lo, hi }) => {
                        let mid = 0.5 * (lo + hi);
                        idx = if r.num(*attr) <= mid {
                            coarse.nodes[idx].left.expect("internal")
                        } else {
                            coarse.nodes[idx].right.expect("internal")
                        };
                    }
                    Some(CoarseCriterion::Cat { attr, subset }) => {
                        idx = if subset.contains(r.cat(*attr)) {
                            coarse.nodes[idx].left.expect("internal")
                        } else {
                            coarse.nodes[idx].right.expect("internal")
                        };
                    }
                }
            }
        }

        let scale = if sample.is_empty() {
            0.0
        } else {
            full_size as f64 / sample.len() as f64
        };
        let k = schema.n_classes();
        let nodes = coarse
            .nodes
            .iter()
            .enumerate()
            .map(|(i, cn)| {
                let my_sample: Vec<&Record> = node_samples[i]
                    .iter()
                    .map(|&ri| &sample[ri as usize])
                    .collect();
                let est_family = (my_sample.len() as f64 * scale).round() as u64;
                // Widen numeric confidence intervals: (1) cover the sample
                // family's own best candidate on the splitting attribute
                // (bootstrap points from small resample families can all
                // undershoot it), then (2) extend to the adjacent distinct
                // sample values on both sides. Split-point optima sit at
                // the largest observed value below a concept boundary, so
                // the full database's optimum lies in the sample-gap just
                // beyond the sample's best candidate — one gap of padding
                // parks a handful more tuples and spares a rebuild.
                let crit = cn.crit.clone().map(|crit| match crit {
                    CoarseCriterion::Num { attr, lo, hi } => {
                        let mut avc = NumAvc::new(k);
                        let mut totals = vec![0u64; k];
                        for r in &my_sample {
                            avc.add(r.num(attr), r.label());
                            totals[r.label() as usize] += 1;
                        }
                        let (lo1, hi1) = widen_interval(
                            &avc,
                            &totals,
                            imp,
                            lo,
                            hi,
                            config.interval_pad_values.max(1),
                        );
                        CoarseCriterion::Num {
                            attr,
                            lo: lo1,
                            hi: hi1,
                        }
                    }
                    cat => cat,
                });
                let state = if crit.is_some() {
                    // Internal: estimate the node's minimum impurity from
                    // the sample, then build a discretization per numeric
                    // attribute.
                    let group = AvcGroup::from_records(&schema, my_sample.iter().copied());
                    let est_min = boat_tree::best_split(&schema, &group, imp)
                        .map(|e| e.impurity)
                        .unwrap_or(0.0);
                    let mut cat = Vec::with_capacity(schema.n_attributes());
                    let mut buckets = Vec::with_capacity(schema.n_attributes());
                    for (a, attr) in schema.attributes().iter().enumerate() {
                        match attr.ty() {
                            AttrType::Categorical { cardinality } => {
                                cat.push(Some(CatAvc::new(cardinality, k)));
                                buckets.push(None);
                            }
                            AttrType::Numeric => {
                                cat.push(None);
                                let must_include: Vec<f64> = match &crit {
                                    Some(CoarseCriterion::Num { attr, lo, hi }) if *attr == a => {
                                        vec![*lo, *hi]
                                    }
                                    _ => vec![],
                                };
                                let sample_avc = {
                                    let mut avc = NumAvc::new(k);
                                    for r in &my_sample {
                                        avc.add(r.num(a), r.label());
                                    }
                                    avc
                                };
                                let bounds = build_boundaries(
                                    &sample_avc,
                                    group.class_totals(),
                                    imp,
                                    est_min,
                                    config.discretize,
                                    &must_include,
                                );
                                buckets.push(Some(BucketSet::new(bounds, k)));
                            }
                        }
                    }
                    let parked = match &crit {
                        Some(CoarseCriterion::Num { .. }) => Some(SpillBuffer::new_in(
                            schema.clone(),
                            config.spill_budget,
                            spill_stats.clone(),
                            config.spill_dir.clone(),
                        )),
                        _ => None,
                    };
                    NodeState {
                        class_totals: vec![0; k],
                        cat,
                        buckets,
                        edge_left: vec![0; k],
                        parked,
                        family: None,
                        dirty: false,
                    }
                } else {
                    // Frontier: decide whether to retain family records.
                    let keep = retain_all_families
                        || match config.limits.stop_family_size {
                            None => true,
                            Some(t) => est_family.saturating_mul(2) > t,
                        };
                    NodeState {
                        class_totals: vec![0; k],
                        cat: Vec::new(),
                        buckets: Vec::new(),
                        edge_left: vec![0; k],
                        parked: None,
                        family: keep.then(|| {
                            SpillBuffer::new_in(
                                schema.clone(),
                                config.spill_budget,
                                spill_stats.clone(),
                                config.spill_dir.clone(),
                            )
                        }),
                        dirty: false,
                    }
                };
                WorkNode {
                    crit,
                    reason: cn.reason,
                    left: cn.left,
                    right: cn.right,
                    parent: cn.parent,
                    depth: cn.depth,
                    est_family,
                    state,
                    resolution: Resolution::Pending,
                    grown: None,
                    grown_carried_fp: None,
                    promotions: 0,
                }
            })
            .collect();
        WorkTree {
            schema,
            nodes,
            spill_stats,
            metrics,
        }
    }

    /// Stream one tuple down the tree, updating statistics (the cleanup
    /// scan of §3.3/§3.5 and the §4 incremental update, unified).
    /// `delete` subtracts instead of adding.
    pub fn absorb(&mut self, r: &Record, delete: bool) -> Result<()> {
        if delete {
            // Deletions are validated along the whole routing path *before*
            // any counter is touched. Without this, deleting a record that
            // was never inserted decrements `u64` cells that may already be
            // zero several levels down — a panic under overflow checks and
            // silent count corruption in release — after the ancestors were
            // already mutated. Validate-first makes a failed delete a no-op,
            // so the model stays usable after the error.
            self.validate_delete(r)?;
        }
        let mut idx = 0usize;
        loop {
            let node = &mut self.nodes[idx];
            node.state.dirty = true;
            let label = r.label() as usize;
            if delete {
                if node.state.class_totals[label] == 0 {
                    return Err(DataError::Invalid(
                        "deletion of a record not present at a node".into(),
                    ));
                }
                node.state.class_totals[label] -= 1;
            } else {
                node.state.class_totals[label] += 1;
            }
            match node.crit.clone() {
                None => {
                    if let Some(family) = node.state.family.as_mut() {
                        if delete {
                            if !family.remove_one(r)? {
                                return Err(DataError::Invalid(
                                    "deletion of a record missing from a frontier family".into(),
                                ));
                            }
                        } else {
                            family.push(r.clone())?;
                        }
                    }
                    return Ok(());
                }
                Some(crit) => {
                    // Update the verification statistics.
                    for (a, slot) in node.state.cat.iter_mut().enumerate() {
                        if let Some(avc) = slot {
                            if delete {
                                avc.sub(r.cat(a), r.label());
                            } else {
                                avc.add(r.cat(a), r.label());
                            }
                        }
                    }
                    for (a, slot) in node.state.buckets.iter_mut().enumerate() {
                        if let Some(b) = slot {
                            if delete {
                                b.sub(r.num(a), r.label());
                            } else {
                                b.add(r.num(a), r.label());
                            }
                        }
                    }
                    match crit {
                        CoarseCriterion::Num { attr, lo, hi } => {
                            let v = r.num(attr);
                            if v < lo {
                                if delete {
                                    node.state.edge_left[label] -= 1;
                                } else {
                                    node.state.edge_left[label] += 1;
                                }
                                idx = node.left.expect("internal");
                            } else if v <= hi {
                                let parked =
                                    node.state.parked.as_mut().expect("numeric node parks");
                                if delete {
                                    if !parked.remove_one(r)? {
                                        return Err(DataError::Invalid(
                                            "deletion of a record missing from S_n".into(),
                                        ));
                                    }
                                } else {
                                    parked.push(r.clone())?;
                                }
                                return Ok(());
                            } else {
                                idx = node.right.expect("internal");
                            }
                        }
                        CoarseCriterion::Cat { attr, subset } => {
                            idx = if subset.contains(r.cat(attr)) {
                                node.left.expect("internal")
                            } else {
                                node.right.expect("internal")
                            };
                        }
                    }
                }
            }
        }
    }

    /// Check that deleting `r` cannot underflow any statistic along its
    /// routing path, without mutating anything.
    ///
    /// Mirrors the routing walk of [`WorkTree::absorb`] with `delete =
    /// true`: at every visited node the class total, every maintained
    /// AVC/bucket cell the deletion would decrement, and (on the left
    /// numeric branch) the edge count must be positive; where the record
    /// would be removed from a spill buffer (parked `S_n`, retained
    /// family), the buffer must actually contain it. `&mut self` only
    /// because probing a spilled buffer flushes its writer.
    fn validate_delete(&mut self, r: &Record) -> Result<()> {
        let label = r.label() as usize;
        let mut idx = 0usize;
        loop {
            let crit = self.nodes[idx].crit.clone();
            let node = &mut self.nodes[idx];
            if node.state.class_totals.get(label).copied().unwrap_or(0) == 0 {
                return Err(DataError::Invalid(
                    "deletion of a record not present at a node".into(),
                ));
            }
            let Some(crit) = crit else {
                if let Some(family) = node.state.family.as_mut() {
                    if !family.contains(r)? {
                        return Err(DataError::Invalid(
                            "deletion of a record missing from a frontier family".into(),
                        ));
                    }
                }
                return Ok(());
            };
            for (a, slot) in node.state.cat.iter().enumerate() {
                if let Some(avc) = slot {
                    if avc.counts_for(r.cat(a))[label] == 0 {
                        return Err(DataError::Invalid(
                            "deletion of a record not counted in a node's AVC-set".into(),
                        ));
                    }
                }
            }
            for (a, slot) in node.state.buckets.iter().enumerate() {
                if let Some(b) = slot {
                    if !b.can_sub(r.num(a), r.label()) {
                        return Err(DataError::Invalid(
                            "deletion of a record not counted in a node's buckets".into(),
                        ));
                    }
                }
            }
            match crit {
                CoarseCriterion::Num { attr, lo, hi } => {
                    let v = r.num(attr);
                    if v < lo {
                        if node.state.edge_left[label] == 0 {
                            return Err(DataError::Invalid(
                                "deletion of a record not counted at a node's left edge".into(),
                            ));
                        }
                        idx = node.left.expect("internal");
                    } else if v <= hi {
                        let parked = node.state.parked.as_mut().expect("numeric node parks");
                        if !parked.contains(r)? {
                            return Err(DataError::Invalid(
                                "deletion of a record missing from S_n".into(),
                            ));
                        }
                        return Ok(());
                    } else {
                        idx = node.right.expect("internal");
                    }
                }
                CoarseCriterion::Cat { attr, subset } => {
                    idx = if subset.contains(r.cat(attr)) {
                        node.left.expect("internal")
                    } else {
                        node.right.expect("internal")
                    };
                }
            }
        }
    }

    /// Stream a whole chunk of deletions down the tree, deferring every
    /// spill-buffer removal so each buffer is rewritten **once** instead of
    /// once per deleted record.
    ///
    /// Semantically identical to calling [`WorkTree::absorb`] with `delete =
    /// true` on every record in order — counters are validated and mutated
    /// per record, and [`SpillBuffer::remove_many`] replicates the exact
    /// sequential `remove_one` ordering — but a D-record chunk rewrites each
    /// touched spilled buffer once (`O(n)`) instead of `D` times (`O(D·n)`).
    ///
    /// Returns how many records were fully applied, plus the error that
    /// stopped the batch (if any). On an error the prefix before the failing
    /// record is still applied, exactly like the serial loop.
    pub fn absorb_delete_batch(&mut self, records: &[Record]) -> (u64, Option<DataError>) {
        let mut pending: BTreeMap<usize, Vec<Record>> = BTreeMap::new();
        let mut applied = 0u64;
        let mut err: Option<DataError> = None;
        for r in records {
            match self.absorb_delete_deferred(r, &mut pending) {
                Ok(()) => applied += 1,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        // Apply the deferred removals even after a mid-batch error: the
        // records before the failure already had their counters decremented,
        // so their buffer entries must go too (serial equivalence).
        if let Err(e) = self.apply_pending_removals(pending) {
            if err.is_none() {
                err = Some(e);
            }
        }
        (applied, err)
    }

    /// One deletion of [`WorkTree::absorb_delete_batch`]: validate the whole
    /// routing path (buffer membership is checked net of already-`pending`
    /// removals), then decrement counters, pushing spill-buffer removals
    /// into `pending` instead of performing them.
    fn absorb_delete_deferred(
        &mut self,
        r: &Record,
        pending: &mut BTreeMap<usize, Vec<Record>>,
    ) -> Result<()> {
        self.validate_delete_pending(r, pending)?;
        let mut idx = 0usize;
        loop {
            let node = &mut self.nodes[idx];
            node.state.dirty = true;
            let label = r.label() as usize;
            if node.state.class_totals[label] == 0 {
                return Err(DataError::Invalid(
                    "deletion of a record not present at a node".into(),
                ));
            }
            node.state.class_totals[label] -= 1;
            match node.crit.clone() {
                None => {
                    if node.state.family.is_some() {
                        pending.entry(idx).or_default().push(r.clone());
                    }
                    return Ok(());
                }
                Some(crit) => {
                    for (a, slot) in node.state.cat.iter_mut().enumerate() {
                        if let Some(avc) = slot {
                            avc.sub(r.cat(a), r.label());
                        }
                    }
                    for (a, slot) in node.state.buckets.iter_mut().enumerate() {
                        if let Some(b) = slot {
                            b.sub(r.num(a), r.label());
                        }
                    }
                    match crit {
                        CoarseCriterion::Num { attr, lo, hi } => {
                            let v = r.num(attr);
                            if v < lo {
                                node.state.edge_left[label] -= 1;
                                idx = node.left.expect("internal");
                            } else if v <= hi {
                                pending.entry(idx).or_default().push(r.clone());
                                return Ok(());
                            } else {
                                idx = node.right.expect("internal");
                            }
                        }
                        CoarseCriterion::Cat { attr, subset } => {
                            idx = if subset.contains(r.cat(attr)) {
                                node.left.expect("internal")
                            } else {
                                node.right.expect("internal")
                            };
                        }
                    }
                }
            }
        }
    }

    /// [`WorkTree::validate_delete`], aware of removals already queued in
    /// `pending`: where the serial path checks `contains`, the batched path
    /// must check that the buffer holds **more** copies than are already
    /// earmarked for removal, or a duplicate deletion in one chunk would
    /// validate against the same stored record twice.
    fn validate_delete_pending(
        &mut self,
        r: &Record,
        pending: &BTreeMap<usize, Vec<Record>>,
    ) -> Result<()> {
        let label = r.label() as usize;
        let held = |idx: usize| {
            pending
                .get(&idx)
                .map(|v| v.iter().filter(|p| *p == r).count() as u64)
                .unwrap_or(0)
        };
        let mut idx = 0usize;
        loop {
            let crit = self.nodes[idx].crit.clone();
            let node = &mut self.nodes[idx];
            if node.state.class_totals.get(label).copied().unwrap_or(0) == 0 {
                return Err(DataError::Invalid(
                    "deletion of a record not present at a node".into(),
                ));
            }
            let Some(crit) = crit else {
                if let Some(family) = node.state.family.as_mut() {
                    if family.count_matching(r)? <= held(idx) {
                        return Err(DataError::Invalid(
                            "deletion of a record missing from a frontier family".into(),
                        ));
                    }
                }
                return Ok(());
            };
            for (a, slot) in node.state.cat.iter().enumerate() {
                if let Some(avc) = slot {
                    if avc.counts_for(r.cat(a))[label] == 0 {
                        return Err(DataError::Invalid(
                            "deletion of a record not counted in a node's AVC-set".into(),
                        ));
                    }
                }
            }
            for (a, slot) in node.state.buckets.iter().enumerate() {
                if let Some(b) = slot {
                    if !b.can_sub(r.num(a), r.label()) {
                        return Err(DataError::Invalid(
                            "deletion of a record not counted in a node's buckets".into(),
                        ));
                    }
                }
            }
            match crit {
                CoarseCriterion::Num { attr, lo, hi } => {
                    let v = r.num(attr);
                    if v < lo {
                        if node.state.edge_left[label] == 0 {
                            return Err(DataError::Invalid(
                                "deletion of a record not counted at a node's left edge".into(),
                            ));
                        }
                        idx = node.left.expect("internal");
                    } else if v <= hi {
                        let parked = node.state.parked.as_mut().expect("numeric node parks");
                        if parked.count_matching(r)? <= held(idx) {
                            return Err(DataError::Invalid(
                                "deletion of a record missing from S_n".into(),
                            ));
                        }
                        return Ok(());
                    } else {
                        idx = node.right.expect("internal");
                    }
                }
                CoarseCriterion::Cat { attr, subset } => {
                    idx = if subset.contains(r.cat(attr)) {
                        node.left.expect("internal")
                    } else {
                        node.right.expect("internal")
                    };
                }
            }
        }
    }

    /// Flush the removals a delete batch queued up: one
    /// [`SpillBuffer::remove_many`] per touched buffer.
    fn apply_pending_removals(&mut self, pending: BTreeMap<usize, Vec<Record>>) -> Result<()> {
        for (idx, targets) in pending {
            let node = &mut self.nodes[idx];
            let buf = match &node.crit {
                Some(CoarseCriterion::Num { .. }) => {
                    node.state.parked.as_mut().expect("numeric node parks")
                }
                None => node
                    .state
                    .family
                    .as_mut()
                    .expect("family-less frontier queued removals"),
                Some(_) => unreachable!("categorical nodes hold no removable buffers"),
            };
            let removed = buf.remove_many(&targets)?;
            if removed != targets.len() as u64 {
                return Err(DataError::Invalid(
                    "batch delete failed to remove a validated record".into(),
                ));
            }
        }
        Ok(())
    }

    /// A fresh thread-local shard for the parallel cleanup scan: the node
    /// routing structure plus zeroed clones of every mergeable statistic.
    pub fn new_shard(&self) -> CleanupShard {
        let nodes = self
            .nodes
            .iter()
            .map(|n| ShardNode {
                crit: n.crit.clone(),
                left: n.left,
                right: n.right,
                keep_family: n.state.family.is_some(),
                touched: false,
                class_totals: vec![0; n.state.class_totals.len()],
                cat: n
                    .state
                    .cat
                    .iter()
                    .map(|s| s.as_ref().map(CatAvc::zeroed_like))
                    .collect(),
                buckets: n
                    .state
                    .buckets
                    .iter()
                    .map(|s| s.as_ref().map(BucketSet::zeroed_like))
                    .collect(),
                edge_left: vec![0; n.state.edge_left.len()],
            })
            .collect();
        CleanupShard { nodes }
    }

    /// Fold one shard's statistics into the tree.
    ///
    /// Every statistic is an integer count, so this is exactly associative
    /// and commutative: merging any number of shards in any order yields
    /// bit-identical state to a single serial accumulation. Nodes the shard
    /// visited are marked dirty, mirroring [`WorkTree::absorb`].
    pub fn merge_shard(&mut self, shard: &CleanupShard) {
        debug_assert_eq!(self.nodes.len(), shard.nodes.len(), "shard shape mismatch");
        for (node, s) in self.nodes.iter_mut().zip(&shard.nodes) {
            if !s.touched {
                continue;
            }
            node.state.dirty = true;
            for (a, b) in node.state.class_totals.iter_mut().zip(&s.class_totals) {
                *a += b;
            }
            for (a, b) in node.state.edge_left.iter_mut().zip(&s.edge_left) {
                *a += b;
            }
            for (slot, sslot) in node.state.cat.iter_mut().zip(&s.cat) {
                if let (Some(avc), Some(savc)) = (slot.as_mut(), sslot.as_ref()) {
                    avc.merge_from(savc);
                }
            }
            for (slot, sslot) in node.state.buckets.iter_mut().zip(&s.buckets) {
                if let (Some(b), Some(sb)) = (slot.as_mut(), sslot.as_ref()) {
                    b.merge_from(sb);
                }
            }
        }
    }

    /// Apply one chunk's spill-bound deposits (parked `S_n` tuples and
    /// retained frontier-family records) to the shared buffers.
    ///
    /// Deposits preserve scan order within a chunk; the caller applies
    /// chunks in ascending chunk index — i.e. serial scan order — so every
    /// spill buffer receives its records in exactly the sequence the serial
    /// scan would have pushed them (bit-identical buffer and spill state).
    pub fn apply_deposits(&mut self, deposits: Vec<(u32, Record)>) -> Result<()> {
        for (idx, r) in deposits {
            let node = &mut self.nodes[idx as usize];
            match &node.crit {
                Some(CoarseCriterion::Num { .. }) => {
                    node.state
                        .parked
                        .as_mut()
                        .expect("numeric node parks")
                        .push(r)?;
                }
                None => {
                    node.state
                        .family
                        .as_mut()
                        .expect("deposit to a family-less frontier")
                        .push(r)?;
                }
                Some(_) => unreachable!("categorical nodes never receive deposits"),
            }
        }
        Ok(())
    }

    /// The parallel cleanup scan (insertions only).
    ///
    /// The main thread drives the sequential chunked scan (I/O stays one
    /// sequential pass, exactly as the paper requires) and fans
    /// [`boat_data::RecordChunk`]s out over a bounded channel to `threads`
    /// scoped workers. Each worker routes its chunks down a private
    /// [`CleanupShard`] and emits per-chunk deposits. Afterwards the main
    /// thread reduces: shard statistics merge in any order (integer sums),
    /// and deposits apply in ascending chunk index. The result is
    /// bit-identical to calling [`WorkTree::absorb`] on every record in
    /// scan order — verification sees exactly the serial state.
    pub fn parallel_cleanup(
        &mut self,
        source: &dyn RecordSource,
        threads: usize,
        chunk_size: usize,
    ) -> Result<()> {
        if threads <= 1 {
            let mut n_routed = 0u64;
            for r in source.scan()? {
                self.absorb(&r?, false)?;
                n_routed += 1;
            }
            self.metrics
                .counter("boat.cleanup.records_routed")
                .add(n_routed);
            return Ok(());
        }
        // Per-shard accumulation is local (plain u64s); each worker records
        // once at exit, so the histograms describe how route time and
        // queue-wait distribute *across shards* without hot-path atomics.
        let route_hist = self.metrics.histogram("boat.cleanup.shard_route");
        let wait_hist = self.metrics.histogram("boat.cleanup.queue_wait");
        let chunks_counter = self.metrics.counter("boat.cleanup.chunks");
        let routed_counter = self.metrics.counter("boat.cleanup.records_routed");
        let mut shards: Vec<CleanupShard> = (0..threads).map(|_| self.new_shard()).collect();
        let mut routed: Vec<RoutedChunk> = Vec::new();
        let mut scan_err: Option<DataError> = None;
        {
            let (chunk_tx, chunk_rx) =
                std::sync::mpsc::sync_channel::<boat_data::RecordChunk>(2 * threads);
            let (out_tx, out_rx) = std::sync::mpsc::channel::<RoutedChunk>();
            let chunk_rx = std::sync::Mutex::new(chunk_rx);
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    let rx = &chunk_rx;
                    let tx = out_tx.clone();
                    let route_hist = route_hist.clone();
                    let wait_hist = wait_hist.clone();
                    let chunks_counter = chunks_counter.clone();
                    let routed_counter = routed_counter.clone();
                    scope.spawn(move || {
                        let (mut route_ns, mut wait_ns) = (0u64, 0u64);
                        let (mut n_chunks, mut n_routed) = (0u64, 0u64);
                        loop {
                            let t_wait = Instant::now();
                            let next = {
                                let guard = rx.lock().expect("chunk channel lock");
                                guard.recv()
                            };
                            wait_ns = wait_ns.saturating_add(
                                t_wait.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                            );
                            let Ok(chunk) = next else { break };
                            let mut deposits = Vec::new();
                            let index = chunk.index;
                            let t_route = Instant::now();
                            n_routed += chunk.records.len() as u64;
                            for r in chunk.records {
                                shard.route(r, &mut deposits);
                            }
                            route_ns = route_ns.saturating_add(
                                t_route.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                            );
                            n_chunks += 1;
                            if tx.send(RoutedChunk { index, deposits }).is_err() {
                                break;
                            }
                        }
                        route_hist.record(route_ns);
                        wait_hist.record(wait_ns);
                        chunks_counter.add(n_chunks);
                        routed_counter.add(n_routed);
                    });
                }
                drop(out_tx);
                // Produce chunks on this thread: the scan itself is a
                // single sequential pass over the source.
                match source.scan_chunks(chunk_size) {
                    Ok(chunks) => {
                        for chunk in chunks {
                            match chunk {
                                Ok(c) => {
                                    if chunk_tx.send(c).is_err() {
                                        break;
                                    }
                                }
                                Err(e) => {
                                    scan_err = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => scan_err = Some(e),
                }
                drop(chunk_tx); // workers drain the channel and exit
                for r in out_rx {
                    routed.push(r);
                }
            });
        }
        if let Some(e) = scan_err {
            return Err(e);
        }
        // Reduce. Shard order is fixed for good measure, though any order
        // produces identical counts; chunk order is the serial scan order.
        let merge_span = self.metrics.span("boat.cleanup.merge");
        for shard in &shards {
            self.merge_shard(shard);
        }
        routed.sort_unstable_by_key(|c| c.index);
        for chunk in routed {
            self.apply_deposits(chunk.deposits)?;
        }
        merge_span.finish();
        Ok(())
    }

    /// The sharded (partitioned) cleanup scan: one reader/router thread
    /// pair per row-range shard.
    ///
    /// Where [`WorkTree::parallel_cleanup`] keeps a single sequential scan
    /// and fans chunks out to routing workers, this variant gives every
    /// shard its **own** scan over its row range, double-buffered by a
    /// dedicated prefetch reader ([`boat_data::spawn_prefetch`]) so routing
    /// is never I/O-stalled. Ranges come from a
    /// [`boat_data::Partitioner`] and are chunk-aligned, so shard-local
    /// chunks keep their global indices; the reduction is then identical to
    /// the parallel path — shard statistics merge in any order, deposits
    /// apply in ascending global chunk index — and the resulting state is
    /// bit-identical to a serial [`WorkTree::absorb`] loop at every shard
    /// count.
    ///
    /// Records per-shard route time (`boat.cleanup.shard_route`) and
    /// prefetch stall time (`boat.partition.prefetch_stall` histogram,
    /// `boat.partition.max_stall_ns` gauge).
    pub fn partitioned_cleanup(
        &mut self,
        source: &(dyn RecordSource + Sync),
        ranges: &[RowRange],
        chunk_size: usize,
        prefetch_depth: usize,
    ) -> Result<()> {
        let active: Vec<RowRange> = ranges.iter().copied().filter(|r| !r.is_empty()).collect();
        if active.len() <= 1 {
            // Zero or one populated shard: the serial absorb loop is the
            // exact semantics, with nothing to overlap. Empty shards spawn
            // nothing by construction.
            let mut n_routed = 0u64;
            if let Some(range) = active.first() {
                for r in source.scan_range(*range)? {
                    self.absorb(&r?, false)?;
                    n_routed += 1;
                }
            }
            self.metrics
                .counter("boat.cleanup.records_routed")
                .add(n_routed);
            return Ok(());
        }
        let route_hist = self.metrics.histogram("boat.cleanup.shard_route");
        let stall_hist = self.metrics.histogram("boat.partition.prefetch_stall");
        let chunks_counter = self.metrics.counter("boat.cleanup.chunks");
        let routed_counter = self.metrics.counter("boat.cleanup.records_routed");
        let mut shards: Vec<CleanupShard> = (0..active.len()).map(|_| self.new_shard()).collect();
        let mut routed: Vec<RoutedChunk> = Vec::new();
        let mut first_err: Option<DataError> = None;
        let mut max_stall = 0u64;
        {
            let (out_tx, out_rx) = std::sync::mpsc::channel::<RoutedChunk>();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(active.len());
                for (shard, range) in shards.iter_mut().zip(active.iter().copied()) {
                    let tx = out_tx.clone();
                    let route_hist = route_hist.clone();
                    let stall_hist = stall_hist.clone();
                    let chunks_counter = chunks_counter.clone();
                    let routed_counter = routed_counter.clone();
                    handles.push(scope.spawn(move || -> (u64, Result<()>) {
                        // The router spawns its own reader on the same
                        // scope; dropping the consumer (early exit below)
                        // hangs up the channel and cancels the reader.
                        let mut scan =
                            spawn_prefetch(scope, source, range, chunk_size, prefetch_depth);
                        let mut route_ns = 0u64;
                        let (mut n_chunks, mut n_routed) = (0u64, 0u64);
                        let mut res: Result<()> = Ok(());
                        for item in &mut scan {
                            let chunk = match item {
                                Ok(c) => c,
                                Err(e) => {
                                    res = Err(e);
                                    break;
                                }
                            };
                            let index = chunk.index;
                            let t_route = Instant::now();
                            n_routed += chunk.records.len() as u64;
                            let mut deposits = Vec::new();
                            for r in chunk.records {
                                shard.route(r, &mut deposits);
                            }
                            route_ns = route_ns.saturating_add(
                                t_route.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                            );
                            n_chunks += 1;
                            if tx.send(RoutedChunk { index, deposits }).is_err() {
                                break;
                            }
                        }
                        route_hist.record(route_ns);
                        stall_hist.record(scan.stall_ns());
                        chunks_counter.add(n_chunks);
                        routed_counter.add(n_routed);
                        (scan.stall_ns(), res)
                    }));
                }
                drop(out_tx);
                // The out channel is unbounded, so routers never block on
                // it; draining it here ends when the last router exits.
                for r in out_rx {
                    routed.push(r);
                }
                for h in handles {
                    let (stall, res) = h.join().expect("partitioned cleanup shard panicked");
                    max_stall = max_stall.max(stall);
                    if let Err(e) = res {
                        first_err.get_or_insert(e);
                    }
                }
            });
        }
        self.metrics
            .gauge("boat.partition.max_stall_ns")
            .set(max_stall);
        if let Some(e) = first_err {
            return Err(e);
        }
        // Reduce, exactly as the parallel path does: shard merges commute,
        // deposits replay in global (= serial) chunk order.
        let merge_span = self.metrics.span("boat.cleanup.merge");
        for shard in &shards {
            self.merge_shard(shard);
        }
        routed.sort_unstable_by_key(|c| c.index);
        for chunk in routed {
            self.apply_deposits(chunk.deposits)?;
        }
        merge_span.finish();
        Ok(())
    }

    /// The verification / finalization pass: walk the tree top-down,
    /// re-derive every exact split, verify the coarse criteria, resolve
    /// every node, and emit completion [`Job`]s for frontier and failed
    /// nodes. Idempotent with respect to stored state.
    pub fn finalize(&mut self, imp: &dyn Impurity, limits: GrowthLimits) -> Result<Vec<Job>> {
        for node in &mut self.nodes {
            node.resolution = Resolution::Pending;
        }
        let mut jobs = Vec::new();
        self.finalize_node(0, Vec::new(), imp, limits, &mut jobs)?;
        Ok(jobs)
    }

    fn finalize_node(
        &mut self,
        idx: usize,
        carried: Vec<Record>,
        imp: &dyn Impurity,
        limits: GrowthLimits,
        jobs: &mut Vec<Job>,
    ) -> Result<()> {
        let depth = self.nodes[idx].depth;
        let k = self.schema.n_classes();

        let mut combined = self.nodes[idx].state.class_totals.clone();
        for r in &carried {
            combined[r.label() as usize] += 1;
        }

        if limits.must_stop(&combined, depth) {
            self.metrics.counter("boat.verify.leaf").inc();
            self.nodes[idx].resolution = Resolution::Leaf { counts: combined };
            return Ok(());
        }

        let Some(crit) = self.nodes[idx].crit.clone() else {
            let fp = fingerprint(&self.schema, &carried);
            self.metrics.counter("boat.verify.frontier").inc();
            self.nodes[idx].resolution = Resolution::Frontier { counts: combined };
            jobs.push(Job {
                idx,
                carried,
                carried_fp: fp,
            });
            return Ok(());
        };

        // ---- build full-family views (stored + carried) ----
        let mut full_cat: Vec<Option<CatAvc>> = self.nodes[idx].state.cat.clone();
        let mut full_buckets: Vec<Option<BucketSet>> = self.nodes[idx].state.buckets.clone();
        for r in &carried {
            for (a, slot) in full_cat.iter_mut().enumerate() {
                if let Some(avc) = slot {
                    avc.add(r.cat(a), r.label());
                }
            }
            for (a, slot) in full_buckets.iter_mut().enumerate() {
                if let Some(b) = slot {
                    b.add(r.num(a), r.label());
                }
            }
        }

        // ---- derive the exact split for the coarse criterion ----
        let chosen: Option<SplitEval> = match &crit {
            CoarseCriterion::Cat { attr, subset } => {
                let avc = full_cat[*attr].as_ref().expect("cat attr has AVC");
                match best_categorical_split(*attr, avc, imp) {
                    Some(eval) => {
                        let same = matches!(
                            eval.split.predicate,
                            boat_tree::Predicate::CatIn(s) if s == *subset
                        );
                        same.then_some(eval)
                    }
                    None => None,
                }
            }
            CoarseCriterion::Num { attr, lo, hi } => {
                let mut full_parked: Vec<Record> = self.nodes[idx]
                    .state
                    .parked
                    .as_mut()
                    .expect("numeric node parks")
                    .to_vec()?;
                full_parked.extend(
                    carried
                        .iter()
                        .filter(|r| {
                            let v = r.num(*attr);
                            v >= *lo && v <= *hi
                        })
                        .cloned(),
                );
                let mut edge = self.nodes[idx].state.edge_left.clone();
                for r in &carried {
                    if r.num(*attr) < *lo {
                        edge[r.label() as usize] += 1;
                    }
                }
                let mut interval_avc = NumAvc::new(k);
                for r in &full_parked {
                    interval_avc.add(r.num(*attr), r.label());
                }
                sweep_numeric(
                    *attr,
                    interval_avc.iter(),
                    Some(&edge),
                    None,
                    &combined,
                    imp,
                )
            }
        };

        let Some(chosen) = chosen else {
            if std::env::var("BOAT_DEBUG_VERIFY").is_ok() {
                eprintln!("node {idx} FAIL: no/mismatched chosen split for {crit:?}");
            }
            return self.fail_node(idx, carried, combined, jobs);
        };

        // ---- cross-attribute verification ----
        let mut ok = true;
        'attrs: for a in 0..self.schema.n_attributes() {
            match self.schema.attribute(a).ty() {
                AttrType::Categorical { .. } => {
                    if a == chosen.split.attr {
                        continue;
                    }
                    let avc = full_cat[a].as_ref().expect("cat attr has AVC");
                    if let Some(cand) = best_categorical_split(a, avc, imp) {
                        if cmp_splits(&cand, &chosen) == Ordering::Less {
                            if std::env::var("BOAT_DEBUG_VERIFY").is_ok() {
                                eprintln!(
                                    "node {idx} FAIL: cat attr {a} beats chosen ({} < {})",
                                    cand.impurity, chosen.impurity
                                );
                            }
                            ok = false;
                            break 'attrs;
                        }
                    }
                }
                AttrType::Numeric => {
                    let bset = full_buckets[a].as_ref().expect("numeric attr has buckets");
                    let stamps = bset.stamps();
                    let boundaries = bset.boundaries();
                    // For the splitting attribute, candidates inside the
                    // closed interval `[lo, hi]` were examined exactly —
                    // skip those buckets entirely, and skip the *exact
                    // boundary candidate* of any boundary inside the
                    // interval (the sweep already evaluated it).
                    let interval = match &crit {
                        CoarseCriterion::Num { attr, lo, hi } if *attr == a => Some((*lo, *hi)),
                        _ => None,
                    };
                    let n_total: u64 = combined.iter().sum();
                    for b in 0..bset.n_buckets() {
                        if bset.bucket_counts(b).iter().all(|&c| c == 0) {
                            continue; // no candidate split points inside
                        }
                        let upper = if b < boundaries.len() {
                            boundaries[b]
                        } else {
                            f64::INFINITY
                        };
                        let lower = if b == 0 {
                            f64::NEG_INFINITY
                        } else {
                            boundaries[b - 1]
                        };
                        if let Some((lo_v, hi_v)) = interval {
                            if lower >= lo_v && upper <= hi_v {
                                continue; // fully inside: exactly examined
                            }
                        }
                        let (exact_upper, interior) =
                            bset.bucket_bound_parts_with(&stamps, b, &combined, imp);
                        // Exact candidate at the upper boundary value:
                        // compare tie-aware through the same total order the
                        // reference builder uses (equal impurity does not
                        // invalidate the chosen split unless the candidate
                        // also wins the tie-break).
                        let upper_in_interval =
                            interval.is_some_and(|(lo_v, hi_v)| upper >= lo_v && upper <= hi_v);
                        if let Some(stamp) = exact_upper {
                            let left_n: u64 = stamp.iter().sum();
                            if !upper_in_interval && left_n > 0 && left_n < n_total {
                                let right: Vec<u64> =
                                    combined.iter().zip(&stamp).map(|(t, s)| t - s).collect();
                                let impurity = boat_tree::split_impurity(imp, &stamp, &right);
                                let cand = SplitEval {
                                    split: boat_tree::Split {
                                        attr: a,
                                        predicate: boat_tree::Predicate::NumLe(upper),
                                    },
                                    impurity,
                                    left_counts: stamp,
                                    right_counts: right,
                                };
                                if cmp_splits(&cand, &chosen) == Ordering::Less {
                                    if std::env::var("BOAT_DEBUG_VERIFY").is_ok() {
                                        eprintln!(
                                            "node {idx} FAIL: num attr {a} exact boundary \
                                             candidate at {upper} ({impurity}) beats i'={}",
                                            chosen.impurity
                                        );
                                    }
                                    ok = false;
                                    break 'attrs;
                                }
                            }
                        }
                        // Interior candidates (strictly between boundaries):
                        // Lemma 3.1 corner bound, tie-aware. A candidate in
                        // this bucket wins an exact tie against the chosen
                        // split iff it precedes it in the deterministic
                        // total order: smaller attribute index, or — on the
                        // chosen attribute itself — a smaller split value
                        // (buckets outside the interval sit entirely below
                        // `lo` or entirely above `hi`, so the direction is
                        // determined by the bucket, not the candidate).
                        let tie_wins = if a == chosen.split.attr {
                            upper
                                <= match &crit {
                                    CoarseCriterion::Num { lo, .. } => *lo,
                                    CoarseCriterion::Cat { .. } => unreachable!(
                                        "numeric chosen attr under a categorical criterion"
                                    ),
                                }
                        } else {
                            a < chosen.split.attr
                        };
                        if let Some(bound) = interior {
                            if !bucket_passes(bound, chosen.impurity, tie_wins) {
                                if std::env::var("BOAT_DEBUG_VERIFY").is_ok() {
                                    eprintln!(
                                        "node {idx} FAIL: num attr {a} bucket {b}/{} \
                                         interior bound {bound} vs i'={} (interval={interval:?})",
                                        bset.n_buckets(),
                                        chosen.impurity
                                    );
                                }
                                ok = false;
                                break 'attrs;
                            }
                        }
                    }
                }
            }
        }
        if !ok {
            return self.fail_node(idx, carried, combined, jobs);
        }

        // ---- verified: route parked + carried tuples to the children ----
        let mut to_route = self.nodes[idx]
            .state
            .parked
            .as_mut()
            .map(|p| p.to_vec())
            .transpose()?
            .unwrap_or_default();
        to_route.extend(carried);
        let (mut left_c, mut right_c) = (Vec::new(), Vec::new());
        for r in to_route {
            if chosen.split.goes_left(&r) {
                left_c.push(r);
            } else {
                right_c.push(r);
            }
        }
        let (l, rgt) = (
            self.nodes[idx].left.expect("internal"),
            self.nodes[idx].right.expect("internal"),
        );
        self.metrics.counter("boat.verify.pass").inc();
        self.nodes[idx].resolution = Resolution::Split { eval: chosen };
        self.finalize_node(l, left_c, imp, limits, jobs)?;
        self.finalize_node(rgt, right_c, imp, limits, jobs)?;
        Ok(())
    }

    fn fail_node(
        &mut self,
        idx: usize,
        carried: Vec<Record>,
        combined: Vec<u64>,
        jobs: &mut Vec<Job>,
    ) -> Result<()> {
        let fp = fingerprint(&self.schema, &carried);
        // A failed verdict is exactly a rebuild trigger: the job pushed
        // below regrows (or promotes) this subtree.
        self.metrics.counter("boat.verify.fail").inc();
        self.nodes[idx].resolution = Resolution::Failed { counts: combined };
        jobs.push(Job {
            idx,
            carried,
            carried_fp: fp,
        });
        Ok(())
    }

    /// Try to assemble the full family of `idx` from retained buffers in
    /// its subtree: parked sets at numeric nodes plus family buffers at
    /// frontier nodes. Returns `None` if some frontier descendant retained
    /// no records (a collection scan is then required).
    pub fn collect_subtree(&mut self, idx: usize) -> Result<Option<Vec<Record>>> {
        // First check retainment without copying.
        let mut stack = vec![idx];
        let mut order = Vec::new();
        while let Some(i) = stack.pop() {
            order.push(i);
            if self.nodes[i].crit.is_some() {
                stack.push(self.nodes[i].left.expect("internal"));
                stack.push(self.nodes[i].right.expect("internal"));
            } else if self.nodes[i].state.family.is_none()
                && self.nodes[i].state.class_totals.iter().any(|&c| c > 0)
            {
                return Ok(None);
            }
        }
        let mut out = Vec::new();
        for i in order {
            let node = &mut self.nodes[i];
            if let Some(parked) = node.state.parked.as_mut() {
                for r in parked.iter()? {
                    out.push(r?);
                }
            }
            if node.crit.is_none() {
                if let Some(family) = node.state.family.as_mut() {
                    for r in family.iter()? {
                        out.push(r?);
                    }
                }
            }
        }
        Ok(Some(out))
    }

    /// Route one record by the *resolved* splits, returning the index of
    /// the Frontier/Failed node it lands in (if any). Used by the
    /// collection scan for jobs whose records were not retained.
    pub fn route_to_job(&self, r: &Record) -> Option<usize> {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx].resolution {
                Resolution::Split { eval } => {
                    let node = &self.nodes[idx];
                    idx = if eval.split.goes_left(r) {
                        node.left.expect("internal")
                    } else {
                        node.right.expect("internal")
                    };
                }
                Resolution::Frontier { .. } | Resolution::Failed { .. } => return Some(idx),
                Resolution::Leaf { .. } | Resolution::Pending => return None,
            }
        }
    }

    /// Assemble the final decision tree from resolutions and grown
    /// subtrees. Panics if a Frontier/Failed node has no grown subtree
    /// (jobs must be executed first).
    pub fn extract_tree(&self) -> Tree {
        let mut tree = self.extract_node(0);
        tree.compact();
        tree
    }

    fn extract_node(&self, idx: usize) -> Tree {
        match &self.nodes[idx].resolution {
            Resolution::Pending => panic!("extract_tree before finalize"),
            Resolution::Leaf { counts } => Tree::leaf(counts.clone()),
            Resolution::Frontier { .. } | Resolution::Failed { .. } => self.nodes[idx]
                .grown
                .clone()
                .expect("completion job not executed before extract_tree"),
            Resolution::Split { eval } => {
                let total: Vec<u64> = eval
                    .left_counts
                    .iter()
                    .zip(&eval.right_counts)
                    .map(|(a, b)| a + b)
                    .collect();
                let mut tree = Tree::leaf(total);
                let root = tree.root();
                let (l, r) = tree.split_node(
                    root,
                    eval.split,
                    eval.left_counts.clone(),
                    eval.right_counts.clone(),
                );
                let lt = self.extract_node(self.nodes[idx].left.expect("internal"));
                let rt = self.extract_node(self.nodes[idx].right.expect("internal"));
                tree.replace_subtree(l, &lt);
                tree.replace_subtree(r, &rt);
                tree
            }
        }
    }

    /// Splice another working tree in place of node `at`: the sub-tree's
    /// root replaces `at`, its other nodes are appended with indices
    /// remapped, and its depths are shifted. Used by incremental
    /// maintenance to *promote* a frontier node that outgrew the in-memory
    /// threshold into fully maintained BOAT state (paper §4: the tree's
    /// per-node information is kept up to date as the tree grows).
    pub fn splice(&mut self, at: usize, sub: WorkTree) {
        let base = self.nodes.len();
        let depth_offset = self.nodes[at].depth;
        let parent_of_at = self.nodes[at].parent;
        let remap = |j: usize| if j == 0 { at } else { base + j - 1 };
        for (j, mut n) in sub.nodes.into_iter().enumerate() {
            n.depth += depth_offset;
            n.left = n.left.map(remap);
            n.right = n.right.map(remap);
            n.parent = if j == 0 {
                parent_of_at
            } else {
                Some(remap(n.parent.expect("non-root")))
            };
            if j == 0 {
                self.nodes[at] = n;
            } else {
                self.nodes.push(n);
            }
        }
    }

    /// Size of the root family (the current logical dataset size).
    pub fn root_family(&self) -> u64 {
        self.nodes[0].state.class_totals.iter().sum()
    }

    /// Total parked tuples across all nodes.
    pub fn parked_total(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.state.parked.as_ref().map_or(0, |p| p.len()))
            .sum()
    }

    /// Total tuples that overflowed to spill files (parked + families).
    pub fn spilled_total(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                n.state.parked.as_ref().map_or(0, |p| p.spilled_len())
                    + n.state.family.as_ref().map_or(0, |f| f.spilled_len())
            })
            .sum()
    }
}

/// Build maintained BOAT state *exactly* from an in-memory family: every
/// split is computed from the full family (not a sample), numeric criteria
/// get degenerate confidence intervals at the exact split point, and bucket
/// / category statistics are built from the family itself. Used to
/// *promote* a frontier node that outgrew the in-memory threshold into
/// fully maintained state (paper §4 keeps the whole tree's per-node
/// information current as the tree grows) — much cheaper than a bootstrap
/// sub-run, and it verifies trivially on the next pass.
///
/// The records handed in must follow the parking invariant (no
/// ancestor-parked tuples); the returned tree's nodes follow it too.
pub(crate) fn build_exact_work(
    schema: Arc<Schema>,
    records: Vec<Record>,
    imp: &dyn Impurity,
    config: &BoatConfig,
    limits: GrowthLimits,
    spill_stats: IoStats,
    metrics: Registry,
) -> Result<WorkTree> {
    let mut work = WorkTree {
        schema,
        nodes: Vec::new(),
        spill_stats,
        metrics,
    };
    build_exact_node(&mut work, None, 0, records, imp, config, limits)?;
    Ok(work)
}

fn build_exact_node(
    work: &mut WorkTree,
    parent: Option<usize>,
    depth: u32,
    records: Vec<Record>,
    imp: &dyn Impurity,
    config: &BoatConfig,
    limits: GrowthLimits,
) -> Result<usize> {
    let schema = work.schema.clone();
    let k = schema.n_classes();
    let mut class_totals = vec![0u64; k];
    for r in &records {
        class_totals[r.label() as usize] += 1;
    }
    let idx = work.nodes.len();

    let selector = boat_tree::ImpuritySelector::new(ErasedImpurity(imp));
    let refs: Vec<&Record> = records.iter().collect();
    let eval = if limits.must_stop(&class_totals, depth) {
        None
    } else {
        boat_tree::grow::SplitSelector::select_records(&selector, &schema, &refs)
    };
    drop(refs);

    let Some(eval) = eval else {
        // Frontier leaf: retain the family so future growth never rescans.
        let mut family = SpillBuffer::new_in(
            schema.clone(),
            config.spill_budget,
            work.spill_stats.clone(),
            config.spill_dir.clone(),
        );
        family.extend(records)?;
        work.nodes.push(WorkNode {
            crit: None,
            reason: Some(FrontierReason::SampleLeaf),
            left: None,
            right: None,
            parent,
            depth,
            est_family: class_totals.iter().sum(),
            state: NodeState {
                class_totals,
                cat: Vec::new(),
                buckets: Vec::new(),
                edge_left: vec![0; k],
                parked: None,
                family: Some(family),
                dirty: true,
            },
            resolution: Resolution::Pending,
            grown: None,
            grown_carried_fp: None,
            promotions: 0,
        });
        return Ok(idx);
    };

    // Exact criterion. Numeric splits get the statistical *shelf* around
    // the exact split point as their confidence interval (not a degenerate
    // point: future chunks shift the optimum within sampling noise, and
    // the interval must absorb that or every update would re-promote).
    let crit = match eval.split.predicate {
        boat_tree::Predicate::NumLe(x) => {
            let a = eval.split.attr;
            let mut avc = NumAvc::new(k);
            for r in &records {
                avc.add(r.num(a), r.label());
            }
            let (lo, hi) = widen_interval(
                &avc,
                &class_totals,
                imp,
                x,
                x,
                config.interval_pad_values.max(1),
            );
            CoarseCriterion::Num { attr: a, lo, hi }
        }
        boat_tree::Predicate::CatIn(subset) => CoarseCriterion::Cat {
            attr: eval.split.attr,
            subset,
        },
    };

    // Exact per-attribute statistics from the family.
    let mut cat: Vec<Option<CatAvc>> = Vec::with_capacity(schema.n_attributes());
    let mut buckets: Vec<Option<BucketSet>> = Vec::with_capacity(schema.n_attributes());
    for (a, attr) in schema.attributes().iter().enumerate() {
        match attr.ty() {
            AttrType::Categorical { cardinality } => {
                let mut avc = CatAvc::new(cardinality, k);
                for r in &records {
                    avc.add(r.cat(a), r.label());
                }
                cat.push(Some(avc));
                buckets.push(None);
            }
            AttrType::Numeric => {
                cat.push(None);
                let mut sample_avc = NumAvc::new(k);
                for r in &records {
                    sample_avc.add(r.num(a), r.label());
                }
                let must_include: Vec<f64> = match &crit {
                    CoarseCriterion::Num { attr, lo, hi } if *attr == a => vec![*lo, *hi],
                    _ => vec![],
                };
                let bounds = build_boundaries(
                    &sample_avc,
                    &class_totals,
                    imp,
                    eval.impurity,
                    config.discretize,
                    &must_include,
                );
                let mut bset = BucketSet::new(bounds, k);
                for r in &records {
                    bset.add(r.num(a), r.label());
                }
                buckets.push(Some(bset));
            }
        }
    }

    // Partition by the exact criterion with parking.
    let mut edge_left = vec![0u64; k];
    let mut parked = SpillBuffer::new(
        schema.clone(),
        config.spill_budget,
        work.spill_stats.clone(),
    );
    let (mut left_recs, mut right_recs) = (Vec::new(), Vec::new());
    match &crit {
        CoarseCriterion::Num { attr, lo, hi } => {
            for r in records {
                let v = r.num(*attr);
                if v < *lo {
                    edge_left[r.label() as usize] += 1;
                    left_recs.push(r);
                } else if v <= *hi {
                    parked.push(r)?;
                } else {
                    right_recs.push(r);
                }
            }
        }
        CoarseCriterion::Cat { attr, subset } => {
            for r in records {
                if subset.contains(r.cat(*attr)) {
                    left_recs.push(r);
                } else {
                    right_recs.push(r);
                }
            }
        }
    }

    work.nodes.push(WorkNode {
        crit: Some(crit.clone()),
        reason: None,
        left: None,
        right: None,
        parent,
        depth,
        est_family: class_totals.iter().sum(),
        state: NodeState {
            class_totals,
            cat,
            buckets,
            edge_left,
            parked: matches!(crit, CoarseCriterion::Num { .. }).then_some(parked),
            family: None,
            dirty: true,
        },
        resolution: Resolution::Pending,
        grown: None,
        grown_carried_fp: None,
        promotions: 0,
    });
    let l = build_exact_node(work, Some(idx), depth + 1, left_recs, imp, config, limits)?;
    let r = build_exact_node(work, Some(idx), depth + 1, right_recs, imp, config, limits)?;
    work.nodes[idx].left = Some(l);
    work.nodes[idx].right = Some(r);
    Ok(idx)
}

/// Adapter making a `&dyn Impurity` usable where an owned `Impurity` is
/// expected.
#[derive(Debug, Clone, Copy)]
struct ErasedImpurity<'a>(&'a dyn Impurity);

impl Impurity for ErasedImpurity<'_> {
    fn node_impurity(&self, counts: &[u64]) -> f64 {
        self.0.node_impurity(counts)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Order-insensitive fingerprint of a carried set (used to reuse grown
/// subtrees across verification passes when nothing changed).
fn fingerprint(schema: &Schema, records: &[Record]) -> u64 {
    let mut acc: u64 = 0x9E3779B97F4A7C15 ^ (records.len() as u64);
    for r in records {
        let mut h = DefaultHasher::new();
        if let Ok(bytes) = boat_data::codec::encode(schema, r) {
            bytes.hash(&mut h);
        }
        // XOR-fold per record: order-insensitive.
        acc ^= h.finish();
    }
    acc
}

/// Widen a bootstrap confidence interval using the node's *sample family*.
///
/// Three effects, all optimism heuristics (verification still guarantees
/// the exact tree):
///
/// 1. the interval is stretched to cover the sample family's own best
///    candidate on the attribute (small-resample bootstrap points can all
///    undershoot it);
/// 2. it is stretched across the *statistically indistinguishable shelf*:
///    adjacent sample candidates whose impurity is within ~½σ of the
///    sample best, where σ ≈ 1/√m is the impurity estimation noise at a
///    sample family of size m — the full database's optimum wanders inside
///    that shelf, and bucket bounds can never resolve it;
/// 3. it is padded by `pad_min` extra distinct sample values on each side
///    (the full database's optimum usually sits in the sample-gap just
///    past the sample's best candidate).
///
/// Extension stops once the added sample mass on a side exceeds 2% of the
/// family (keeps parked sets small on low-cardinality attributes where a
/// single value carries percent-level mass).
fn widen_interval(
    avc: &NumAvc,
    totals: &[u64],
    imp: &dyn Impurity,
    lo: f64,
    hi: f64,
    pad_min: usize,
) -> (f64, f64) {
    let m: u64 = totals.iter().sum();
    if m == 0 || avc.n_distinct() == 0 {
        return (lo, hi);
    }
    // Candidate evaluations: (value, impurity, mass at value).
    let mut evals: Vec<(f64, f64, u64)> = Vec::with_capacity(avc.n_distinct());
    let mut cum = vec![0u64; totals.len()];
    let mut best = f64::INFINITY;
    for (v, counts) in avc.iter() {
        let mass: u64 = counts.iter().sum();
        for (c, x) in cum.iter_mut().zip(counts) {
            *c += x;
        }
        let left_n: u64 = cum.iter().sum();
        let impurity = if left_n == 0 || left_n == m {
            f64::INFINITY
        } else {
            let right: Vec<u64> = totals.iter().zip(&cum).map(|(t, c)| t - c).collect();
            boat_tree::split_impurity(imp, &cum, &right)
        };
        if impurity < best {
            best = impurity;
        }
        evals.push((v, impurity, mass));
    }
    if !best.is_finite() {
        return (lo, hi);
    }
    let tol = best + 0.5 / (m as f64).sqrt();
    // Parking even a quarter of the family per side is still far cheaper
    // than the rebuild a false alarm triggers (parked tuples cost two
    // sequential spill passes; a rebuild re-samples, re-bootstraps and
    // re-scans the whole partition).
    let mass_cap = (m / 4).max(8);

    // Start from the bootstrap interval, stretched over the sample best.
    let best_idx = evals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
        .expect("non-empty evals");
    let mut lo_idx = evals.partition_point(|e| e.0 < lo).min(best_idx);
    let mut hi_idx = evals
        .partition_point(|e| e.0 <= hi)
        .saturating_sub(1)
        .max(best_idx);

    // Shelf extension, mass-capped per side.
    let mut added: u64 = 0;
    while lo_idx > 0 && evals[lo_idx - 1].1 <= tol && added <= mass_cap {
        lo_idx -= 1;
        added += evals[lo_idx].2;
    }
    let mut added: u64 = 0;
    while hi_idx + 1 < evals.len() && evals[hi_idx + 1].1 <= tol && added <= mass_cap {
        hi_idx += 1;
        added += evals[hi_idx].2;
    }
    // Minimum gap padding.
    lo_idx = lo_idx.saturating_sub(pad_min);
    hi_idx = (hi_idx + pad_min).min(evals.len() - 1);
    (evals[lo_idx].0.min(lo), evals[hi_idx].0.max(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::build_coarse_tree;
    use boat_data::Partitioner;
    use boat_data::{Attribute, Field, MemoryDataset, RecordSource};
    use boat_tree::{Gini, ImpuritySelector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        Schema::shared(vec![Attribute::numeric("x")], 2).unwrap()
    }

    fn rec(x: f64, label: u16) -> Record {
        Record::new(vec![Field::Num(x)], label)
    }

    /// Threshold concept at 500 over 0..1000.
    fn threshold_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let x = (i % 1000) as f64;
                rec(x, u16::from(x > 500.0))
            })
            .collect()
    }

    fn prepared(records: &[Record], cfg: &BoatConfig) -> WorkTree {
        let ds = MemoryDataset::new(schema(), records.to_vec());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sample = boat_data::sample::reservoir_sample(&ds, cfg.sample_size, &mut rng).unwrap();
        let selector = ImpuritySelector::new(Gini);
        let coarse = build_coarse_tree(
            &schema(),
            &sample,
            &selector,
            cfg,
            ds.len(),
            &mut rng,
            &Registry::new(),
        );
        WorkTree::prepare(
            &coarse,
            schema(),
            &sample,
            &Gini,
            cfg,
            ds.len(),
            false,
            boat_data::IoStats::new(),
            boat_obs::Registry::new(),
        )
    }

    fn small_cfg() -> BoatConfig {
        BoatConfig {
            sample_size: 500,
            bootstrap_reps: 8,
            bootstrap_sample_size: 250,
            in_memory_threshold: 100,
            spill_budget: 32,
            seed: 99,
            ..BoatConfig::default()
        }
    }

    #[test]
    fn absorb_then_finalize_resolves_a_clean_root() {
        let records = threshold_records(4000);
        let cfg = small_cfg();
        let mut work = prepared(&records, &cfg);
        for r in &records {
            work.absorb(r, false).unwrap();
        }
        assert_eq!(work.root_family(), 4000);
        let jobs = work.finalize(&Gini, cfg.limits).unwrap();
        // Root must be a verified split at exactly 500.
        match &work.nodes[0].resolution {
            Resolution::Split { eval } => {
                assert_eq!(eval.split.attr, 0);
                match eval.split.predicate {
                    boat_tree::Predicate::NumLe(x) => assert_eq!(x, 500.0),
                    ref p => panic!("unexpected predicate {p:?}"),
                }
            }
            other => panic!("root should verify, got {other:?}"),
        }
        // Children are pure -> leaves, no completion jobs from them.
        for job in &jobs {
            assert_ne!(job.idx, 0);
        }
    }

    #[test]
    fn absorb_delete_inverts_insert() {
        let records = threshold_records(1000);
        let cfg = small_cfg();
        let mut work = prepared(&records, &cfg);
        for r in &records {
            work.absorb(r, false).unwrap();
        }
        let counts_before = work.nodes[0].state.class_totals.clone();
        let extra = rec(333.0, 0);
        work.absorb(&extra, false).unwrap();
        work.absorb(&extra, true).unwrap();
        assert_eq!(work.nodes[0].state.class_totals, counts_before);
    }

    /// Assert complete per-node state equality between two work trees.
    fn assert_same_state(a: &mut WorkTree, b: &mut WorkTree) {
        assert_eq!(a.nodes.len(), b.nodes.len());
        for i in 0..a.nodes.len() {
            let (sa, sb) = (&a.nodes[i].state, &b.nodes[i].state);
            assert_eq!(sa.class_totals, sb.class_totals, "class_totals at node {i}");
            assert_eq!(sa.edge_left, sb.edge_left, "edge_left at node {i}");
            assert_eq!(sa.cat, sb.cat, "cat AVCs at node {i}");
            assert_eq!(sa.buckets, sb.buckets, "buckets at node {i}");
            assert_eq!(sa.dirty, sb.dirty, "dirty at node {i}");
            let (sa, sb) = (&mut a.nodes[i].state, &mut b.nodes[i].state);
            match (sa.parked.as_mut(), sb.parked.as_mut()) {
                (None, None) => {}
                (Some(pa), Some(pb)) => {
                    assert_eq!(
                        pa.to_vec().unwrap(),
                        pb.to_vec().unwrap(),
                        "parked records at node {i}"
                    );
                }
                _ => panic!("parked presence differs at node {i}"),
            }
            match (sa.family.as_mut(), sb.family.as_mut()) {
                (None, None) => {}
                (Some(fa), Some(fb)) => {
                    assert_eq!(
                        fa.to_vec().unwrap(),
                        fb.to_vec().unwrap(),
                        "family records at node {i}"
                    );
                }
                _ => panic!("family presence differs at node {i}"),
            }
        }
    }

    #[test]
    fn parallel_cleanup_state_matches_serial_exactly() {
        // Rich multi-attribute data (numeric + categorical criteria, parked
        // buffers, frontier families) — the parallel scan must leave the
        // work tree in *identical* state to the serial scan.
        let gen = boat_datagen::GeneratorConfig::new(boat_datagen::LabelFunction::F6).with_seed(77);
        let records = gen.generate_vec(4_000);
        let ds = MemoryDataset::new(gen.schema(), records.clone());
        let cfg = BoatConfig {
            sample_size: 800,
            bootstrap_reps: 8,
            bootstrap_sample_size: 400,
            in_memory_threshold: 100,
            spill_budget: 16,
            cleanup_chunk_size: 123, // odd size → ragged final chunk
            seed: 7,
            ..BoatConfig::default()
        };
        let prepare = || {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let sample =
                boat_data::sample::reservoir_sample(&ds, cfg.sample_size, &mut rng).unwrap();
            let selector = ImpuritySelector::new(Gini);
            let coarse = build_coarse_tree(
                &gen.schema(),
                &sample,
                &selector,
                &cfg,
                ds.len(),
                &mut rng,
                &Registry::new(),
            );
            WorkTree::prepare(
                &coarse,
                gen.schema(),
                &sample,
                &Gini,
                &cfg,
                ds.len(),
                false,
                boat_data::IoStats::new(),
                boat_obs::Registry::new(),
            )
        };
        let mut serial = prepare();
        for r in &records {
            serial.absorb(r, false).unwrap();
        }
        for threads in [2usize, 4, 8] {
            let mut parallel = prepare();
            parallel
                .parallel_cleanup(&ds, threads, cfg.cleanup_chunk_size)
                .unwrap();
            assert_same_state(&mut serial, &mut parallel);
        }
    }

    #[test]
    fn partitioned_cleanup_state_matches_serial_exactly() {
        // Same richness as the parallel oracle, but sharded row ranges with
        // prefetch readers instead of a single fanned-out scan.
        let gen = boat_datagen::GeneratorConfig::new(boat_datagen::LabelFunction::F6).with_seed(78);
        let records = gen.generate_vec(4_000);
        let ds = MemoryDataset::new(gen.schema(), records.clone());
        let cfg = BoatConfig {
            sample_size: 800,
            bootstrap_reps: 8,
            bootstrap_sample_size: 400,
            in_memory_threshold: 100,
            spill_budget: 16,
            cleanup_chunk_size: 123, // odd size → ragged final chunk
            seed: 7,
            ..BoatConfig::default()
        };
        let prepare = || {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let sample =
                boat_data::sample::reservoir_sample(&ds, cfg.sample_size, &mut rng).unwrap();
            let selector = ImpuritySelector::new(Gini);
            let coarse = build_coarse_tree(
                &gen.schema(),
                &sample,
                &selector,
                &cfg,
                ds.len(),
                &mut rng,
                &Registry::new(),
            );
            WorkTree::prepare(
                &coarse,
                gen.schema(),
                &sample,
                &Gini,
                &cfg,
                ds.len(),
                false,
                boat_data::IoStats::new(),
                boat_obs::Registry::new(),
            )
        };
        let mut serial = prepare();
        for r in &records {
            serial.absorb(r, false).unwrap();
        }
        for shards in [1usize, 2, 4, 8, 64] {
            let ranges =
                boat_data::RowRangePartitioner.partition(ds.len(), cfg.cleanup_chunk_size, shards);
            let mut partitioned = prepare();
            partitioned
                .partitioned_cleanup(&ds, &ranges, cfg.cleanup_chunk_size, 2)
                .unwrap();
            assert_same_state(&mut serial, &mut partitioned);
        }
    }

    #[test]
    fn batch_delete_matches_serial_deletes_exactly() {
        let gen = boat_datagen::GeneratorConfig::new(boat_datagen::LabelFunction::F6).with_seed(79);
        let records = gen.generate_vec(3_000);
        let ds = MemoryDataset::new(gen.schema(), records.clone());
        let cfg = BoatConfig {
            sample_size: 600,
            bootstrap_reps: 8,
            bootstrap_sample_size: 300,
            in_memory_threshold: 100,
            spill_budget: 16,
            seed: 11,
            ..BoatConfig::default()
        };
        let prepare = || {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let sample =
                boat_data::sample::reservoir_sample(&ds, cfg.sample_size, &mut rng).unwrap();
            let selector = ImpuritySelector::new(Gini);
            let coarse = build_coarse_tree(
                &gen.schema(),
                &sample,
                &selector,
                &cfg,
                ds.len(),
                &mut rng,
                &Registry::new(),
            );
            let mut work = WorkTree::prepare(
                &coarse,
                gen.schema(),
                &sample,
                &Gini,
                &cfg,
                ds.len(),
                true, // retain families so deletes touch family buffers too
                boat_data::IoStats::new(),
                boat_obs::Registry::new(),
            );
            for r in &records {
                work.absorb(r, false).unwrap();
            }
            work
        };
        // Delete every 7th record, including a duplicated prefix so the
        // batch validator must account for already-pending removals.
        let mut victims: Vec<Record> = records.iter().step_by(7).cloned().collect();
        victims.extend(records.iter().step_by(7).take(3).cloned());
        let mut serial = prepare();
        let mut serial_applied = 0u64;
        let mut serial_err: Option<DataError> = None;
        for v in &victims {
            match serial.absorb(v, true) {
                Ok(()) => serial_applied += 1,
                Err(e) => {
                    serial_err = Some(e);
                    break;
                }
            }
        }
        let mut batched = prepare();
        let (batch_applied, batch_err) = batched.absorb_delete_batch(&victims);
        assert_eq!(serial_applied, batch_applied);
        assert_eq!(serial_err.is_some(), batch_err.is_some());
        assert_same_state(&mut serial, &mut batched);
    }

    #[test]
    fn deleting_a_class_never_seen_errors() {
        // All records are class 0; deleting a class-1 record must fail at
        // the root's class totals.
        let records: Vec<Record> = (0..500).map(|i| rec((i % 100) as f64, 0)).collect();
        let cfg = small_cfg();
        let mut work = prepared(&records, &cfg);
        for r in &records {
            work.absorb(r, false).unwrap();
        }
        assert!(work.absorb(&rec(3.0, 1), true).is_err());
    }

    #[test]
    fn build_exact_work_verifies_trivially() {
        let records = threshold_records(2000);
        let cfg = small_cfg();
        let work_limits = GrowthLimits::default();
        let mut work = build_exact_work(
            schema(),
            records.clone(),
            &Gini,
            &cfg,
            work_limits,
            boat_data::IoStats::new(),
            boat_obs::Registry::new(),
        )
        .unwrap();
        let jobs = work.finalize(&Gini, work_limits).unwrap();
        assert!(
            matches!(work.nodes[0].resolution, Resolution::Split { .. }),
            "exact-built root must verify"
        );
        assert!(
            !work
                .nodes
                .iter()
                .any(|n| matches!(n.resolution, Resolution::Failed { .. })),
            "exact-built state must not fail its own verification"
        );
        // Frontier jobs (pure leaves resolved as Leaf) need no records.
        for job in &jobs {
            assert!(matches!(
                work.nodes[job.idx].resolution,
                Resolution::Frontier { .. }
            ));
        }
        // The extracted tree (after executing trivial jobs) matches the
        // reference builder.
        let selector = ImpuritySelector::new(Gini);
        let reference =
            boat_tree::TdTreeBuilder::new(&selector, work_limits).fit(&schema(), &records);
        // Execute jobs in-place via static growth (families retained).
        for job in jobs {
            let mut family = work.collect_subtree(job.idx).unwrap().unwrap();
            family.extend(job.carried.iter().cloned());
            let sub = boat_tree::TdTreeBuilder::new(&selector, work_limits).fit(&schema(), &family);
            work.nodes[job.idx].grown = Some(sub);
            work.nodes[job.idx].grown_carried_fp = Some(job.carried_fp);
        }
        assert_eq!(work.extract_tree(), reference);
    }

    #[test]
    fn splice_remaps_structure_and_depths() {
        let records = threshold_records(2000);
        let cfg = small_cfg();
        let mut outer = build_exact_work(
            schema(),
            records.clone(),
            &Gini,
            &cfg,
            GrowthLimits::default(),
            boat_data::IoStats::new(),
            boat_obs::Registry::new(),
        )
        .unwrap();
        let n_before = outer.nodes.len();
        // Splice a small exact tree over the root's left child.
        let left = outer.nodes[0].left.unwrap();
        let child_depth = outer.nodes[left].depth;
        let sub = build_exact_work(
            schema(),
            threshold_records(300),
            &Gini,
            &cfg,
            GrowthLimits::default(),
            boat_data::IoStats::new(),
            boat_obs::Registry::new(),
        )
        .unwrap();
        let sub_nodes = sub.nodes.len();
        outer.splice(left, sub);
        assert_eq!(outer.nodes.len(), n_before + sub_nodes - 1);
        // Depths below the splice point are shifted by the child's depth.
        assert_eq!(outer.nodes[left].depth, child_depth);
        if let Some(l2) = outer.nodes[left].left {
            assert_eq!(outer.nodes[l2].depth, child_depth + 1);
            assert_eq!(outer.nodes[l2].parent, Some(left));
        }
        // Parent link of the splice root is preserved.
        assert_eq!(outer.nodes[left].parent, Some(0));
    }

    #[test]
    fn widen_interval_covers_the_shelf_and_pads() {
        // Steep curve: minimum at 10, neighbors clearly worse.
        let mut avc = NumAvc::new(2);
        let mut totals = vec![0u64; 2];
        for i in 0..200u64 {
            let v = (i % 20) as f64;
            let label = u16::from(v > 10.0);
            avc.add(v, label);
            totals[label as usize] += 1;
        }
        let (lo, hi) = widen_interval(&avc, &totals, &Gini, 10.0, 10.0, 1);
        // One padding value each side at minimum.
        assert!(lo <= 9.0, "lo={lo}");
        assert!(hi >= 11.0, "hi={hi}");
        // Steepness keeps it from swallowing the whole axis.
        assert!(
            lo >= 5.0 && hi <= 15.0,
            "[{lo},{hi}] too wide for a steep curve"
        );
    }

    #[test]
    fn widen_interval_mass_cap_limits_flat_valleys() {
        // Perfectly flat (useless) attribute: every candidate ties, the
        // shelf is everything — the mass cap must stop the extension.
        let mut avc = NumAvc::new(2);
        let mut totals = vec![0u64; 2];
        for i in 0..1000u64 {
            let v = (i % 100) as f64;
            let label = (i % 2) as u16;
            avc.add(v, label);
            totals[label as usize] += 1;
        }
        let (lo, hi) = widen_interval(&avc, &totals, &Gini, 50.0, 50.0, 1);
        let covered = avc.iter().filter(|&(v, _)| v >= lo && v <= hi).count();
        assert!(
            covered < 80,
            "mass cap should stop a flat shelf from covering everything ({covered}/100)"
        );
    }

    #[test]
    fn limits_for_subtree_adjusts_depth_only() {
        let limits = GrowthLimits {
            min_split: 5,
            max_depth: Some(10),
            stop_family_size: Some(100),
        };
        let sub = limits_for_subtree(limits, 4);
        assert_eq!(sub.max_depth, Some(6));
        assert_eq!(sub.min_split, 5);
        assert_eq!(sub.stop_family_size, Some(100));
        assert_eq!(limits_for_subtree(limits, 12).max_depth, Some(0));
    }
}
