//! BOAT orchestration (paper §3.5): sampling scan → bootstrap → cleanup
//! scan → verification → completion.
//!
//! In the typical case the whole tree is built in **two** sequential scans
//! of the training database: one to draw the sample, one to clean up. A
//! third scan happens only when a completion job's records were not
//! retained (a failed subtree whose frontier kept no family buffers). Huge
//! unfinished partitions recurse into BOAT itself; small ones finish with
//! the in-memory builder, exactly as §3.5 prescribes.

use crate::coarse::build_coarse_tree;
use crate::config::{BoatConfig, SampleEngine};
use crate::stats::BoatRunStats;
use crate::work::{limits_for_subtree, Job, Resolution, WorkTree};
use boat_data::dataset::RecordSource;
use boat_data::sample::{reservoir_sample, reservoir_sample_range};
use boat_data::spill::SpillBuffer;
use boat_data::{
    DataError, FileDatasetWriter, IoSnapshot, IoStats, Partitioner, Record, Result, RowRange,
    RowRangePartitioner,
};
use boat_obs::{Registry, Snapshot};
use boat_tree::{Gini, GrowthLimits, Impurity, ImpuritySelector, TdTreeBuilder, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static REBUILD_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Result of a BOAT construction run.
#[derive(Debug, Clone)]
pub struct BoatFit {
    /// The exact decision tree — identical to what the in-memory reference
    /// builder produces on the full training database.
    pub tree: Tree,
    /// Run statistics (scan counts, failures, phase timings).
    pub stats: BoatRunStats,
}

/// The BOAT algorithm, parameterized by a concave impurity function.
#[derive(Debug, Clone)]
pub struct Boat<I: Impurity + Clone = Gini> {
    config: BoatConfig,
    impurity: I,
    /// Observability registry: every phase span, verification verdict,
    /// cleanup-shard timer and I/O counter of this instance's runs records
    /// here. Fresh (private) per instance so parallel fits never share
    /// counters; recursive sub-runs share their parent's registry. Swap in
    /// [`boat_obs::Registry::global`] via [`Boat::with_metrics`] for one
    /// flat process-wide namespace.
    metrics: Registry,
}

impl Boat<Gini> {
    /// BOAT with the Gini index (CART's split selection).
    pub fn new(config: BoatConfig) -> Self {
        Boat {
            config,
            impurity: Gini,
            metrics: Registry::new(),
        }
    }
}

impl<I: Impurity + Clone> Boat<I> {
    /// BOAT with an arbitrary concave impurity function.
    pub fn with_impurity(config: BoatConfig, impurity: I) -> Self {
        Boat {
            config,
            impurity,
            metrics: Registry::new(),
        }
    }

    /// Use `metrics` as this instance's observability registry (e.g.
    /// `boat_obs::Registry::global().clone()` to share one process-wide
    /// namespace with other components).
    pub fn with_metrics(mut self, metrics: Registry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &BoatConfig {
        &self.config
    }

    /// The impurity function in use.
    pub fn impurity(&self) -> &I {
        &self.impurity
    }

    /// The observability registry this instance records into.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Grow an in-memory family with the configured sample engine (§3.5's
    /// in-memory switch). Bit-identical output either way — the columnar
    /// engine's determinism contract (`boat_tree::columnar`) — so this is
    /// purely the per-family analogue of the bootstrap-phase engine choice.
    fn inmem_tree(
        &self,
        schema: &boat_data::Schema,
        records: &[Record],
        limits: GrowthLimits,
    ) -> Tree {
        let selector = ImpuritySelector::new(self.impurity.clone());
        match self.config.sample_engine {
            SampleEngine::Columnar => {
                self.metrics.counter("boat.sample.inmem_columnar").inc();
                let cs = boat_tree::ColumnarSample::from_records(schema, records);
                let weights = vec![1u32; records.len()];
                let stats = boat_tree::SubsampleStats::default();
                let rt = crate::coarse::subsample_runtime(&self.config, &stats);
                let tree =
                    boat_tree::grow_weighted_gated(&cs, &weights, &selector, limits, rt.as_ref());
                crate::coarse::record_subsample_stats(&stats, &self.metrics);
                tree
            }
            SampleEngine::Rows => TdTreeBuilder::new(&selector, limits).fit(schema, records),
        }
    }

    /// Build the exact decision tree for `source`.
    pub fn fit(&self, source: &dyn RecordSource) -> Result<BoatFit> {
        self.config.validate().map_err(DataError::Invalid)?;
        let metrics_before = self.metrics.snapshot();
        let io_before = source.stats().snapshot();
        self.metrics.counter("boat.fit.runs").inc();
        // In-memory switch at top level: families that fit in memory are
        // always cheaper to build directly (§3.5).
        if source.len() <= self.config.in_memory_threshold {
            return self.fit_inmem(source, io_before, &metrics_before);
        }
        let (work, mut stats) = self.fit_work(source, self.config.max_recursion, false)?;
        let tree = work.extract_tree();
        stats.io = source.stats().snapshot() - io_before;
        mirror_io(&self.metrics, "data.input", stats.io);
        stats.metrics = self.metrics.snapshot().since(&metrics_before);
        Ok(BoatFit { tree, stats })
    }

    /// Build the exact decision tree with the fit partitioned into
    /// `fit_shards` row-range shards (see [`BoatConfig::fit_shards`]).
    ///
    /// Both scans run per shard: the sampling scan draws a per-shard
    /// reservoir (quota proportional to the shard's row count), and the
    /// cleanup scan routes every shard behind a dedicated double-buffered
    /// prefetch reader, merging node statistics at the coordinator. The
    /// serialized tree is **byte-identical** to [`Boat::fit`] at every
    /// shard count — BOAT's exactness guarantee makes the final tree
    /// independent of the optimistic sample, and the cleanup reduction is
    /// exact (integer-count merges plus deposits replayed in serial scan
    /// order).
    ///
    /// Requires a `Sync` source because shards scan concurrently. Note that
    /// `stats.io.scans` counts *raw* scans (one per shard per pass), while
    /// `stats.scans_over_input` keeps counting *logical* sequential passes.
    pub fn fit_sharded(&self, source: &(dyn RecordSource + Sync)) -> Result<BoatFit> {
        self.config.validate().map_err(DataError::Invalid)?;
        let metrics_before = self.metrics.snapshot();
        let io_before = source.stats().snapshot();
        self.metrics.counter("boat.fit.runs").inc();
        if source.len() <= self.config.in_memory_threshold {
            return self.fit_inmem(source, io_before, &metrics_before);
        }
        let shards = self.config.effective_fit_shards();
        let (work, mut stats) = self.fit_sharded_work(source, shards, self.config.max_recursion)?;
        let tree = work.extract_tree();
        stats.io = source.stats().snapshot() - io_before;
        mirror_io(&self.metrics, "data.input", stats.io);
        stats.metrics = self.metrics.snapshot().since(&metrics_before);
        Ok(BoatFit { tree, stats })
    }

    /// The §3.5 top-level in-memory switch, shared by [`Boat::fit`] and
    /// [`Boat::fit_sharded`]: collect everything and build directly.
    fn fit_inmem(
        &self,
        source: &dyn RecordSource,
        io_before: IoSnapshot,
        metrics_before: &Snapshot,
    ) -> Result<BoatFit> {
        let t0 = Instant::now();
        let span = self.metrics.span("boat.phase.inmem_build");
        let records = source.collect_records()?;
        let tree = self.inmem_tree(source.schema(), &records, self.config.limits);
        span.finish();
        self.metrics.counter("boat.fit.input_scans").inc();
        self.metrics.counter("boat.fit.inmem_builds").inc();
        let mut stats = BoatRunStats {
            scans_over_input: 1,
            sample_records: records.len() as u64,
            inmem_builds: 1,
            postprocess_time: t0.elapsed(),
            ..Default::default()
        };
        stats.io = source.stats().snapshot() - io_before;
        mirror_io(&self.metrics, "data.input", stats.io);
        stats.metrics = self.metrics.snapshot().since(metrics_before);
        Ok(BoatFit { tree, stats })
    }

    /// Run the full BOAT pipeline, returning the finalized working tree
    /// (with all completion jobs executed) and statistics.
    pub(crate) fn fit_work(
        &self,
        source: &dyn RecordSource,
        recursion_left: u32,
        retain_all_families: bool,
    ) -> Result<(WorkTree, BoatRunStats)> {
        let mut stats = BoatRunStats::default();
        let schema = source.schema().clone();
        let selector = ImpuritySelector::new(self.impurity.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // ---- sampling phase (scan 1 + bootstrap) ----
        let t0 = Instant::now();
        let sample_span = self.metrics.span("boat.phase.sample");
        let sample = reservoir_sample(source, self.config.sample_size, &mut rng)?;
        sample_span.finish();
        stats.scans_over_input += 1;
        self.metrics.counter("boat.fit.input_scans").inc();
        stats.sample_records = sample.len() as u64;
        let bootstrap_span = self.metrics.span("boat.phase.bootstrap");
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &selector,
            &self.config,
            source.len(),
            &mut rng,
            &self.metrics,
        );
        stats.coarse_nodes = coarse.len() as u64;
        let mut work = WorkTree::prepare(
            &coarse,
            schema,
            &sample,
            &self.impurity,
            &self.config,
            source.len(),
            retain_all_families,
            // Temporary files (parked sets, families, rebuild partitions)
            // are accounted separately from the input source, so callers
            // can tell scans-over-D apart from local spill traffic. The
            // handle shares its counters with the registry (`data.spill.*`),
            // so spill traffic shows in metric snapshots as it happens.
            IoStats::registered(&self.metrics, "data.spill"),
            self.metrics.clone(),
        );
        drop(sample);
        bootstrap_span.finish();
        // The spill handle shares registry counters across runs and
        // sub-runs, so this run's spill traffic is a delta, not an absolute.
        let spill_io_before = work.spill_stats.snapshot();
        stats.sampling_time = t0.elapsed();

        // ---- cleanup phase (scan 2) ----
        // One sequential pass over the source either way; with more than
        // one worker the routing work fans out over chunks and is reduced
        // by an exact merge, so the resulting state (and hence the final
        // tree) is bit-identical at every thread count.
        let t1 = Instant::now();
        let cleanup_span = self.metrics.span("boat.phase.cleanup");
        work.parallel_cleanup(
            source,
            self.config.effective_cleanup_threads(),
            self.config.cleanup_chunk_size,
        )?;
        cleanup_span.finish();
        stats.scans_over_input += 1;
        self.metrics.counter("boat.fit.input_scans").inc();
        stats.parked_tuples = work.parked_total();
        stats.cleanup_time = t1.elapsed();

        // ---- verification + completion ----
        self.complete_work(
            &mut work,
            source,
            recursion_left,
            retain_all_families,
            spill_io_before,
            &mut stats,
        )?;
        Ok((work, stats))
    }

    /// The sharded variant of [`Boat::fit_work`]: same pipeline, but both
    /// scans are partitioned over `shards` chunk-aligned row ranges.
    pub(crate) fn fit_sharded_work(
        &self,
        source: &(dyn RecordSource + Sync),
        shards: usize,
        recursion_left: u32,
    ) -> Result<(WorkTree, BoatRunStats)> {
        let mut stats = BoatRunStats::default();
        let schema = source.schema().clone();
        let selector = ImpuritySelector::new(self.impurity.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let chunk_size = self.config.cleanup_chunk_size;
        let ranges = RowRangePartitioner.partition(source.len(), chunk_size, shards);
        self.metrics
            .gauge("boat.partition.shards")
            .set(shards as u64);

        // ---- sampling phase (scan 1, one reservoir per shard) ----
        // Each shard draws a reservoir over its own row range, with a quota
        // proportional to the range length, concatenated in shard order.
        // This is a stratified sample, not the serial reservoir — which is
        // fine: BOAT's exactness guarantee makes the final tree independent
        // of the sample, and the per-K differential oracle pins that down.
        let t0 = Instant::now();
        let sample_span = self.metrics.span("boat.phase.sample");
        let quotas = shard_sample_quotas(self.config.sample_size, &ranges);
        let seed = self.config.seed;
        let per_shard: Vec<Result<Vec<Record>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .zip(&quotas)
                .enumerate()
                .map(|(i, (&range, &quota))| {
                    scope.spawn(move || -> Result<Vec<Record>> {
                        if range.is_empty() || quota == 0 {
                            return Ok(Vec::new());
                        }
                        let mut rng =
                            StdRng::seed_from_u64(seed ^ 0xB0A7_5AAD_0000_0000 ^ (i as u64));
                        reservoir_sample_range(source, range, quota, &mut rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard sampler panicked"))
                .collect()
        });
        let mut sample: Vec<Record> = Vec::new();
        for part in per_shard {
            sample.extend(part?);
        }
        sample_span.finish();
        stats.scans_over_input += 1;
        self.metrics.counter("boat.fit.input_scans").inc();
        stats.sample_records = sample.len() as u64;
        let bootstrap_span = self.metrics.span("boat.phase.bootstrap");
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &selector,
            &self.config,
            source.len(),
            &mut rng,
            &self.metrics,
        );
        stats.coarse_nodes = coarse.len() as u64;
        let mut work = WorkTree::prepare(
            &coarse,
            schema,
            &sample,
            &self.impurity,
            &self.config,
            source.len(),
            false,
            IoStats::registered(&self.metrics, "data.spill"),
            self.metrics.clone(),
        );
        drop(sample);
        bootstrap_span.finish();
        let spill_io_before = work.spill_stats.snapshot();
        stats.sampling_time = t0.elapsed();

        // ---- cleanup phase (scan 2, one prefetched scan per shard) ----
        let t1 = Instant::now();
        let cleanup_span = self.metrics.span("boat.phase.cleanup");
        work.partitioned_cleanup(source, &ranges, chunk_size, self.config.prefetch_depth)?;
        cleanup_span.finish();
        stats.scans_over_input += 1;
        self.metrics.counter("boat.fit.input_scans").inc();
        stats.parked_tuples = work.parked_total();
        stats.cleanup_time = t1.elapsed();

        // ---- verification + completion (unchanged from the serial fit) ----
        self.complete_work(
            &mut work,
            source,
            recursion_left,
            false,
            spill_io_before,
            &mut stats,
        )?;
        Ok((work, stats))
    }

    /// The verification + completion tail shared by [`Boat::fit_work`] and
    /// [`Boat::fit_sharded_work`].
    ///
    /// Promotions splice fresh maintained subtrees in; their nodes then
    /// need a verification pass with the ancestor-parked tuples routed
    /// down, so iterate to a fixed point (bounded: the final round runs
    /// without promotion, so static growth always completes it).
    fn complete_work(
        &self,
        work: &mut WorkTree,
        source: &dyn RecordSource,
        recursion_left: u32,
        retain_all_families: bool,
        spill_io_before: IoSnapshot,
        stats: &mut BoatRunStats,
    ) -> Result<()> {
        let t2 = Instant::now();
        for round in 0..4u32 {
            let verify_span = self.metrics.span("boat.phase.verify");
            let jobs = work.finalize(&self.impurity, self.config.limits)?;
            verify_span.finish();
            let promote = retain_all_families && round < 3;
            let rebuild_span = self.metrics.span("boat.phase.rebuild");
            let promoted = self.execute_jobs(
                work,
                jobs,
                Some(source),
                recursion_left,
                source.len(),
                promote,
                stats,
            )?;
            rebuild_span.finish();
            if !promoted {
                break;
            }
        }
        for node in &work.nodes {
            match node.resolution {
                Resolution::Split { .. } => stats.verified_nodes += 1,
                Resolution::Failed { .. } => stats.failed_nodes += 1,
                _ => {}
            }
        }
        stats.spilled_tuples = work.spilled_total();
        stats.spill_io = work.spill_stats.snapshot() - spill_io_before;
        stats.postprocess_time = t2.elapsed();
        self.metrics
            .gauge("boat.work.nodes")
            .set(work.nodes.len() as u64);
        self.metrics
            .gauge("boat.work.parked_tuples")
            .set(stats.parked_tuples);
        self.metrics
            .gauge("boat.work.spilled_tuples")
            .set(stats.spilled_tuples);
        Ok(())
    }

    /// Execute completion jobs: gather each job's records (from retained
    /// buffers, or one collection scan over `source`), then grow the
    /// subtree in memory or via recursive BOAT.
    #[allow(clippy::too_many_arguments)] // internal plumbing shared by fit and the model
    pub(crate) fn execute_jobs(
        &self,
        work: &mut WorkTree,
        jobs: Vec<Job>,
        source: Option<&dyn RecordSource>,
        recursion_left: u32,
        input_len: u64,
        promote: bool,
        stats: &mut BoatRunStats,
    ) -> Result<bool> {
        let mut promoted_any = false;
        // Reuse grown subtrees that are provably unchanged.
        let mut pending: Vec<(Job, Option<Vec<Record>>)> = Vec::new();
        for job in jobs {
            let reusable = work.nodes[job.idx].grown.is_some()
                && work.nodes[job.idx].grown_carried_fp == Some(job.carried_fp)
                && !subtree_dirty(work, job.idx);
            if reusable {
                self.metrics.counter("boat.jobs.reused").inc();
                continue;
            }
            let collected = work.collect_subtree(job.idx)?;
            pending.push((job, collected));
        }

        // Collection scan for jobs whose records were not retained.
        if pending.iter().any(|(_, c)| c.is_none()) {
            let source = source.ok_or_else(|| {
                DataError::Invalid("completion requires a scan but no source is available".into())
            })?;
            let mut buffers: Vec<(usize, SpillBuffer)> = pending
                .iter()
                .filter(|(_, c)| c.is_none())
                .map(|(j, _)| {
                    (
                        j.idx,
                        SpillBuffer::new_in(
                            work.schema.clone(),
                            self.config.spill_budget,
                            work.spill_stats.clone(),
                            self.config.spill_dir.clone(),
                        ),
                    )
                })
                .collect();
            stats.scans_over_input += 1;
            self.metrics.counter("boat.fit.input_scans").inc();
            self.metrics.counter("boat.jobs.collection_scans").inc();
            for r in source.scan()? {
                let r = r?;
                if let Some(target) = work.route_to_job(&r) {
                    if let Some((_, buf)) = buffers.iter_mut().find(|(i, _)| *i == target) {
                        buf.push(r)?;
                    }
                }
            }
            for (job, slot) in pending.iter_mut() {
                if slot.is_none() {
                    let (_, buf) = buffers
                        .iter_mut()
                        .find(|(i, _)| *i == job.idx)
                        .expect("buffer created for unretained job");
                    *slot = Some(buf.to_vec()?);
                    // The collection scan routes by *final* splits, so the
                    // buffer already contains the ancestor-parked tuples
                    // that `carried` would re-add: drop them.
                    job.carried.clear();
                }
            }
        }

        for (job, records) in pending {
            stats.jobs_executed += 1;
            self.metrics.counter("boat.jobs.executed").inc();
            let mut records = records.expect("records gathered above");
            // Maintained models *promote* oversized subtrees into spliced
            // BOAT state (so future updates stream through them) instead
            // of growing a static tree that would be re-grown on every
            // touch. The sub-run covers only the subtree's *stored*
            // records — ancestor-parked (`carried`) tuples stay parked at
            // the ancestors, preserving the parking invariant; the caller
            // re-runs the verification pass afterwards so the spliced
            // nodes get resolved with the carried tuples routed in.
            // Whole-input families are exempt (a sub-run over the same
            // data would hit the identical unresolved root and loop); they
            // fall through to the damped grow path.
            let family = records.len() + job.carried.len();
            let whole_input = family as u64 * 10 >= input_len.saturating_mul(9);
            // Positions whose promoted state keeps failing verification are
            // fit to noise; maintaining them is wasted work, so after two
            // promotions they fall back to cheap static regrowth.
            let noise_prone = work.nodes[job.idx].promotions >= 2;
            if promote
                && recursion_left > 0
                && !whole_input
                && !noise_prone
                && family as u64 > self.config.in_memory_threshold
            {
                let promotions = work.nodes[job.idx].promotions + 1;
                self.metrics.counter("boat.jobs.promoted").inc();
                let sub_work = self.promote_records(work, job.idx, records, stats)?;
                work.splice(job.idx, sub_work);
                work.nodes[job.idx].promotions = promotions;
                promoted_any = true;
                continue;
            }
            records.extend(job.carried.iter().cloned());
            let tree =
                self.grow_records(work, job.idx, records, recursion_left, input_len, stats)?;
            debug_assert_eq!(
                work.nodes[job.idx]
                    .resolution
                    .counts()
                    .map(|c| c.iter().sum::<u64>()),
                Some(tree.node(tree.root()).n_records()),
                "grown subtree must cover exactly the node family"
            );
            let node = &mut work.nodes[job.idx];
            node.grown = Some(tree);
            node.grown_carried_fp = Some(job.carried_fp);
            clear_subtree_dirty(work, job.idx);
        }
        Ok(promoted_any)
    }

    /// Promote an oversized frontier/failed family into a fully maintained
    /// sub-worktree via *exact construction* from the family records (no
    /// bootstrap; every criterion computed from the full family, so the
    /// next verification pass confirms it trivially).
    fn promote_records(
        &self,
        work: &WorkTree,
        idx: usize,
        records: Vec<Record>,
        stats: &mut BoatRunStats,
    ) -> Result<WorkTree> {
        let depth = work.nodes[idx].depth;
        let sub_limits = limits_for_subtree(self.config.limits, depth);
        stats.recursive_builds += 1;
        self.metrics.counter("boat.fit.recursive_builds").inc();
        crate::work::build_exact_work(
            work.schema.clone(),
            records,
            &self.impurity,
            &self.config,
            sub_limits,
            work.spill_stats.clone(),
            work.metrics.clone(),
        )
    }

    /// Grow a completion subtree from its family records: in memory when it
    /// fits (or recursion is exhausted), else recursive BOAT over a
    /// temporary partition file (§3.5).
    fn grow_records(
        &self,
        work: &WorkTree,
        idx: usize,
        records: Vec<Record>,
        recursion_left: u32,
        input_len: u64,
        stats: &mut BoatRunStats,
    ) -> Result<Tree> {
        let depth = work.nodes[idx].depth;
        let sub_limits = limits_for_subtree(self.config.limits, depth);
        if records.len() as u64 <= self.config.in_memory_threshold || recursion_left == 0 {
            stats.inmem_builds += 1;
            self.metrics.counter("boat.fit.inmem_builds").inc();
            return Ok(self.inmem_tree(&work.schema, &records, sub_limits));
        }
        // Recursion damping: if this partition is (nearly) the whole input,
        // the optimistic phase already saw this data and failed — grant one
        // retry with a doubled sample, then fall back to the in-memory
        // builder instead of looping on an intrinsically unstable node
        // (the paper's Figure 12 observes growth simply stops there).
        let whole_input = records.len() as u64 * 10 >= input_len.saturating_mul(9);
        let sub_recursion = if whole_input { 0 } else { recursion_left - 1 };
        let sub_sample = if whole_input {
            self.config.sample_size.saturating_mul(2)
        } else {
            self.config.sample_size
        };
        stats.recursive_builds += 1;
        self.metrics.counter("boat.fit.recursive_builds").inc();
        // The global counter only keeps temp-file names unique. The
        // sub-run's seed must NOT depend on it: run statistics are part of
        // the library's contract (the parallel-exactness oracle compares
        // them across thread counts), so they must be a pure function of
        // (config, data) — independent of how many rebuilds *other* fits in
        // this process have performed. Derive the seed from the rebuild's
        // own position and family instead.
        let id = REBUILD_COUNTER.fetch_add(1, Ordering::Relaxed);
        let sub_seed = self.config.seed
            ^ (0xD1CE << 16)
            ^ ((idx as u64) << 40)
            ^ ((depth as u64) << 32)
            ^ records.len() as u64;
        // Rebuild partitions are temp files like the spill buffers, so they
        // honor the same `spill_dir` override (and the same stale-file
        // sweep prefix).
        let dir = self
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!("boat-rebuild-{}-{id}.boat", std::process::id()));
        let mut writer =
            FileDatasetWriter::create(&path, work.schema.clone(), work.spill_stats.clone())?;
        for r in &records {
            writer.append(r)?;
        }
        drop(records);
        let partition = writer.finish()?;
        let sub = Boat {
            config: BoatConfig {
                limits: sub_limits,
                seed: sub_seed,
                sample_size: sub_sample,
                ..self.config.clone()
            },
            impurity: self.impurity.clone(),
            // Sub-runs record into the parent's registry, so a fit's
            // metrics snapshot covers its whole recursive pipeline.
            metrics: self.metrics.clone(),
        };
        let result = (|| -> Result<Tree> {
            let (w, sub_stats) = sub.fit_work(&partition, sub_recursion, false)?;
            stats.absorb(&sub_stats);
            Ok(w.extract_tree())
        })();
        let _ = std::fs::remove_file(&path);
        result
    }
}

/// Per-shard sample quotas, proportional to each range's row count
/// (largest-remainder apportionment, ties to the earlier shard). Quotas sum
/// to `total` whenever the ranges are non-empty; a shard's reservoir then
/// clamps its own quota to the rows it actually has.
fn shard_sample_quotas(total: usize, ranges: &[RowRange]) -> Vec<usize> {
    let n: u64 = ranges.iter().map(|r| r.len()).sum();
    if n == 0 || total == 0 {
        return vec![0; ranges.len()];
    }
    let mut quotas = Vec::with_capacity(ranges.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(ranges.len());
    let mut assigned = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        let num = total as u128 * r.len() as u128;
        let q = (num / n as u128) as usize;
        quotas.push(q);
        assigned += q;
        remainders.push((num % n as u128, i));
    }
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total.saturating_sub(assigned);
    for (_, i) in remainders {
        if leftover == 0 {
            break;
        }
        quotas[i] += 1;
        leftover -= 1;
    }
    quotas
}

/// Mirror an [`IoSnapshot`] delta into registry counters under `prefix`
/// (`{prefix}.scans`, `{prefix}.bytes_read`, …).
///
/// Input-source I/O is counted by the *caller's* detached [`IoStats`]
/// handle, not ours; public entry points mirror the per-run delta into the
/// registry once, so `data.input.*` counters line up with `data.spill.*`
/// in the same snapshot without double-counting recursive partition scans
/// (sub-partitions are temp files, accounted as spill traffic).
pub(crate) fn mirror_io(metrics: &Registry, prefix: &str, d: IoSnapshot) {
    metrics.counter(&format!("{prefix}.scans")).add(d.scans);
    metrics
        .counter(&format!("{prefix}.records_read"))
        .add(d.records_read);
    metrics
        .counter(&format!("{prefix}.bytes_read"))
        .add(d.bytes_read);
    metrics
        .counter(&format!("{prefix}.records_written"))
        .add(d.records_written);
    metrics
        .counter(&format!("{prefix}.bytes_written"))
        .add(d.bytes_written);
    metrics
        .counter(&format!("{prefix}.spill_events"))
        .add(d.spill_events);
}

/// Whether any node in the subtree of `idx` absorbed records since its
/// grown subtree was produced.
pub(crate) fn subtree_dirty(work: &WorkTree, idx: usize) -> bool {
    let mut stack = vec![idx];
    while let Some(i) = stack.pop() {
        if work.nodes[i].state.dirty {
            return true;
        }
        if work.nodes[i].crit.is_some() {
            stack.push(work.nodes[i].left.expect("internal"));
            stack.push(work.nodes[i].right.expect("internal"));
        }
    }
    false
}

pub(crate) fn clear_subtree_dirty(work: &mut WorkTree, idx: usize) {
    let mut stack = vec![idx];
    while let Some(i) = stack.pop() {
        work.nodes[i].state.dirty = false;
        if work.nodes[i].crit.is_some() {
            stack.push(work.nodes[i].left.expect("internal"));
            stack.push(work.nodes[i].right.expect("internal"));
        }
    }
}

/// Convenience: the in-memory reference tree for `source` under the same
/// limits — the object BOAT's output is guaranteed to equal. One scan.
pub fn reference_tree<I: Impurity + Clone>(
    source: &dyn RecordSource,
    impurity: I,
    limits: GrowthLimits,
) -> Result<Tree> {
    let records = source.collect_records()?;
    let selector = ImpuritySelector::new(impurity);
    Ok(TdTreeBuilder::new(&selector, limits).fit(source.schema(), &records))
}
