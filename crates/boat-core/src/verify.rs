//! Failure detection (paper §3.4, Lemma 3.1).
//!
//! BOAT's cleanup scan computes the exact best split only *inside* the
//! confidence interval. To guarantee the result equals the tree built from
//! all the data, it must prove that no candidate split **outside** the
//! interval — on the splitting attribute or any other numeric attribute —
//! can beat the in-interval minimum `i'`. The proof device is Lemma 3.1:
//! a concave function over the hyper-rectangle spanned by two stamp points
//! attains its minimum at one of the rectangle's `2^k` corners, so
//! evaluating the impurity at those corners lower-bounds every candidate
//! split inside the bucket.
//!
//! The bound is *conservative*: a bound below `i'` only means "cannot rule
//! out a better split out there", which triggers a rebuild of the subtree —
//! never an incorrect tree.

// No epsilon slack is needed in the bound comparisons: every impurity in
// this workspace — candidate values in sweeps, the in-interval minimum `i'`,
// and the corner bounds — is computed by the same `split_impurity` function
// over integer class counts, so equal stamp points produce bit-identical
// doubles and the tie logic below is exact. (The only theoretical gap is a
// non-tied pair of stamp points whose impurities differ by less than one
// ulp; real count data cannot produce that without being an exact tie.)

// The corner bound itself now lives in `boat_tree::subsample` — the gated
// subsampled split search applies the same Lemma 3.1 device inside the
// sample phase — and is re-exported here so cleanup-scan code keeps its
// natural import path.
pub use boat_tree::subsample::corner_lower_bound;

/// Whether a bucket with lower bound `bound` *passes* verification against
/// the exact in-interval minimum `i_prime`.
///
/// `tie_wins` says whether a candidate inside this bucket would *win* an
/// exact impurity tie against the chosen split under the deterministic
/// total order (smaller attribute index, then smaller split value): ties on
/// the winning side must fail (the reference builder would have picked that
/// candidate), ties on the losing side are safe to pass.
#[inline]
pub fn bucket_passes(bound: f64, i_prime: f64, tie_wins: bool) -> bool {
    if tie_wins {
        bound > i_prime
    } else {
        bound >= i_prime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_tree::{split_impurity, Entropy, Gini, Impurity};

    #[test]
    fn degenerate_rectangle_is_the_exact_value() {
        // lo == hi: the "rectangle" is a single stamp point.
        let stamp = [30u64, 10];
        let totals = [50u64, 50];
        let bound = corner_lower_bound(&Gini, &stamp, &stamp, &totals);
        let exact = split_impurity(&Gini, &[30, 10], &[20, 40]);
        assert_eq!(bound.to_bits(), exact.to_bits());
    }

    #[test]
    fn bound_is_below_every_interior_point() {
        let lo = [10u64, 40];
        let hi = [60u64, 45];
        let totals = [100u64, 100];
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let bound = corner_lower_bound(imp, &lo, &hi, &totals);
            // Sample interior stamp points on the monotone diagonal.
            for t in 0..=10 {
                let a = lo[0] + (hi[0] - lo[0]) * t / 10;
                let b = lo[1] + (hi[1] - lo[1]) * t / 10;
                let v = split_impurity(imp, &[a, b], &[totals[0] - a, totals[1] - b]);
                assert!(
                    bound <= v + 1e-12,
                    "{}: bound {bound} above interior value {v}",
                    imp.name()
                );
            }
        }
    }

    #[test]
    fn full_range_rectangle_bounds_to_zero() {
        // The rectangle spanning [0, N] per class contains the pure-split
        // corner, so the bound collapses to 0 — the reason too-coarse
        // discretizations cause false alarms.
        let totals = [40u64, 60];
        let bound = corner_lower_bound(&Gini, &[0, 0], &totals, &totals);
        assert_eq!(bound, 0.0);
    }

    #[test]
    fn three_class_corners() {
        let lo = [5u64, 5, 5];
        let hi = [10u64, 9, 7];
        let totals = [20u64, 20, 20];
        let bound = corner_lower_bound(&Gini, &lo, &hi, &totals);
        // Brute-force all integer boxes on a coarse grid.
        let mut min_seen = f64::INFINITY;
        for a in lo[0]..=hi[0] {
            for b in lo[1]..=hi[1] {
                for c in lo[2]..=hi[2] {
                    let v = split_impurity(
                        &Gini,
                        &[a, b, c],
                        &[totals[0] - a, totals[1] - b, totals[2] - c],
                    );
                    min_seen = min_seen.min(v);
                }
            }
        }
        assert!(bound <= min_seen + 1e-12);
        // And the bound is attained at a corner, so it is not vacuous.
        assert!(bound > 0.3, "bound {bound} should be informative here");
    }

    #[test]
    fn bucket_passes_is_tie_aware() {
        // Strictly better bound always passes; strictly worse always fails.
        assert!(bucket_passes(0.5, 0.4, true));
        assert!(bucket_passes(0.5, 0.4, false));
        assert!(!bucket_passes(0.3, 0.4, true));
        assert!(!bucket_passes(0.3, 0.4, false));
        // An exact tie fails only where the candidate would win the
        // tie-break.
        assert!(!bucket_passes(0.4, 0.4, true));
        assert!(bucket_passes(0.4, 0.4, false));
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn too_many_classes_panics() {
        let z = vec![0u64; 21];
        corner_lower_bound(&Gini, &z, &z, &z);
    }
}
