//! Sampling phase: bootstrapped coarse splitting criteria (paper §3.2).
//!
//! From the in-memory sample `D'`, draw `b` bootstrap resamples (with
//! replacement), build a tree on each with the ordinary in-memory builder,
//! and walk the `b` trees top-down in lockstep:
//!
//! * if the `b` nodes disagree on the splitting attribute (or any is a
//!   leaf while another is internal), the node and its subtree are *cut* —
//!   the coarse tree gets a frontier leaf there;
//! * if they agree on a **categorical** attribute, the splitting subsets
//!   must be identical too (the paper's stringent rule), and the coarse
//!   criterion is that exact subset;
//! * if they agree on a **numeric** attribute, the `b` bootstrap split
//!   points give a confidence interval `[lo, hi]` that contains the final
//!   split point with high probability.

use crate::config::{AgreementRule, BoatConfig, SampleEngine};
use boat_data::{Record, Schema};
use boat_obs::Registry;
use boat_tree::grow::SplitSelector;
use boat_tree::model::Predicate;
use boat_tree::{CatSet, ColumnarSample, GrowthLimits, NodeId, TdTreeBuilder, Tree};
use rand::rngs::StdRng;

/// A coarse splitting criterion (paper Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum CoarseCriterion {
    /// Numeric splitting attribute plus a confidence interval that contains
    /// the final split point with high probability.
    Num {
        /// Splitting attribute index.
        attr: usize,
        /// Interval lower edge (inclusive).
        lo: f64,
        /// Interval upper edge (inclusive).
        hi: f64,
    },
    /// Categorical splitting attribute with the exact splitting subset.
    Cat {
        /// Splitting attribute index.
        attr: usize,
        /// The (canonical) splitting subset.
        subset: CatSet,
    },
}

impl CoarseCriterion {
    /// The coarse splitting attribute.
    pub fn attr(&self) -> usize {
        match self {
            CoarseCriterion::Num { attr, .. } | CoarseCriterion::Cat { attr, .. } => *attr,
        }
    }
}

/// Why a coarse node is a frontier leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierReason {
    /// Every bootstrap tree had a leaf here (the sample says: stop).
    SampleLeaf,
    /// The bootstrap trees disagreed (the paper's instability case).
    Disagreement,
}

/// One node of the coarse tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseNode {
    /// The coarse criterion; `None` marks a frontier leaf.
    pub crit: Option<CoarseCriterion>,
    /// Why `crit` is `None` (meaningless otherwise).
    pub reason: Option<FrontierReason>,
    /// Left child (tuples satisfying the criterion).
    pub left: Option<usize>,
    /// Right child.
    pub right: Option<usize>,
    /// Parent index.
    pub parent: Option<usize>,
    /// Depth below the coarse root.
    pub depth: u32,
    /// The `b` bootstrap split points (numeric criteria only) — kept for
    /// diagnostics such as the instability experiment's histogram.
    pub bootstrap_points: Vec<f64>,
}

/// The coarse tree produced by the sampling phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseTree {
    /// Arena of nodes; index 0 is the root.
    pub nodes: Vec<CoarseNode>,
}

impl CoarseTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single frontier leaf (total disagreement).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].crit.is_none()
    }

    /// Count internal (criterion-bearing) nodes.
    pub fn n_internal(&self) -> usize {
        self.nodes.iter().filter(|n| n.crit.is_some()).count()
    }

    /// Count frontier leaves cut because of bootstrap disagreement.
    pub fn n_disagreements(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.reason == Some(FrontierReason::Disagreement))
            .count()
    }
}

/// Growth limits for the bootstrap trees: the same semantic rules as the
/// final tree, but with the family-size thresholds scaled down by
/// `resample_size / full_size` so the sample trees stop at the equivalent
/// depth of the paper's in-memory switch.
pub fn bootstrap_limits(config: &BoatConfig, full_size: u64) -> GrowthLimits {
    let full_stop = config
        .limits
        .stop_family_size
        .unwrap_or(0)
        .max(config.in_memory_threshold);
    let scaled = if full_size == 0 {
        1
    } else {
        ((full_stop as u128 * config.bootstrap_sample_size as u128) / full_size as u128) as u64
    };
    GrowthLimits {
        min_split: config.limits.min_split,
        max_depth: config.limits.max_depth,
        stop_family_size: Some(scaled.max(1)),
    }
}

/// Build the coarse tree from the in-memory sample.
///
/// `full_size` is `|D|` (used to scale the bootstrap trees' stopping
/// threshold). The selector must be the same split-selection method the
/// final tree uses. `metrics` receives the `boat.sample.*` phase spans and
/// counters (transpose/presort/grow timings, resample-clone bytes avoided).
///
/// The engine ([`BoatConfig::sample_engine`]) is a pure performance knob:
/// both paths produce bit-identical bootstrap trees — and hence the same
/// coarse tree — for the same seeded rng, because the columnar path draws
/// its multiplicity vectors with the *same rng call sequence* as
/// [`bootstrap_resample`] and grows through the same shared split code
/// (see `boat_tree::columnar`). Selectors without columnar support (e.g.
/// QUEST) silently use the row path.
///
/// [`bootstrap_resample`]: boat_data::sample::bootstrap_resample
pub fn build_coarse_tree<S: SplitSelector + ?Sized>(
    schema: &Schema,
    sample: &[Record],
    selector: &S,
    config: &BoatConfig,
    full_size: u64,
    rng: &mut StdRng,
    metrics: &Registry,
) -> CoarseTree {
    if sample.is_empty() {
        // Degenerate input: a single frontier leaf (everything resolves via
        // the completion machinery).
        return CoarseTree {
            nodes: vec![CoarseNode {
                crit: None,
                reason: Some(FrontierReason::SampleLeaf),
                left: None,
                right: None,
                parent: None,
                depth: 0,
                bootstrap_points: Vec::new(),
            }],
        };
    }
    let limits = bootstrap_limits(config, full_size);
    let use_columnar =
        config.sample_engine == SampleEngine::Columnar && selector.supports_columnar();
    if config.sample_engine == SampleEngine::Columnar && !selector.supports_columnar() {
        // The configured engine was silently overridden — surface it so a
        // "columnar" run that quietly built row-oriented trees (e.g. under
        // a QUEST-style selector) is visible in the metrics.
        metrics.counter("boat.sample.selector_fallbacks").add(1);
    }
    let trees: Vec<Tree> = if use_columnar {
        bootstrap_trees_columnar(schema, sample, selector, config, limits, rng, metrics)
    } else {
        bootstrap_trees_rows(schema, sample, selector, config, limits, rng, metrics)
    };
    let mut coarse = CoarseTree { nodes: Vec::new() };
    let cursors: Vec<(usize, NodeId)> = trees
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.root()))
        .collect();
    agree(&trees, cursors, None, 0, config, &mut coarse);
    coarse
}

/// Run `build(i)` for `i in 0..n` over a work-stealing thread pool (one
/// atomic next-index counter; workers return `(i, tree)` pairs merged in
/// order). The builds are independent, so the result is bit-identical to a
/// serial loop at every thread count.
fn build_parallel<F>(n: usize, build: F) -> Vec<Tree>
where
    F: Fn(usize) -> Tree + Sync,
{
    let threads = std::thread::available_parallelism()
        .map_or(1, |t| t.get())
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(build).collect();
    }
    let mut slots: Vec<Option<Tree>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let build = &build;
            handles.push(scope.spawn(move || {
                let mut built: Vec<(usize, Tree)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    built.push((i, build(i)));
                }
                built
            }));
        }
        for h in handles {
            for (i, t) in h.join().expect("bootstrap worker panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots
        .into_iter()
        .map(|t| t.expect("every slot built"))
        .collect()
}

/// Row-oriented bootstrap path: materialize each resample as a
/// `Vec<Record>` (drawn sequentially, deterministic in the rng) and grow
/// the `b` trees in parallel with the reference in-memory builder.
fn bootstrap_trees_rows<S: SplitSelector + ?Sized>(
    schema: &Schema,
    sample: &[Record],
    selector: &S,
    config: &BoatConfig,
    limits: GrowthLimits,
    rng: &mut StdRng,
    metrics: &Registry,
) -> Vec<Tree> {
    let builder = TdTreeBuilder::new(selector, limits);
    let resample_span = metrics.span("boat.sample.resample");
    let resamples: Vec<Vec<Record>> = (0..config.bootstrap_reps)
        .map(|_| boat_data::sample::bootstrap_resample(sample, config.bootstrap_sample_size, rng))
        .collect();
    resample_span.finish();
    metrics
        .counter("boat.sample.rows_builds")
        .add(resamples.len() as u64);
    let grow_span = metrics.span("boat.sample.grow");
    let trees = build_parallel(resamples.len(), |i| builder.fit(schema, &resamples[i]));
    grow_span.finish();
    trees
}

/// Columnar bootstrap path: transpose the sample once into dense columns,
/// presort the numeric attributes once, draw per-resample *multiplicity
/// vectors* (same rng call sequence as the row path — one
/// `random_range(0..len)` per draw), and grow the `b` trees in parallel
/// over the shared immutable `(columns, presorted indices)` with zero
/// record clones.
fn bootstrap_trees_columnar<S: SplitSelector + ?Sized>(
    schema: &Schema,
    sample: &[Record],
    selector: &S,
    config: &BoatConfig,
    limits: GrowthLimits,
    rng: &mut StdRng,
    metrics: &Registry,
) -> Vec<Tree> {
    let transpose_span = metrics.span("boat.sample.transpose");
    let mut cs = ColumnarSample::transpose(schema, sample);
    transpose_span.finish();
    let presort_span = metrics.span("boat.sample.presort");
    cs.presort();
    presort_span.finish();
    let resample_span = metrics.span("boat.sample.resample");
    let weight_sets: Vec<Vec<u32>> = (0..config.bootstrap_reps)
        .map(|_| {
            boat_data::sample::bootstrap_multiplicities(
                sample.len(),
                config.bootstrap_sample_size,
                rng,
            )
        })
        .collect();
    resample_span.finish();
    metrics
        .counter("boat.sample.columnar_builds")
        .add(weight_sets.len() as u64);
    metrics
        .counter("boat.sample.clone_bytes_avoided")
        .add((weight_sets.len() * config.bootstrap_sample_size) as u64 * cs.record_bytes() as u64);
    let grow_span = metrics.span("boat.sample.grow");
    let stats = boat_tree::SubsampleStats::default();
    let base = subsample_runtime(config, &stats);
    let trees = build_parallel(weight_sets.len(), |i| {
        let rt = base.map(|b| b.for_rep(i as u64));
        boat_tree::grow_weighted_gated(&cs, &weight_sets[i], selector, limits, rt.as_ref())
    });
    grow_span.finish();
    record_subsample_stats(&stats, metrics);
    trees
}

/// The subsample gate runtime a config denotes (seeded off `config.seed`,
/// mixed per bootstrap repetition by the caller), or `None` when disabled.
pub(crate) fn subsample_runtime<'s>(
    config: &BoatConfig,
    stats: &'s boat_tree::SubsampleStats,
) -> Option<boat_tree::SubsampleRuntime<'s>> {
    config
        .subsample_params()
        .map(|params| boat_tree::SubsampleRuntime {
            params,
            seed: boat_tree::subsample::splitmix64(config.seed ^ 0x5B5A_B5A4_B1E5),
            stats,
        })
}

/// Mirror the gate's counters into the `boat.sample.subsample.*` metrics.
pub(crate) fn record_subsample_stats(stats: &boat_tree::SubsampleStats, metrics: &Registry) {
    let snap = stats.snapshot();
    for (name, v) in [
        ("boat.sample.subsample.swept", snap.swept),
        ("boat.sample.subsample.pruned", snap.pruned),
        ("boat.sample.subsample.fallbacks", snap.fallbacks),
        ("boat.sample.subsample.exact_points", snap.exact_points),
    ] {
        if v > 0 {
            metrics.counter(name).add(v);
        }
    }
}

/// The "signature" a bootstrap node votes with: leaf, or internal with a
/// splitting attribute (plus, for categorical splits, the exact subset —
/// the paper's stringent rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Vote {
    Leaf,
    Num { attr: usize },
    Cat { attr: usize, mask: u64 },
}

fn vote_of(tree: &Tree, id: NodeId) -> Vote {
    match tree.node(id).split() {
        None => Vote::Leaf,
        Some(s) => match s.predicate {
            Predicate::NumLe(_) => Vote::Num { attr: s.attr },
            Predicate::CatIn(set) => Vote::Cat {
                attr: s.attr,
                mask: set.mask(),
            },
        },
    }
}

/// Recursive lockstep agreement walk over a (possibly shrinking) set of
/// `(tree index, node)` cursors. Appends the coarse node and recurses into
/// the agreeing trees' children.
fn agree(
    trees: &[Tree],
    cursors: Vec<(usize, NodeId)>,
    parent: Option<usize>,
    depth: u32,
    config: &BoatConfig,
    coarse: &mut CoarseTree,
) -> usize {
    let idx = coarse.nodes.len();
    coarse.nodes.push(CoarseNode {
        crit: None,
        reason: None,
        left: None,
        right: None,
        parent,
        depth,
        bootstrap_points: Vec::new(),
    });

    // Tally votes.
    let mut tally: Vec<(Vote, usize)> = Vec::new();
    for &(ti, id) in &cursors {
        let v = vote_of(&trees[ti], id);
        match tally.iter_mut().find(|(w, _)| *w == v) {
            Some((_, c)) => *c += 1,
            None => tally.push((v, 1)),
        }
    }
    // Winner: largest count, ties broken deterministically by the vote's
    // natural order (Leaf first, then attribute index).
    tally.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let (winner, count) = tally[0];

    let accepted = match (config.agreement, winner) {
        (_, Vote::Leaf) => {
            // The sample says stop (or the modal choice is a leaf): cut.
            coarse.nodes[idx].reason = Some(if count == cursors.len() {
                FrontierReason::SampleLeaf
            } else {
                FrontierReason::Disagreement
            });
            return idx;
        }
        (AgreementRule::Unanimous, _) => count == cursors.len(),
        (AgreementRule::Majority { quorum }, _) => {
            count >= 2 && (count as f64) >= quorum * cursors.len() as f64
        }
    };
    if !accepted {
        coarse.nodes[idx].reason = Some(FrontierReason::Disagreement);
        return idx;
    }

    // The agreeing trees carry the criterion; dissenters are dropped from
    // this subtree (under Unanimous, nothing is ever dropped).
    let agreeing: Vec<(usize, NodeId)> = cursors
        .into_iter()
        .filter(|&(ti, id)| vote_of(&trees[ti], id) == winner)
        .collect();

    let crit = match winner {
        Vote::Leaf => unreachable!("leaf handled above"),
        Vote::Cat { attr, mask } => CoarseCriterion::Cat {
            attr,
            subset: boat_tree::CatSet::from_mask(mask),
        },
        Vote::Num { attr } => {
            let mut pairs: Vec<(usize, NodeId, f64)> = agreeing
                .iter()
                .map(|&(ti, id)| match trees[ti].node(id).split() {
                    Some(s) => match s.predicate {
                        Predicate::NumLe(x) => (ti, id, x),
                        Predicate::CatIn(_) => unreachable!("vote was Num"),
                    },
                    None => unreachable!("vote was Num"),
                })
                .collect();
            pairs.sort_by(|a, b| a.2.total_cmp(&b.2));

            // Mode clustering: near-tied minima far apart make bootstrap
            // split points *bimodal* (the paper's Figure 12). An interval
            // spanning both modes parks a third of the database and the
            // modes' subtrees are structurally incomparable, so when the
            // sorted points split into two well-separated clusters, keep
            // the majority cluster and drop the minority trees. Purely an
            // optimism heuristic — the cleanup-phase verification still
            // guarantees the exact tree either way.
            if pairs.len() >= 4 {
                let range = pairs.last().expect("non-empty").2 - pairs[0].2;
                if range > 0.0 {
                    let (mut gap_at, mut gap) = (0usize, 0.0f64);
                    for i in 1..pairs.len() {
                        let g = pairs[i].2 - pairs[i - 1].2;
                        if g > gap {
                            gap = g;
                            gap_at = i;
                        }
                    }
                    if gap >= 0.5 * range {
                        let keep_high = gap_at <= pairs.len() - gap_at;
                        if keep_high {
                            pairs.drain(..gap_at);
                        } else {
                            pairs.truncate(gap_at);
                        }
                    }
                }
            }

            let points: Vec<f64> = pairs.iter().map(|p| p.2).collect();
            let b = points.len();
            let cut =
                ((b as f64 * config.confidence_trim).floor() as usize).min(b.saturating_sub(1) / 2);
            let (lo, hi) = (points[cut], points[b - 1 - cut]);
            coarse.nodes[idx].bootstrap_points = points;
            let kept = CoarseCriterion::Num { attr, lo, hi };
            // Narrow `agreeing` to the surviving cluster.
            let survivors: Vec<(usize, NodeId)> =
                pairs.into_iter().map(|(ti, id, _)| (ti, id)).collect();
            return finish_internal(trees, survivors, idx, depth, config, coarse, kept);
        }
    };
    coarse.nodes[idx].crit = Some(crit);

    let lefts: Vec<(usize, NodeId)> = agreeing
        .iter()
        .map(|&(ti, id)| (ti, trees[ti].node(id).children().expect("internal").0))
        .collect();
    let rights: Vec<(usize, NodeId)> = agreeing
        .iter()
        .map(|&(ti, id)| (ti, trees[ti].node(id).children().expect("internal").1))
        .collect();
    let l = agree(trees, lefts, Some(idx), depth + 1, config, coarse);
    let r = agree(trees, rights, Some(idx), depth + 1, config, coarse);
    coarse.nodes[idx].left = Some(l);
    coarse.nodes[idx].right = Some(r);
    idx
}

/// Record a numeric criterion at `idx` and recurse into the surviving
/// trees' children.
fn finish_internal(
    trees: &[Tree],
    survivors: Vec<(usize, NodeId)>,
    idx: usize,
    depth: u32,
    config: &BoatConfig,
    coarse: &mut CoarseTree,
    crit: CoarseCriterion,
) -> usize {
    coarse.nodes[idx].crit = Some(crit);
    let lefts: Vec<(usize, NodeId)> = survivors
        .iter()
        .map(|&(ti, id)| (ti, trees[ti].node(id).children().expect("internal").0))
        .collect();
    let rights: Vec<(usize, NodeId)> = survivors
        .iter()
        .map(|&(ti, id)| (ti, trees[ti].node(id).children().expect("internal").1))
        .collect();
    let l = agree(trees, lefts, Some(idx), depth + 1, config, coarse);
    let r = agree(trees, rights, Some(idx), depth + 1, config, coarse);
    coarse.nodes[idx].left = Some(l);
    coarse.nodes[idx].right = Some(r);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::{Attribute, Field, RecordSource};
    use boat_tree::{Gini, ImpuritySelector};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 4)],
            2,
        )
        .unwrap()
    }

    /// Strongly separable data: label = x >= 500, c irrelevant.
    fn clean_sample(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let x = (i % 1000) as f64;
                Record::new(
                    vec![Field::Num(x), Field::Cat((i % 4) as u32)],
                    u16::from(x >= 500.0),
                )
            })
            .collect()
    }

    fn config() -> BoatConfig {
        BoatConfig {
            sample_size: 1000,
            bootstrap_reps: 10,
            bootstrap_sample_size: 400,
            in_memory_threshold: 10, // scaled: tiny -> deep bootstrap trees
            ..BoatConfig::default()
        }
    }

    #[test]
    fn clean_data_agrees_at_the_root() {
        let schema = schema();
        let sample = clean_sample(1000);
        let sel = ImpuritySelector::new(Gini);
        let mut rng = StdRng::seed_from_u64(7);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &config(),
            100_000,
            &mut rng,
            &Registry::new(),
        );
        let root = &coarse.nodes[0];
        let Some(CoarseCriterion::Num { attr, lo, hi }) = &root.crit else {
            panic!(
                "root should agree on the numeric attribute, got {:?}",
                root.crit
            );
        };
        assert_eq!(*attr, 0);
        // Every bootstrap split point is near the true boundary 499.
        assert!(*lo <= *hi);
        assert!((450.0..=550.0).contains(lo), "lo={lo}");
        assert!((450.0..=550.0).contains(hi), "hi={hi}");
        // Mode clustering may drop a stray point, but most must survive.
        assert!(root.bootstrap_points.len() >= 6);
        assert!(root.bootstrap_points.len() <= 10);
    }

    #[test]
    fn interval_contains_all_untrimmed_points() {
        let schema = schema();
        let sample = clean_sample(800);
        let sel = ImpuritySelector::new(Gini);
        let mut rng = StdRng::seed_from_u64(8);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &config(),
            50_000,
            &mut rng,
            &Registry::new(),
        );
        let root = &coarse.nodes[0];
        if let Some(CoarseCriterion::Num { lo, hi, .. }) = root.crit {
            for &p in &root.bootstrap_points {
                assert!(p >= lo && p <= hi);
            }
        } else {
            panic!("expected numeric root");
        }
    }

    #[test]
    fn trimming_narrows_the_interval() {
        let schema = schema();
        let sample = clean_sample(700);
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();
        let mut rng = StdRng::seed_from_u64(9);
        let wide = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            50_000,
            &mut rng,
            &Registry::new(),
        );
        cfg.confidence_trim = 0.2;
        let mut rng = StdRng::seed_from_u64(9);
        let narrow = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            50_000,
            &mut rng,
            &Registry::new(),
        );
        let get = |c: &CoarseTree| match c.nodes[0].crit {
            Some(CoarseCriterion::Num { lo, hi, .. }) => (lo, hi),
            _ => panic!("numeric root"),
        };
        let (wl, wh) = get(&wide);
        let (nl, nh) = get(&narrow);
        assert!(nl >= wl && nh <= wh);
    }

    #[test]
    fn pure_sample_is_a_sample_leaf() {
        let schema = schema();
        let sample: Vec<Record> = (0..100)
            .map(|i| Record::new(vec![Field::Num(i as f64), Field::Cat(0)], 0))
            .collect();
        let sel = ImpuritySelector::new(Gini);
        let mut rng = StdRng::seed_from_u64(10);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &config(),
            10_000,
            &mut rng,
            &Registry::new(),
        );
        assert!(coarse.is_empty());
        assert_eq!(coarse.nodes[0].reason, Some(FrontierReason::SampleLeaf));
    }

    #[test]
    fn unstable_data_cuts_with_disagreement() {
        // Two near-tied minima (the paper's Figure 12 situation) make the
        // root's *children* (or the root itself) disagree across bootstrap
        // repetitions.
        let ds = boat_datagen::instability::two_minima_dataset(24, 4);
        let schema = ds.schema().as_ref().clone();
        let sample = ds.records().to_vec();
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();
        cfg.bootstrap_reps = 16;
        cfg.bootstrap_sample_size = 600;
        let mut rng = StdRng::seed_from_u64(11);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &Registry::new(),
        );
        // The root agrees on the single attribute; mode clustering then
        // commits to ONE of the two minima (near 20 or near 60) — spanning
        // both would park half the database and make the children
        // incomparable. (A cut with Disagreement is also acceptable if the
        // vote itself fractured.)
        match &coarse.nodes[0].crit {
            Some(CoarseCriterion::Num { lo, hi, .. }) => {
                let near_20 = *lo >= 10.0 && *hi <= 30.0;
                let near_60 = *lo >= 50.0 && *hi <= 70.0;
                assert!(
                    near_20 || near_60,
                    "interval [{lo},{hi}] should commit to a single mode"
                );
            }
            None => assert_eq!(coarse.nodes[0].reason, Some(FrontierReason::Disagreement)),
            other => panic!("unexpected root criterion {other:?}"),
        }
    }

    #[test]
    fn depths_and_parents_are_consistent() {
        let schema = schema();
        let sample = clean_sample(1000);
        let sel = ImpuritySelector::new(Gini);
        let mut rng = StdRng::seed_from_u64(12);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &config(),
            100_000,
            &mut rng,
            &Registry::new(),
        );
        for (i, n) in coarse.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert_eq!(coarse.nodes[p].depth + 1, n.depth);
                let pn = &coarse.nodes[p];
                assert!(pn.left == Some(i) || pn.right == Some(i));
            } else {
                assert_eq!(i, 0);
                assert_eq!(n.depth, 0);
            }
            if n.crit.is_some() {
                assert!(n.left.is_some() && n.right.is_some());
            } else {
                assert!(n.left.is_none() && n.right.is_none());
            }
        }
    }

    #[test]
    fn majority_survives_a_dissenting_minority_where_unanimity_cuts() {
        // Mixture data where a clear best attribute exists but a small
        // fraction of resamples flips: exactly the laptop-scale regime the
        // Majority rule exists for. Attribute 0 separates at 500 with a
        // thin noisy band; a competing weak signal lives on the categorical
        // attribute.
        let schema = schema();
        let sample: Vec<Record> = (0..1200)
            .map(|i| {
                let x = (i % 1000) as f64;
                // Noisy band near the boundary keeps resamples wobbly.
                let label = if (480..520).contains(&(i % 1000)) {
                    (i % 2) as u16
                } else {
                    u16::from(x >= 500.0)
                };
                Record::new(vec![Field::Num(x), Field::Cat((i % 4) as u32)], label)
            })
            .collect();
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();
        cfg.bootstrap_reps = 20;
        cfg.bootstrap_sample_size = 300;

        cfg.agreement = crate::config::AgreementRule::Majority { quorum: 0.7 };
        let mut rng = StdRng::seed_from_u64(77);
        let majority = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &Registry::new(),
        );

        cfg.agreement = crate::config::AgreementRule::Unanimous;
        let mut rng = StdRng::seed_from_u64(77);
        let unanimous = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &Registry::new(),
        );

        assert!(
            majority.n_internal() >= unanimous.n_internal(),
            "majority must never keep fewer criteria: {} vs {}",
            majority.n_internal(),
            unanimous.n_internal()
        );
        // And the majority root must be the numeric attribute.
        match &majority.nodes[0].crit {
            Some(CoarseCriterion::Num { attr: 0, .. }) => {}
            other => panic!("majority root should split attribute 0, got {other:?}"),
        }
    }

    #[test]
    fn majority_interval_uses_only_agreeing_trees() {
        let schema = schema();
        let sample = clean_sample(1000);
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();
        cfg.agreement = crate::config::AgreementRule::Majority { quorum: 0.6 };
        let mut rng = StdRng::seed_from_u64(78);
        let coarse = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &Registry::new(),
        );
        let root = &coarse.nodes[0];
        assert!(root.crit.is_some());
        assert!(
            root.bootstrap_points.len() <= cfg.bootstrap_reps,
            "interval points come from agreeing trees only"
        );
        assert!(root.bootstrap_points.len() >= (0.6 * cfg.bootstrap_reps as f64) as usize);
    }

    #[test]
    fn columnar_and_rows_engines_build_identical_coarse_trees() {
        // Same seed, both engines, metrics inspected for the new counters.
        let schema = schema();
        let sample = clean_sample(900);
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();

        cfg.sample_engine = SampleEngine::Columnar;
        let columnar_metrics = Registry::new();
        let mut rng = StdRng::seed_from_u64(99);
        let columnar = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &columnar_metrics,
        );

        cfg.sample_engine = SampleEngine::Rows;
        let rows_metrics = Registry::new();
        let mut rng = StdRng::seed_from_u64(99);
        let rows = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &rows_metrics,
        );

        assert_eq!(columnar, rows, "engines must agree node for node");

        let snap = columnar_metrics.snapshot();
        assert_eq!(
            snap.counter("boat.sample.columnar_builds"),
            cfg.bootstrap_reps as u64
        );
        assert!(snap.counter("boat.sample.clone_bytes_avoided") > 0);
        assert!(snap.histogram("boat.sample.transpose").is_some());
        assert!(snap.histogram("boat.sample.presort").is_some());
        assert!(snap.histogram("boat.sample.grow").is_some());
        let rows_snap = rows_metrics.snapshot();
        assert_eq!(
            rows_snap.counter("boat.sample.rows_builds"),
            cfg.bootstrap_reps as u64
        );
        assert_eq!(rows_snap.counter("boat.sample.columnar_builds"), 0);
    }

    #[test]
    fn quest_selector_falls_back_to_rows_engine() {
        // QUEST has no columnar path; the dispatch must silently use the
        // row-oriented builder instead of panicking.
        let schema = schema();
        let sample = clean_sample(600);
        let sel = boat_tree::QuestSelector;
        let cfg = config(); // sample_engine: Columnar (default)
        let metrics = Registry::new();
        let mut rng = StdRng::seed_from_u64(5);
        let coarse = build_coarse_tree(&schema, &sample, &sel, &cfg, 50_000, &mut rng, &metrics);
        assert!(!coarse.nodes.is_empty());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("boat.sample.columnar_builds"), 0);
        assert_eq!(
            snap.counter("boat.sample.rows_builds"),
            cfg.bootstrap_reps as u64
        );
        assert_eq!(
            snap.counter("boat.sample.selector_fallbacks"),
            1,
            "the silent engine override must be counted"
        );
    }

    #[test]
    fn columnar_selector_does_not_count_a_fallback() {
        let schema = schema();
        let sample = clean_sample(400);
        let sel = ImpuritySelector::new(Gini);
        let metrics = Registry::new();
        let mut rng = StdRng::seed_from_u64(6);
        build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &config(),
            50_000,
            &mut rng,
            &metrics,
        );
        assert_eq!(
            metrics.snapshot().counter("boat.sample.selector_fallbacks"),
            0
        );
    }

    #[test]
    fn subsample_gate_produces_identical_coarse_trees_and_counters() {
        // Gate on (default) vs gate off: identical coarse trees, and the
        // gated run must report activity on a sample large enough to clear
        // min_node at the root.
        let schema = schema();
        let sample = clean_sample(4000);
        let sel = ImpuritySelector::new(Gini);
        let mut cfg = config();
        cfg.sample_size = 4000;
        cfg.bootstrap_sample_size = 2000;
        cfg.split_subsample_min_node = 64;

        let gated_metrics = Registry::new();
        let mut rng = StdRng::seed_from_u64(55);
        let gated = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &gated_metrics,
        );

        cfg.split_subsample = 0.0;
        let mut rng = StdRng::seed_from_u64(55);
        let exact = build_coarse_tree(
            &schema,
            &sample,
            &sel,
            &cfg,
            100_000,
            &mut rng,
            &Registry::new(),
        );

        assert_eq!(gated, exact, "the gate must never change the coarse tree");
        let snap = gated_metrics.snapshot();
        assert!(
            snap.counter("boat.sample.subsample.swept") > 0,
            "gate must have engaged on 2000-row resamples"
        );
    }

    #[test]
    fn bootstrap_limits_scale_with_dataset_size() {
        let mut cfg = config();
        cfg.in_memory_threshold = 1_500_000;
        cfg.bootstrap_sample_size = 50_000;
        // Paper scale: 10M tuples, threshold 1.5M, resample 50k
        // => scaled stop = 1.5M * 50k / 10M = 7500.
        let l = bootstrap_limits(&cfg, 10_000_000);
        assert_eq!(l.stop_family_size, Some(7_500));
        // Degenerate full_size.
        assert_eq!(bootstrap_limits(&cfg, 0).stop_family_size, Some(1));
    }
}
