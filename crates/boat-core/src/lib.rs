//! # BOAT — Bootstrapped Optimistic Algorithm for Tree construction
//!
//! A faithful implementation of *"BOAT—Optimistic Decision Tree
//! Construction"* (Gehrke, Ganti, Ramakrishnan, Loh; SIGMOD 1999): exact
//! greedy decision trees over training databases larger than memory, built
//! in (typically) **two sequential scans** instead of one scan per tree
//! level, plus incremental maintenance of the same exact tree under chunk
//! insertions and deletions.
//!
//! The pipeline (paper §3):
//!
//! 1. **Sampling phase** ([`coarse`]) — scan 1 draws an in-memory sample;
//!    bootstrapping turns it into a *coarse tree* whose numeric splits are
//!    confidence intervals and whose categorical splits are exact subsets.
//! 2. **Cleanup phase** (internal) — scan 2 streams every tuple down the
//!    coarse tree, parking tuples that fall inside a confidence interval
//!    and counting category/bucket statistics everywhere else.
//! 3. **Verification** ([`verify`], [`buckets`]) — the exact split is
//!    computed inside each interval, and Lemma 3.1's concavity corner bound
//!    proves no better split exists outside; any detected failure rebuilds
//!    just the affected subtree, so the output is *always* the exact tree.
//! 4. **Dynamic maintenance** ([`incremental`]) — the retained state
//!    absorbs insert/delete chunks in one scan over the chunk, with the
//!    identical-tree guarantee preserved.
//!
//! Every run records into a `boat_obs` registry (phase spans, verification
//! verdicts, cleanup-shard timers, input/spill I/O counters); the per-run
//! delta is returned as [`BoatRunStats::metrics`], so the paper's cost
//! model ("two scans, bounded spill") is directly assertable.
//!
//! ```no_run
//! use boat_core::{Boat, BoatConfig};
//! use boat_data::{FileDataset, IoStats};
//!
//! let data = FileDataset::open("train.boat", IoStats::new()).unwrap();
//! let fit = Boat::new(BoatConfig::scaled_for(1_000_000)).fit(&data).unwrap();
//! println!("{} scans, {} nodes", fit.stats.scans_over_input, fit.tree.n_nodes());
//! ```

#![warn(missing_docs)]

mod boat;
pub mod buckets;
pub mod coarse;
pub mod config;
pub mod incremental;
pub mod stats;
pub mod stream;
pub mod verify;
mod work;

pub use boat::{reference_tree, Boat, BoatFit};
pub use coarse::{CoarseCriterion, CoarseTree, FrontierReason};
pub use config::{BoatConfig, DiscretizeStrategy, SampleEngine};
pub use incremental::{BoatModel, MaintainReport, UpdateReport};
pub use stats::BoatRunStats;
pub use stream::{
    replay_wal_into, DeadlineTrigger, DriftTrigger, MaintainTrigger, ProvenanceSink, QuiesceReport,
    RecordCountTrigger, Staleness, StalenessBound, StreamConfig, StreamStats, StreamWriter,
    StreamingBoat,
};
