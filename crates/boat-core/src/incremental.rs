//! Incremental maintenance in a dynamic environment (paper §4).
//!
//! [`BoatModel`] retains everything the cleanup phase collected — per-node
//! coarse criteria, category/bucket counts, the parked sets `S_n`, and the
//! frontier family buffers — so that a new chunk of training data can be
//! *streamed down the tree exactly as if it were part of the original
//! cleanup scan*. The verification pass (and any subtree maintenance it
//! triggers) runs lazily, when the tree is next requested, so a burst of
//! chunks pays for verification once. The resulting tree is guaranteed to
//! be identical to a complete re-build on the modified training database.
//! Deletions are handled symmetrically, by subtracting from every count and
//! removing parked/retained records.
//!
//! Cost model (matching the paper's §4 discussion): if the chunks come
//! from the same underlying distribution, every coarse criterion keeps
//! verifying and maintenance touches only counters, parked buffers and the
//! frontier subtrees the chunks' tuples actually reach — the original
//! training database is **never rescanned**. If the distribution changed
//! somewhere, verification fails exactly at the affected subtree, and only
//! that subtree is rebuilt (from records the model itself retained).
//! Frontier leaves that outgrow the in-memory threshold are *promoted*
//! into fully maintained state, so the maintained region tracks the
//! growing database.

use crate::boat::{Boat, BoatFit};
use crate::config::BoatConfig;
use crate::stats::BoatRunStats;
use crate::work::{Resolution, WorkTree};
use boat_data::dataset::RecordSource;
use boat_data::{DataError, Record, Result};
use boat_tree::{Gini, Impurity, Tree};
use std::time::{Duration, Instant};

/// What happened while absorbing one chunk (streaming only; verification
/// happens at the next [`BoatModel::tree`] / [`BoatModel::maintain`]).
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Records inserted.
    pub inserted: u64,
    /// Records deleted.
    pub deleted: u64,
    /// Wall time of streaming the chunk down the tree.
    pub time: Duration,
}

/// What the (lazy) maintenance pass did.
#[derive(Debug, Clone, Default)]
pub struct MaintainReport {
    /// Coarse nodes whose criterion failed verification (their subtrees
    /// were rebuilt).
    pub failed_nodes: u64,
    /// Completion jobs executed (subtrees grown, regrown or promoted).
    pub regrown_subtrees: u64,
    /// Wall time of verification + completion.
    pub time: Duration,
}

/// Observer invoked with every freshly materialized exact tree (see
/// [`BoatModel::set_publish_hook`]).
type PublishHook = Box<dyn Fn(&Tree) + Send>;

/// A maintained BOAT model: per-node state that absorbs insert/delete
/// chunks, plus the (lazily materialized) current exact tree.
pub struct BoatModel<I: Impurity + Clone = Gini> {
    algo: Boat<I>,
    work: WorkTree,
    tree: Option<Tree>,
    /// Observer invoked with every freshly materialized exact tree (see
    /// [`BoatModel::set_publish_hook`]). Not cloned with the model.
    publish_hook: Option<PublishHook>,
}

impl<I: Impurity + Clone> Boat<I> {
    /// Build a maintainable model (paper §4). Compared to [`Boat::fit`],
    /// frontier nodes additionally retain their family records, so updates
    /// never need to rescan the original training database.
    pub fn fit_model(&self, source: &dyn RecordSource) -> Result<(BoatModel<I>, BoatRunStats)>
    where
        I: Clone,
    {
        self.config().validate().map_err(DataError::Invalid)?;
        let metrics_before = self.metrics().snapshot();
        let io_before = source.stats().snapshot();
        self.metrics().counter("boat.fit.runs").inc();
        let (work, mut stats) = self.fit_work(source, self.config().max_recursion, true)?;
        let tree = work.extract_tree();
        stats.io = source.stats().snapshot() - io_before;
        crate::boat::mirror_io(self.metrics(), "data.input", stats.io);
        stats.metrics = self.metrics().snapshot().since(&metrics_before);
        Ok((
            BoatModel {
                algo: self.clone(),
                work,
                tree: Some(tree),
                publish_hook: None,
            },
            stats,
        ))
    }
}

impl<I: Impurity + Clone> BoatModel<I> {
    /// The current decision tree — always identical to a full rebuild on
    /// the net training data. Runs any pending maintenance first.
    pub fn tree(&mut self) -> Result<&Tree> {
        self.maintain()?;
        Ok(self.tree.as_ref().expect("maintain materializes the tree"))
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &BoatConfig {
        self.algo.config()
    }

    /// The schema of the training data this model maintains.
    pub fn schema(&self) -> &std::sync::Arc<boat_data::Schema> {
        &self.work.schema
    }

    /// Incorporate a chunk of new training records (one scan over the
    /// chunk; verification is deferred to the next [`BoatModel::tree`]).
    pub fn insert(&mut self, chunk: &dyn RecordSource) -> Result<UpdateReport> {
        self.update(chunk, false)
    }

    /// Remove a chunk of training records (each must be present; one scan
    /// over the chunk).
    pub fn delete(&mut self, chunk: &dyn RecordSource) -> Result<UpdateReport> {
        self.update(chunk, true)
    }

    fn update(&mut self, chunk: &dyn RecordSource, delete: bool) -> Result<UpdateReport> {
        if **chunk.schema() != *self.work.schema {
            return Err(DataError::Schema("update chunk schema mismatch".into()));
        }
        let metrics = self.algo.metrics().clone();
        let span = metrics.span("boat.incremental.update");
        metrics.counter("boat.incremental.update_chunks").inc();
        let t0 = Instant::now();
        let mut report = UpdateReport::default();
        let mut err: Option<DataError> = None;
        if delete {
            // Deletions go through the batched path: per-record validation
            // and counter updates are unchanged, but every touched spill
            // buffer is rewritten once (`remove_many`) instead of once per
            // deleted record — O(n) instead of O(D·n) spill traffic for a
            // D-record chunk.
            let mut victims: Vec<Record> = Vec::new();
            for r in chunk.scan()? {
                match r {
                    Ok(rec) => victims.push(rec),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            let (applied, batch_err) = self.work.absorb_delete_batch(&victims);
            report.deleted = applied;
            // A batch error happened on an earlier record than any scan
            // error (the scan stopped collecting there), so it wins —
            // matching the serial loop, which never reaches the scan error
            // once an absorb fails.
            err = batch_err.or(err);
        } else {
            for r in chunk.scan()? {
                let rec = match r {
                    Ok(rec) => rec,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                };
                match self.work.absorb(&rec, false) {
                    Ok(()) => report.inserted += 1,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
        }
        metrics
            .counter("boat.incremental.inserts")
            .add(report.inserted);
        metrics
            .counter("boat.incremental.deletes")
            .add(report.deleted);
        // Only invalidate the materialized tree when this chunk actually
        // mutated state. An *empty* chunk (or a validated-delete failure on
        // the first record, which is a guaranteed no-op) leaves the tree
        // current — invalidating it anyway would force a full needless
        // re-verification pass on the next `tree()`.
        let clean_failure = report.inserted + report.deleted == 0
            && matches!(err, None | Some(DataError::Invalid(_)));
        if !clean_failure {
            self.tree = None; // maintenance pending
        }
        report.time = t0.elapsed();
        span.finish();
        match err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Run pending maintenance now: the verification pass, subtree
    /// completion, and promotion of outgrown frontier nodes. Idempotent;
    /// a no-op when the tree is already current.
    pub fn maintain(&mut self) -> Result<MaintainReport> {
        let mut report = MaintainReport::default();
        if self.tree.is_some() {
            return Ok(report);
        }
        let metrics = self.algo.metrics().clone();
        let span = metrics.span("boat.incremental.maintain");
        metrics.counter("boat.incremental.maintain_runs").inc();
        let t0 = Instant::now();
        let imp = self.algo.impurity().clone();
        let limits = self.config().limits;
        let mut stats = BoatRunStats::default();
        let max_recursion = self.config().max_recursion;
        let total: u64 = self.work.root_family();
        // Promotions splice maintained subtrees in and require a
        // re-verification pass (bounded: the final round disables
        // promotion, and static growth always completes).
        for round in 0..4u32 {
            let jobs = self.work.finalize(&imp, limits)?;
            let promoted = self.algo.execute_jobs(
                &mut self.work,
                jobs,
                None,
                max_recursion,
                total,
                round < 3,
                &mut stats,
            )?;
            if !promoted {
                break;
            }
        }
        // Jobs *executed* across every promotion round — rounds 1–3 regrow
        // the subtrees the promotions spliced in, and reusable jobs (grown
        // subtree provably unchanged) are skipped, so this is neither the
        // round-0 job count nor the sum of per-round job lists.
        report.regrown_subtrees = stats.jobs_executed;
        report.failed_nodes = self
            .work
            .nodes
            .iter()
            .filter(|n| matches!(n.resolution, Resolution::Failed { .. }))
            .count() as u64;
        self.tree = Some(self.work.extract_tree());
        if let (Some(hook), Some(tree)) = (self.publish_hook.as_ref(), self.tree.as_ref()) {
            let publish_span = metrics.span("boat.incremental.publish");
            hook(tree);
            publish_span.finish();
            metrics.counter("boat.incremental.published").inc();
        }
        report.time = t0.elapsed();
        span.finish();
        Ok(report)
    }

    /// Register an observer that is handed every freshly materialized
    /// exact tree, immediately after a maintenance pass rebuilds it and
    /// before [`BoatModel::maintain`] returns. Downstream consumers (the
    /// `boat-serve` snapshot layer) use this to compile and atomically
    /// publish the post-maintenance tree the instant it exists; because
    /// the hook runs *after* the tree is fully materialized, observers
    /// only ever see complete, exact trees — never intermediate
    /// verification state. Replaces any previously installed hook. The
    /// hook is **not** invoked for a tree that is already current
    /// (maintain short-circuits), nor retroactively for the initial
    /// [`Boat::fit_model`] tree — publish that one yourself.
    pub fn set_publish_hook(&mut self, hook: impl Fn(&Tree) + Send + 'static) {
        self.publish_hook = Some(Box::new(hook));
    }

    /// Remove the publish hook installed by [`BoatModel::set_publish_hook`].
    pub fn clear_publish_hook(&mut self) {
        self.publish_hook = None;
    }

    /// The observability registry this model records into (shared with the
    /// [`Boat`] instance that built it).
    pub fn metrics(&self) -> &boat_obs::Registry {
        self.algo.metrics()
    }

    /// Total records currently parked in confidence-interval buffers.
    pub fn parked_tuples(&self) -> u64 {
        self.work.parked_total()
    }
}

/// Convenience wrapper: run a full rebuild with the same algorithm on a
/// source (used by the dynamic-environment benches for the "repeated
/// re-build" baseline).
pub fn rebuild<I: Impurity + Clone>(algo: &Boat<I>, source: &dyn RecordSource) -> Result<BoatFit> {
    algo.fit(source)
}
