//! Run statistics reported by BOAT.
//!
//! The paper's claims are about scan counts and where the time goes;
//! [`BoatRunStats`] captures both for every `fit` and incremental update so
//! the bench harness can print them next to wall time.

use boat_data::IoSnapshot;
use boat_obs::Snapshot;
use std::time::Duration;

/// Statistics of one BOAT construction (or incremental maintenance) run.
#[derive(Debug, Clone, Default)]
pub struct BoatRunStats {
    /// Sequential scans made over the *input* training database (sampling
    /// scan + cleanup scan + any failure-recovery scans). The paper's
    /// headline: typically 2.
    pub scans_over_input: u64,
    /// Records actually drawn into the in-memory sample `D'`.
    pub sample_records: u64,
    /// Nodes of the coarse tree produced by bootstrapping (internal +
    /// frontier).
    pub coarse_nodes: u64,
    /// Coarse internal nodes whose criterion was verified correct.
    pub verified_nodes: u64,
    /// Coarse nodes whose criterion failed verification (paper: rare).
    pub failed_nodes: u64,
    /// Tuples parked in confidence-interval buffers (`Σ|S_n|`).
    pub parked_tuples: u64,
    /// Parked/frontier tuples that overflowed to temporary files.
    pub spilled_tuples: u64,
    /// Frontier subtrees finished with the in-memory builder.
    pub inmem_builds: u64,
    /// Frontier/failed subtrees re-run through BOAT recursively.
    pub recursive_builds: u64,
    /// Completion jobs actually executed (grown, regrown or promoted) —
    /// reusable jobs whose grown subtree is provably unchanged are skipped
    /// and not counted. Accumulated across every verification round.
    pub jobs_executed: u64,
    /// Wall time of the sampling + bootstrap phase.
    pub sampling_time: Duration,
    /// Wall time of the cleanup scan.
    pub cleanup_time: Duration,
    /// Wall time of verification + finishing work.
    pub postprocess_time: Duration,
    /// I/O over the *input* training database.
    pub io: IoSnapshot,
    /// I/O over temporary files (parked sets `S_n`, retained families,
    /// rebuild partitions).
    pub spill_io: IoSnapshot,
    /// Full observability snapshot of the run: the delta of the owning
    /// `Boat`'s metric registry over this fit (phase spans, verification
    /// verdicts, cleanup-shard timers, input/spill I/O counters). Lets
    /// tests assert cost-model invariants — "exactly 2 full scans",
    /// "spilled bytes ≤ budget" — instead of only tree equality.
    pub metrics: Snapshot,
}

impl BoatRunStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.sampling_time + self.cleanup_time + self.postprocess_time
    }

    /// Merge a recursive sub-run into this one (scan counts and totals
    /// accumulate; phase times accumulate).
    pub fn absorb(&mut self, sub: &BoatRunStats) {
        self.scans_over_input += sub.scans_over_input;
        self.coarse_nodes += sub.coarse_nodes;
        self.verified_nodes += sub.verified_nodes;
        self.failed_nodes += sub.failed_nodes;
        self.parked_tuples += sub.parked_tuples;
        self.spilled_tuples += sub.spilled_tuples;
        self.inmem_builds += sub.inmem_builds;
        self.recursive_builds += sub.recursive_builds;
        self.jobs_executed += sub.jobs_executed;
        self.sampling_time += sub.sampling_time;
        self.cleanup_time += sub.cleanup_time;
        self.postprocess_time += sub.postprocess_time;
    }
}

impl std::fmt::Display for BoatRunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scans={} coarse={} verified={} failed={} parked={} spilled={} \
             inmem={} recursive={} time={:?}",
            self.scans_over_input,
            self.coarse_nodes,
            self.verified_nodes,
            self.failed_nodes,
            self.parked_tuples,
            self.spilled_tuples,
            self.inmem_builds,
            self.recursive_builds,
            self.total_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = BoatRunStats {
            scans_over_input: 2,
            failed_nodes: 1,
            ..Default::default()
        };
        let b = BoatRunStats {
            scans_over_input: 2,
            inmem_builds: 3,
            sampling_time: Duration::from_millis(5),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.scans_over_input, 4);
        assert_eq!(a.failed_nodes, 1);
        assert_eq!(a.inmem_builds, 3);
        assert_eq!(a.total_time(), Duration::from_millis(5));
    }

    #[test]
    fn display_mentions_scans() {
        let s = BoatRunStats {
            scans_over_input: 2,
            ..Default::default()
        };
        assert!(s.to_string().contains("scans=2"));
    }
}
