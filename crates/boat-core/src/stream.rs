//! Streaming write path: a maintenance daemon over the durable WAL.
//!
//! BOAT §4's dynamic environment delivers the training database as a
//! stream of insert/delete chunks. [`StreamingBoat`] turns the blocking,
//! caller-driven [`BoatModel::insert`]/[`BoatModel::delete`]/
//! [`BoatModel::maintain`] triple into a daemon:
//!
//! * Producers append chunks through [`StreamWriter`] (any number of
//!   threads). Every chunk lands in the durable [`boat_data::wal`] first;
//!   only *fsynced* operations are forwarded to the daemon, so everything
//!   the model ever absorbed is replayable after a crash
//!   ([`replay_wal_into`]).
//! * The daemon owns the [`BoatModel`], drains the WAL's forward channel,
//!   routes inserts through [`BoatModel::insert`] and deletes through the
//!   batched delete path, and schedules [`BoatModel::maintain`] by
//!   pluggable [`MaintainTrigger`]s — record count, wall-clock deadline,
//!   and a drift trigger fed by the verification-failure rate in
//!   [`MaintainReport`].
//! * A [`StalenessBound`] caps how stale the maintained (and, with a
//!   publish hook installed, the *served*) tree may get: the daemon
//!   maintains *before* an absorb would push unmaintained records past
//!   `max_records`, and wakes itself early enough to respect `max_age`.
//!   Backpressure is end-to-end: both the WAL ingest channel and the
//!   forward channel are bounded, so producers block while the daemon is
//!   busy rather than growing an unbounded backlog.
//!
//! Exactness is unchanged: at any quiesce point ([`StreamingBoat::quiesce`])
//! the daemon-maintained tree is byte-identical to a synchronous replay of
//! the same chunk sequence — the exact tree depends only on the net record
//! multiset, and the WAL fixes one global chunk order.
//!
//! A [`ProvenanceSink`] plugged into [`StreamConfig::provenance`] rides the
//! same single daemon thread: it sees every absorbed operation's WAL
//! content digest *in absorb order*, partitioned by the maintains that
//! seal epochs (the publish hook runs inside [`BoatModel::maintain`], so a
//! sink shared with the hook observes exactly the delta ops between two
//! published trees). [`QuiesceReport::fingerprint`] surfaces the sink's
//! chained epoch fingerprint at the quiesce cut.
//!
//! Metrics (in the model's registry): `boat.stream.{ingest_depth,
//! wal_bytes,staleness_records,staleness_age_ns,maintain_latency_ns,
//! trigger_fires,bound_violations,ingest_errors}` plus the `data.wal.*`
//! durability counters.

use crate::incremental::{BoatModel, MaintainReport};
use boat_data::wal::{Wal, WalAppender, WalConfig, WalEvent, WalKind, WalOp};
use boat_data::{DataError, MemoryDataset, Record, Result, Schema};
use boat_obs::Registry;
use boat_proof::Hash256;
use boat_tree::{Gini, Impurity};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How stale the maintained model may get before the daemon must run
/// [`BoatModel::maintain`].
#[derive(Debug, Clone)]
pub struct StalenessBound {
    /// Maximum absorbed-but-unmaintained records. The daemon maintains
    /// *before* an absorb would exceed this, so the bound can only be
    /// violated by a single chunk larger than the whole budget.
    pub max_records: u64,
    /// Maximum age of the oldest unmaintained operation. `None` disables
    /// the wall-clock bound.
    pub max_age: Option<Duration>,
}

impl Default for StalenessBound {
    fn default() -> Self {
        StalenessBound {
            max_records: 10_000,
            max_age: Some(Duration::from_secs(2)),
        }
    }
}

/// The daemon's current staleness: what has been absorbed since the last
/// maintain. Passed to [`MaintainTrigger`]s.
#[derive(Debug, Clone, Default)]
pub struct Staleness {
    /// Records absorbed since the last maintain.
    pub records: u64,
    /// Operations (chunks) absorbed since the last maintain.
    pub ops: u64,
    /// When the oldest unmaintained operation was absorbed.
    pub oldest: Option<Instant>,
}

impl Staleness {
    /// Age of the oldest unmaintained operation (zero when caught up).
    pub fn age(&self) -> Duration {
        self.oldest.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
    }

    fn reset(&mut self) {
        *self = Staleness::default();
    }
}

/// A pluggable provenance observer riding the daemon thread.
///
/// The daemon calls [`absorb_op`](ProvenanceSink::absorb_op) for every WAL
/// operation immediately before absorbing it into the model — after any
/// bound-enforcing pre-absorb maintain, so the ops a sink accumulates
/// between two maintains are exactly the delta between the two published
/// trees. Because the model's publish hook also runs on this thread
/// (inside [`BoatModel::maintain`]), a sink that shares state with the
/// hook (e.g. `boat-serve`'s provenance ledger) needs no further
/// synchronization for ordering: absorb → maintain → seal is a single
/// serialized sequence.
pub trait ProvenanceSink: Send {
    /// Observe one durable operation about to be absorbed. `op.content_digest`
    /// is the WAL frame's content digest ([`boat_data::wal`]).
    fn absorb_op(&mut self, op: &WalOp);
    /// The chained epoch fingerprint after the most recent sealed epoch
    /// (`None` until a first epoch exists).
    fn fingerprint(&self) -> Option<Hash256>;
}

/// A pluggable maintenance-scheduling policy.
///
/// The daemon asks every trigger after each absorbed operation (and on
/// wake-ups) whether maintenance is [`due`](MaintainTrigger::due); any
/// `true` fires a maintain. [`max_wait`](MaintainTrigger::max_wait) bounds
/// how long the daemon may sleep waiting for input before re-asking (for
/// wall-clock policies); [`observe`](MaintainTrigger::observe) feeds the
/// resulting [`MaintainReport`] back so triggers can adapt.
pub trait MaintainTrigger: Send {
    /// Short name, used in `boat.stream.trigger_fires.<name>` counters.
    fn name(&self) -> &'static str;
    /// Whether maintenance should run now.
    fn due(&self, staleness: &Staleness) -> bool;
    /// Upper bound on how long the daemon may block waiting for input
    /// before re-evaluating (`None` = no wall-clock constraint).
    fn max_wait(&self, _staleness: &Staleness) -> Option<Duration> {
        None
    }
    /// Feedback after a maintain.
    fn observe(&mut self, _report: &MaintainReport) {}
}

/// Fires once `threshold` records have been absorbed since the last
/// maintain. (The staleness bound's `max_records` is enforced separately
/// and exactly by a pre-absorb check; this trigger sets the steady-state
/// batch size.)
#[derive(Debug, Clone)]
pub struct RecordCountTrigger {
    /// Fire at or above this many unmaintained records.
    pub threshold: u64,
}

impl MaintainTrigger for RecordCountTrigger {
    fn name(&self) -> &'static str {
        "records"
    }

    fn due(&self, staleness: &Staleness) -> bool {
        staleness.records >= self.threshold.max(1)
    }
}

/// Fires when the oldest unmaintained operation is older than `period`.
#[derive(Debug, Clone)]
pub struct DeadlineTrigger {
    /// Maximum time an absorbed operation may wait for a maintain.
    pub period: Duration,
}

impl MaintainTrigger for DeadlineTrigger {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn due(&self, staleness: &Staleness) -> bool {
        staleness.ops > 0 && staleness.age() >= self.period
    }

    fn max_wait(&self, staleness: &Staleness) -> Option<Duration> {
        if staleness.ops == 0 {
            return None; // nothing can go stale while caught up
        }
        Some(self.period.saturating_sub(staleness.age()))
    }
}

/// Drift-adaptive record-count trigger: when maintains report verification
/// failures (the distribution is moving and subtrees are being rebuilt),
/// the firing threshold halves per escalation level — maintaining more
/// eagerly keeps each rebuild small. Clean maintains decay the level back.
#[derive(Debug, Clone)]
pub struct DriftTrigger {
    /// Threshold at level 0 (no recent verification failures).
    pub base_records: u64,
    level: u32,
    clean_streak: u32,
}

impl DriftTrigger {
    /// Maximum escalation level (threshold is `base >> level`).
    const MAX_LEVEL: u32 = 3;
    /// Consecutive clean maintains required to decay one level.
    const DECAY_AFTER: u32 = 2;

    /// A drift trigger with the given level-0 threshold.
    pub fn new(base_records: u64) -> Self {
        DriftTrigger {
            base_records: base_records.max(1),
            level: 0,
            clean_streak: 0,
        }
    }

    /// Current escalation level (0 = no drift observed).
    pub fn level(&self) -> u32 {
        self.level
    }

    fn threshold(&self) -> u64 {
        (self.base_records >> self.level).max(1)
    }
}

impl MaintainTrigger for DriftTrigger {
    fn name(&self) -> &'static str {
        "drift"
    }

    fn due(&self, staleness: &Staleness) -> bool {
        self.level > 0 && staleness.records >= self.threshold()
    }

    fn observe(&mut self, report: &MaintainReport) {
        if report.failed_nodes > 0 {
            self.level = (self.level + 1).min(Self::MAX_LEVEL);
            self.clean_streak = 0;
        } else if self.level > 0 {
            self.clean_streak += 1;
            if self.clean_streak >= Self::DECAY_AFTER {
                self.level -= 1;
                self.clean_streak = 0;
            }
        }
    }
}

/// Configuration for [`StreamingBoat`].
pub struct StreamConfig {
    /// The staleness contract the daemon enforces.
    pub staleness: StalenessBound,
    /// WAL knobs (directory defaults to `BoatConfig::spill_dir` /
    /// [`std::env::temp_dir`]; `queue_ops` is the producer backpressure
    /// bound).
    pub wal: WalConfig,
    /// Bound of the appender → daemon forward channel, in operations.
    pub channel_depth: usize,
    /// Maintenance triggers; `None` installs the default set derived from
    /// `staleness` — [`RecordCountTrigger`] at `max_records`,
    /// [`DeadlineTrigger`] at 4/5 of `max_age` (headroom so the maintain
    /// finishes inside the bound), and a [`DriftTrigger`] based at
    /// `max_records / 2`.
    pub triggers: Option<Vec<Box<dyn MaintainTrigger>>>,
    /// Optional provenance observer (see [`ProvenanceSink`]); `None`
    /// disables provenance tracking.
    pub provenance: Option<Box<dyn ProvenanceSink>>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            staleness: StalenessBound::default(),
            wal: WalConfig::default(),
            channel_depth: 64,
            triggers: None,
            provenance: None,
        }
    }
}

impl StreamConfig {
    fn build_triggers(&mut self) -> Vec<Box<dyn MaintainTrigger>> {
        if let Some(t) = self.triggers.take() {
            return t;
        }
        let mut triggers: Vec<Box<dyn MaintainTrigger>> = vec![Box::new(RecordCountTrigger {
            threshold: self.staleness.max_records.max(1),
        })];
        if let Some(age) = self.staleness.max_age {
            triggers.push(Box::new(DeadlineTrigger {
                period: age.mul_f64(0.8),
            }));
        }
        triggers.push(Box::new(DriftTrigger::new(
            (self.staleness.max_records / 2).max(1),
        )));
        triggers
    }
}

/// Cumulative daemon totals, returned by [`StreamingBoat::quiesce`] and
/// [`StreamingBoat::finish`].
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// WAL operations absorbed into the model.
    pub ops_absorbed: u64,
    /// Records inserted.
    pub records_inserted: u64,
    /// Records deleted.
    pub records_deleted: u64,
    /// Maintains run.
    pub maintains: u64,
    /// Total coarse nodes that failed verification across maintains.
    pub failed_nodes: u64,
    /// Total completion jobs across maintains.
    pub regrown_subtrees: u64,
    /// Staleness-bound violations observed (gated to zero by the bench).
    pub bound_violations: u64,
    /// First absorb/maintain error, if any (the daemon keeps running —
    /// a failed delete validates to a no-op).
    pub first_error: Option<String>,
}

/// What a quiesce point proves: the daemon's current exact tree plus its
/// totals, with every operation appended before the quiesce absorbed and
/// maintained.
#[derive(Debug, Clone)]
pub struct QuiesceReport {
    /// Serialized current tree ([`boat_tree::Tree::to_bytes`]) — the
    /// byte-identity currency of the `streaming_exactness` oracle.
    pub tree_bytes: Vec<u8>,
    /// Daemon totals at the quiesce point.
    pub stats: StreamStats,
    /// Chained epoch fingerprint from the [`ProvenanceSink`] after the
    /// quiesce maintain sealed its epoch (`None` without a sink).
    pub fingerprint: Option<Hash256>,
}

/// A cloneable producer handle: appends durable insert/delete chunks to
/// the stream. Blocks (backpressure) when the WAL or the daemon is behind.
#[derive(Clone)]
pub struct StreamWriter {
    appender: WalAppender,
}

impl StreamWriter {
    /// Append an insert chunk.
    pub fn insert(&self, records: Vec<Record>) -> Result<()> {
        self.appender.append(WalKind::Insert, records)
    }

    /// Append a delete chunk (matched by content against present records).
    pub fn delete(&self, records: Vec<Record>) -> Result<()> {
        self.appender.append(WalKind::Delete, records)
    }
}

type QuiesceMap = Arc<Mutex<HashMap<u64, SyncSender<QuiesceReport>>>>;

/// The streaming write-path daemon. See the module docs.
///
/// `H` is an opaque publication token carried for the caller —
/// `boat-serve` spawns with a `ModelHandle` wired into the model's publish
/// hook so [`StreamingBoat::handle`] exposes the exact handle readers
/// score against; the plain [`StreamingBoat::spawn`] uses `H = ()`.
pub struct StreamingBoat<I: Impurity + Clone + Send + 'static = Gini, H = ()> {
    wal: Option<Wal>,
    writer: StreamWriter,
    daemon: Option<JoinHandle<(BoatModel<I>, StreamStats)>>,
    quiesce: QuiesceMap,
    next_token: AtomicU64,
    publication: H,
    metrics: Registry,
}

impl<I: Impurity + Clone + Send + 'static> StreamingBoat<I, ()> {
    /// Spawn the daemon over `model` with no publication token.
    pub fn spawn(model: BoatModel<I>, config: StreamConfig) -> Result<Self> {
        Self::spawn_with_publication(model, config, ())
    }
}

impl<I: Impurity + Clone + Send + 'static, H> StreamingBoat<I, H> {
    /// Spawn the daemon over `model`, carrying `publication` (install any
    /// publish hook on `model` *before* calling — the daemon owns the
    /// model from here on).
    pub fn spawn_with_publication(
        model: BoatModel<I>,
        mut config: StreamConfig,
        publication: H,
    ) -> Result<Self> {
        let schema = model.schema().clone();
        let metrics = model.metrics().clone();
        let triggers = config.build_triggers();
        let provenance = config.provenance.take();
        if config.wal.dir.is_none() {
            config.wal.dir = model.config().spill_dir.clone();
        }
        let (fwd_tx, fwd_rx) = sync_channel::<WalEvent>(config.channel_depth.max(1));
        let wal = Wal::create(schema.clone(), config.wal, metrics.clone(), fwd_tx)?;
        let writer = StreamWriter {
            appender: wal.appender(),
        };
        let quiesce: QuiesceMap = Arc::new(Mutex::new(HashMap::new()));
        let daemon = {
            let daemon = Daemon {
                model,
                schema,
                bound: config.staleness,
                triggers,
                staleness: Staleness::default(),
                metrics: metrics.clone(),
                quiesce: quiesce.clone(),
                stats: StreamStats::default(),
                provenance,
            };
            std::thread::Builder::new()
                .name("boat-stream-daemon".into())
                .spawn(move || daemon.run(fwd_rx))
                .expect("spawn stream daemon")
        };
        Ok(StreamingBoat {
            wal: Some(wal),
            writer,
            daemon: Some(daemon),
            quiesce,
            next_token: AtomicU64::new(1),
            publication,
            metrics,
        })
    }

    /// The publication token supplied at spawn (for `boat-serve`: the
    /// `ModelHandle` whose epochs advance on every maintain).
    pub fn handle(&self) -> &H {
        &self.publication
    }

    /// A new producer handle.
    pub fn writer(&self) -> StreamWriter {
        self.writer.clone()
    }

    /// Append an insert chunk (convenience for [`StreamingBoat::writer`]).
    pub fn insert(&self, records: Vec<Record>) -> Result<()> {
        self.writer.insert(records)
    }

    /// Append a delete chunk.
    pub fn delete(&self, records: Vec<Record>) -> Result<()> {
        self.writer.delete(records)
    }

    /// The registry the daemon and WAL record into (the model's own).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Segment files the WAL has written so far.
    pub fn wal_segments(&self) -> Vec<PathBuf> {
        self.wal
            .as_ref()
            .map(Wal::segment_paths)
            .unwrap_or_default()
    }

    /// Quiesce: block until every operation appended *before* this call is
    /// durable, absorbed, and maintained, then return the daemon's exact
    /// tree bytes and totals. Producers may keep appending concurrently —
    /// the marker fixes a cut in the WAL order and the report reflects
    /// exactly the operations before the cut.
    pub fn quiesce(&self) -> Result<QuiesceReport> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        self.quiesce.lock().unwrap().insert(token, tx);
        self.writer.appender.marker(token)?;
        rx.recv().map_err(|_| {
            DataError::Io(std::io::Error::other("stream daemon exited during quiesce"))
        })
    }

    /// Shut down: flush + fsync the WAL, drain the daemon (which runs a
    /// final maintain), and return the maintained model with the totals.
    pub fn finish(mut self) -> Result<(BoatModel<I>, StreamStats)> {
        if let Some(wal) = self.wal.take() {
            wal.finish()?;
        }
        let handle = self.daemon.take().expect("finish called once");
        let (model, stats) = handle.join().expect("stream daemon panicked");
        Ok((model, stats))
    }
}

impl<I: Impurity + Clone + Send + 'static, H> Drop for StreamingBoat<I, H> {
    fn drop(&mut self) {
        // finish() already detached both; otherwise shut down in order
        // (WAL first so the forward channel closes, then join the daemon).
        drop(self.wal.take());
        if let Some(h) = self.daemon.take() {
            let _ = h.join();
        }
    }
}

struct Daemon<I: Impurity + Clone> {
    model: BoatModel<I>,
    schema: Arc<Schema>,
    bound: StalenessBound,
    triggers: Vec<Box<dyn MaintainTrigger>>,
    staleness: Staleness,
    metrics: Registry,
    quiesce: QuiesceMap,
    stats: StreamStats,
    provenance: Option<Box<dyn ProvenanceSink>>,
}

/// Histogram bounds for unmaintained-record counts (powers of two up to
/// 16M — staleness budgets, not latencies).
fn staleness_bounds() -> Vec<u64> {
    (0..=24).map(|i| 1u64 << i).collect()
}

impl<I: Impurity + Clone> Daemon<I> {
    fn run(mut self, rx: Receiver<WalEvent>) -> (BoatModel<I>, StreamStats) {
        loop {
            let wait = self
                .triggers
                .iter()
                .filter_map(|t| t.max_wait(&self.staleness))
                .min();
            let event = match wait {
                Some(d) => match rx.recv_timeout(d) {
                    Ok(ev) => Some(ev),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match rx.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => break,
                },
            };
            match event {
                Some(WalEvent::Op(op)) => self.absorb(op),
                Some(WalEvent::Marker(token)) => self.quiesce_point(token),
                None => {} // woke to re-check wall-clock triggers
            }
            if self.staleness.ops > 0 {
                let due = self
                    .triggers
                    .iter()
                    .find(|t| t.due(&self.staleness))
                    .map(|t| t.name());
                if let Some(name) = due {
                    self.maintain(name);
                }
            }
        }
        // WAL closed: drain the backlog is complete (channel disconnects
        // only after the appender forwarded everything), final maintain.
        if self.staleness.ops > 0 {
            self.maintain("shutdown");
        }
        (self.model, self.stats)
    }

    fn absorb(&mut self, op: WalOp) {
        // Enforce the record bound *before* absorbing: maintain now if
        // this chunk would push unmaintained records past the budget.
        let n = op.records.len() as u64;
        if self.bound.max_records > 0
            && self.staleness.ops > 0
            && self.staleness.records + n > self.bound.max_records
        {
            self.maintain("bound");
        }
        // After any bound maintain (which seals the previous epoch's
        // delta), so this op lands in the epoch that will publish it.
        if let Some(sink) = self.provenance.as_mut() {
            sink.absorb_op(&op);
        }
        let chunk = MemoryDataset::new(self.schema.clone(), op.records);
        let absorbed = match op.kind {
            WalKind::Insert => self.model.insert(&chunk),
            WalKind::Delete => self.model.delete(&chunk),
        };
        match absorbed {
            Ok(report) => {
                self.stats.records_inserted += report.inserted;
                self.stats.records_deleted += report.deleted;
            }
            Err(e) => {
                // Deletes of absent records validate to no-ops inside the
                // model; the tree stays exact for the records that did
                // apply, so the daemon keeps going and surfaces the error.
                self.metrics.counter("boat.stream.ingest_errors").inc();
                self.stats.first_error.get_or_insert_with(|| e.to_string());
            }
        }
        self.stats.ops_absorbed += 1;
        self.staleness.records += n;
        self.staleness.ops += 1;
        self.staleness.oldest.get_or_insert_with(Instant::now);
        self.metrics
            .gauge("boat.stream.staleness_records")
            .set(self.staleness.records);
        let forwarded = self.metrics.counter("data.wal.forwarded_ops").get();
        self.metrics
            .gauge("boat.stream.ingest_depth")
            .set(forwarded.saturating_sub(self.stats.ops_absorbed));
        self.metrics
            .gauge("boat.stream.wal_bytes")
            .set(self.metrics.counter("data.wal.bytes_written").get());
    }

    fn quiesce_point(&mut self, token: u64) {
        if self.staleness.ops > 0 {
            self.maintain("quiesce");
        }
        let tree_bytes = match self.model.tree() {
            Ok(t) => t.to_bytes(),
            Err(e) => {
                self.stats.first_error.get_or_insert_with(|| e.to_string());
                Vec::new()
            }
        };
        let fingerprint = self.provenance.as_ref().and_then(|s| s.fingerprint());
        let reply = self.quiesce.lock().unwrap().remove(&token);
        if let Some(tx) = reply {
            let _ = tx.send(QuiesceReport {
                tree_bytes,
                stats: self.stats.clone(),
                fingerprint,
            });
        }
    }

    fn maintain(&mut self, why: &str) {
        let age = self.staleness.age();
        // The contract check: at the moment maintenance starts, were we
        // already past the bound? (The pre-absorb check makes record
        // violations impossible unless one chunk exceeds the whole budget.)
        let violated = (self.bound.max_records > 0
            && self.staleness.records > self.bound.max_records)
            || self.bound.max_age.is_some_and(|max| age > max);
        if violated {
            self.stats.bound_violations += 1;
            self.metrics.counter("boat.stream.bound_violations").inc();
        }
        self.metrics
            .histogram_with("boat.stream.staleness_records_hist", &staleness_bounds())
            .record(self.staleness.records);
        self.metrics
            .histogram("boat.stream.staleness_age_ns")
            .record(age.as_nanos() as u64);
        let t0 = Instant::now();
        match self.model.maintain() {
            Ok(report) => {
                self.stats.maintains += 1;
                self.stats.failed_nodes += report.failed_nodes;
                self.stats.regrown_subtrees += report.regrown_subtrees;
                for t in &mut self.triggers {
                    t.observe(&report);
                }
            }
            Err(e) => {
                self.stats.first_error.get_or_insert_with(|| e.to_string());
            }
        }
        self.metrics
            .histogram("boat.stream.maintain_latency_ns")
            .record(t0.elapsed().as_nanos() as u64);
        self.metrics.counter("boat.stream.trigger_fires").inc();
        self.metrics
            .counter(&format!("boat.stream.trigger_fires.{why}"))
            .inc();
        self.staleness.reset();
        self.metrics.gauge("boat.stream.staleness_records").set(0);
    }
}

/// Crash recovery: replay the durable prefix of `segments` into `model`
/// (inserts and deletes in WAL order) and run one maintain. After this the
/// model is byte-identical to what the daemon had absorbed and published
/// for those operations before the crash — the WAL forwards operations
/// only after fsync, so the durable prefix is a superset of everything
/// ever absorbed.
pub fn replay_wal_into<I: Impurity + Clone>(
    model: &mut BoatModel<I>,
    segments: &[PathBuf],
) -> Result<MaintainReport> {
    let schema = model.schema().clone();
    let metrics = model.metrics().clone();
    let ops = boat_data::wal::replay_segments(segments, &schema, &metrics)?;
    for op in ops {
        let chunk = MemoryDataset::new(schema.clone(), op.records);
        match op.kind {
            WalKind::Insert => model.insert(&chunk)?,
            WalKind::Delete => model.delete(&chunk)?,
        };
    }
    model.maintain()
}
