//! BOAT configuration.

use boat_tree::GrowthLimits;

/// How discretization buckets are laid out for the lower-bound checks
/// (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiscretizeStrategy {
    /// Equi-depth buckets: boundaries at sample quantiles. Simple and
    /// robust; an ablation baseline.
    EquiDepth {
        /// Number of buckets.
        buckets: usize,
    },
    /// The paper's adaptive scheme: walk the sample's attribute values in
    /// order and close a bucket as soon as its corner lower bound falls
    /// within `slack` of the node's estimated minimum impurity — fine
    /// buckets where the impurity curve flirts with the minimum, coarse
    /// buckets elsewhere.
    Adaptive {
        /// Upper limit on buckets per (node, attribute).
        max_buckets: usize,
        /// Relative slack over the estimated minimum impurity below which a
        /// bucket is considered "too close to the minimum" and closed.
        slack: f64,
    },
}

impl Default for DiscretizeStrategy {
    fn default() -> Self {
        // 256 buckets ≈ 4 KiB per (node, attribute, 2 classes): still tiny
        // next to an AVC-set, and fine enough that flat impurity valleys
        // (e.g. the paper's Function 7) do not trip false alarms.
        DiscretizeStrategy::Adaptive {
            max_buckets: 256,
            slack: 0.20,
        }
    }
}

/// How the bootstrap trees must agree for a coarse criterion to be kept
/// (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgreementRule {
    /// The paper's rule: all `b` bootstrap trees must agree on the
    /// splitting attribute (and, for categorical attributes, the exact
    /// subset). Appropriate when resamples are large (the paper used
    /// 50 000-tuple resamples).
    Unanimous,
    /// Keep the criterion when at least `quorum` (a fraction of the trees
    /// still under consideration) share the modal choice; dissenting trees
    /// are dropped from the subtree. Strictly safe — the cleanup-phase
    /// verification, not the agreement rule, is what guarantees the exact
    /// tree — and far more robust at small sample sizes, where even a
    /// clearly-best split flips in a few percent of resamples.
    Majority {
        /// Required fraction of agreeing trees in `(0.5, 1.0]`.
        quorum: f64,
    },
}

impl Default for AgreementRule {
    fn default() -> Self {
        AgreementRule::Majority { quorum: 0.6 }
    }
}

/// Which engine grows the in-memory (bootstrap and §3.5) trees.
///
/// Both engines produce **bit-identical** trees — the columnar engine's
/// determinism contract (see `boat_tree::columnar`) is asserted end to end
/// by the differential oracle — so this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleEngine {
    /// Columnar sample-phase engine (default): transpose the sample once
    /// into dense per-attribute columns with presorted numeric indices,
    /// draw bootstrap *multiplicity vectors* instead of cloned resamples,
    /// and grow each tree with rank-preserving partitions (no per-node
    /// re-sorting, no record clones).
    #[default]
    Columnar,
    /// Row-oriented legacy path: materialize each bootstrap resample as a
    /// `Vec<Record>` and grow with the reference in-memory builder.
    Rows,
}

/// Tuning parameters of the BOAT algorithm (paper §3, defaults mirror the
/// §5.1 experimental setup at a configurable scale).
#[derive(Debug, Clone)]
pub struct BoatConfig {
    /// Size of the in-memory sample `D'` drawn in the sampling scan.
    /// The paper uses 200 000 of 2–10 M tuples.
    pub sample_size: usize,
    /// Number of bootstrap repetitions `b` (paper: 20).
    pub bootstrap_reps: usize,
    /// Size of each bootstrap resample (paper: 50 000 = ¼ of the sample).
    pub bootstrap_sample_size: usize,
    /// Fraction of the `b` bootstrap split points trimmed from *each* end
    /// before taking the confidence interval (0.0 = the full min..max
    /// range). Wider intervals park more tuples but fail less often.
    pub confidence_trim: f64,
    /// Node families of at most this many tuples are finished with the
    /// in-memory builder instead of BOAT machinery (§3.5).
    pub in_memory_threshold: u64,
    /// Per-node in-memory budget (records) for parked-tuple buffers before
    /// they spill to temporary files.
    pub spill_budget: usize,
    /// Minimum interval padding, in *distinct sample values* per side, on
    /// top of the impurity-aware shelf extension (see `work::widen_interval`).
    /// One value covers the sample-gap the full database's optimum usually
    /// sits in.
    pub interval_pad_values: usize,
    /// Discretization strategy for the lower-bound checks.
    pub discretize: DiscretizeStrategy,
    /// Bootstrap agreement rule.
    pub agreement: AgreementRule,
    /// Stopping rules, shared verbatim with the reference builder.
    pub limits: GrowthLimits,
    /// Maximum recursion depth for failed/unfinished subtrees before
    /// falling back to the in-memory builder unconditionally.
    pub max_recursion: u32,
    /// Seed for sampling and bootstrapping.
    pub seed: u64,
    /// Worker threads for the cleanup scan. `0` means "use the machine's
    /// available parallelism"; `1` runs the serial scan in-place. The
    /// output is bit-identical at every thread count (the shard merge is
    /// exact), so this is purely a performance knob.
    pub cleanup_threads: usize,
    /// Records per chunk handed to a cleanup worker. Large enough to
    /// amortize channel traffic, small enough to keep all workers busy.
    pub cleanup_chunk_size: usize,
    /// Engine for bootstrap tree construction and §3.5 in-memory builds.
    /// Bit-identical output either way; [`SampleEngine::Columnar`] is the
    /// fast default, [`SampleEngine::Rows`] the legacy reference path.
    pub sample_engine: SampleEngine,
    /// Shards for the partitioned fit (`Boat::fit_sharded`): the source is
    /// split into this many chunk-aligned row ranges, each scanned by its
    /// own reader/router thread pair with statistics merged at the
    /// coordinator. `0` means "use the machine's available parallelism";
    /// `1` is an unsharded scan. The final model is byte-identical at every
    /// shard count (enforced by the partitioned differential oracle), so
    /// this is purely a performance knob.
    pub fit_shards: usize,
    /// Chunks each shard's reader thread may decode ahead of its router
    /// (bounded-channel capacity). `2` is classic double buffering; must be
    /// at least 1.
    pub prefetch_depth: usize,
    /// Directory for spill and rebuild temporary files. `None` (default)
    /// uses [`std::env::temp_dir`]. The first spill into a directory also
    /// sweeps temp files orphaned there by dead processes.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Fraction of a node's rows the columnar engine's confidence-gated
    /// split search sub-samples as exact boundary candidates before corner
    /// bounds (Lemma 3.1) prune the gaps between them (see
    /// `boat_tree::subsample`). `0.0` disables the gate; any enabled value
    /// yields **bit-identical trees** (the gate only prunes candidates it
    /// *proves* lose, and falls back to the exact sweep otherwise), so this
    /// is purely a performance knob. Only the columnar engine consults it.
    pub split_subsample: f64,
    /// Nodes with fewer member rows than this skip the subsampled search
    /// and run the exact sweep directly (small nodes are cheap; the gate's
    /// counting pass would be pure overhead).
    pub split_subsample_min_node: usize,
}

impl Default for BoatConfig {
    fn default() -> Self {
        BoatConfig {
            sample_size: 20_000,
            bootstrap_reps: 20,
            bootstrap_sample_size: 5_000,
            confidence_trim: 0.0,
            in_memory_threshold: 10_000,
            spill_budget: 4_096,
            interval_pad_values: 1,
            discretize: DiscretizeStrategy::default(),
            agreement: AgreementRule::default(),
            limits: GrowthLimits::default(),
            max_recursion: 8,
            seed: 0xB0A7,
            cleanup_threads: 0,
            cleanup_chunk_size: 8_192,
            sample_engine: SampleEngine::default(),
            fit_shards: 1,
            prefetch_depth: 2,
            spill_dir: None,
            split_subsample: 1.0 / 16.0,
            split_subsample_min_node: 256,
        }
    }
}

impl BoatConfig {
    /// Scale the sampling parameters the way the paper's §5.1 setup relates
    /// to its dataset sizes: an in-memory sample of ~5 % of `n` (the paper
    /// used 200 k of up to 10 M — as much as memory allowed), 20 bootstrap
    /// repetitions of a quarter-sample, and the in-memory switch at 15 % of
    /// `n`. Small datasets get floors that keep the bootstrap stable.
    pub fn scaled_for(n: u64) -> Self {
        // A tenth of the data (capped at 4 Mi records). Proportionally more
        // than the paper's 2 % — at laptop scale, *absolute* per-node
        // sample counts are what keep bootstrap agreement and verification
        // failure rates at the paper's levels, and the paper's 200 k sample
        // had far larger absolute counts at every node.
        let sample = ((n / 10).max(4_000) as usize).min(1 << 22);
        BoatConfig {
            sample_size: sample,
            bootstrap_sample_size: (sample / 4).max(2_000),
            in_memory_threshold: (n * 3 / 20).max(1_000),
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style limits override.
    pub fn with_limits(mut self, limits: GrowthLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Builder-style cleanup-thread override (`0` = auto-detect).
    pub fn with_cleanup_threads(mut self, threads: usize) -> Self {
        self.cleanup_threads = threads;
        self
    }

    /// Builder-style sample-engine override.
    pub fn with_sample_engine(mut self, engine: SampleEngine) -> Self {
        self.sample_engine = engine;
        self
    }

    /// Builder-style shard-count override (`0` = auto-detect).
    pub fn with_fit_shards(mut self, shards: usize) -> Self {
        self.fit_shards = shards;
        self
    }

    /// Builder-style prefetch-depth override.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Builder-style spill-directory override.
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder-style subsample-fraction override (`0.0` = gate off).
    pub fn with_split_subsample(mut self, fraction: f64) -> Self {
        self.split_subsample = fraction;
        self
    }

    /// Builder-style subsample minimum-node-size override.
    pub fn with_split_subsample_min_node(mut self, min_node: usize) -> Self {
        self.split_subsample_min_node = min_node;
        self
    }

    /// The subsample gate parameters this config denotes, or `None` when
    /// the gate is disabled.
    pub fn subsample_params(&self) -> Option<boat_tree::SubsampleParams> {
        (self.split_subsample > 0.0).then_some(boat_tree::SubsampleParams {
            fraction: self.split_subsample,
            min_node: self.split_subsample_min_node,
        })
    }

    /// The shard count a partitioned fit will actually use: the configured
    /// `fit_shards`, with `0` resolved to the machine's available
    /// parallelism (and `1` if even that is unknown).
    pub fn effective_fit_shards(&self) -> usize {
        match self.fit_shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            s => s,
        }
    }

    /// The worker count the cleanup scan will actually use: the configured
    /// `cleanup_threads`, with `0` resolved to the machine's available
    /// parallelism (and `1` if even that is unknown).
    pub fn effective_cleanup_threads(&self) -> usize {
        match self.cleanup_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.sample_size == 0 {
            return Err("sample_size must be positive".into());
        }
        if self.bootstrap_reps < 2 {
            return Err("bootstrap_reps must be at least 2".into());
        }
        if self.bootstrap_sample_size == 0 {
            return Err("bootstrap_sample_size must be positive".into());
        }
        if !(0.0..0.5).contains(&self.confidence_trim) {
            return Err("confidence_trim must be in [0, 0.5)".into());
        }
        if let AgreementRule::Majority { quorum } = self.agreement {
            if !(quorum > 0.5 && quorum <= 1.0) {
                return Err("Majority quorum must be in (0.5, 1.0]".into());
            }
        }
        match self.discretize {
            DiscretizeStrategy::EquiDepth { buckets: 0 } => {
                return Err("EquiDepth needs at least one bucket".into())
            }
            DiscretizeStrategy::EquiDepth { .. } => {}
            DiscretizeStrategy::Adaptive { max_buckets, slack } => {
                if max_buckets == 0 {
                    return Err("Adaptive needs max_buckets > 0".into());
                }
                if !slack.is_finite() || slack < 0.0 {
                    return Err("Adaptive slack must be finite and non-negative".into());
                }
            }
        }
        if self.cleanup_chunk_size == 0 {
            return Err("cleanup_chunk_size must be positive".into());
        }
        if self.prefetch_depth == 0 {
            return Err("prefetch_depth must be at least 1".into());
        }
        if !self.split_subsample.is_finite() || !(0.0..=1.0).contains(&self.split_subsample) {
            return Err("split_subsample must be a finite fraction in [0, 1]".into());
        }
        if self.split_subsample > 0.0 && self.split_subsample_min_node < 2 {
            return Err("split_subsample_min_node must be at least 2 when the gate is on".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        BoatConfig::default().validate().unwrap();
    }

    #[test]
    fn scaled_parameters_track_n() {
        let c = BoatConfig::scaled_for(1_000_000);
        assert_eq!(c.sample_size, 100_000);
        assert_eq!(c.bootstrap_sample_size, 25_000);
        assert_eq!(c.in_memory_threshold, 150_000);
        c.validate().unwrap();
        let small = BoatConfig::scaled_for(100);
        assert_eq!(small.sample_size, 4_000);
        small.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonsense() {
        let cases: Vec<BoatConfig> = vec![
            BoatConfig {
                sample_size: 0,
                ..Default::default()
            },
            BoatConfig {
                bootstrap_reps: 1,
                ..Default::default()
            },
            BoatConfig {
                confidence_trim: 0.5,
                ..Default::default()
            },
            BoatConfig {
                discretize: DiscretizeStrategy::EquiDepth { buckets: 0 },
                ..Default::default()
            },
            BoatConfig {
                discretize: DiscretizeStrategy::Adaptive {
                    max_buckets: 8,
                    slack: -1.0,
                },
                ..Default::default()
            },
            BoatConfig {
                agreement: AgreementRule::Majority { quorum: 0.5 },
                ..Default::default()
            },
            BoatConfig {
                cleanup_chunk_size: 0,
                ..Default::default()
            },
            BoatConfig {
                prefetch_depth: 0,
                ..Default::default()
            },
            BoatConfig {
                split_subsample: -0.1,
                ..Default::default()
            },
            BoatConfig {
                split_subsample: f64::NAN,
                ..Default::default()
            },
            BoatConfig {
                split_subsample: 1.5,
                ..Default::default()
            },
            BoatConfig {
                split_subsample_min_node: 1,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
        let full_quorum = BoatConfig {
            agreement: AgreementRule::Majority { quorum: 1.0 },
            ..Default::default()
        };
        assert!(full_quorum.validate().is_ok());
    }

    #[test]
    fn sample_engine_defaults_to_columnar() {
        assert_eq!(BoatConfig::default().sample_engine, SampleEngine::Columnar);
        let legacy = BoatConfig::default().with_sample_engine(SampleEngine::Rows);
        assert_eq!(legacy.sample_engine, SampleEngine::Rows);
        legacy.validate().unwrap();
    }

    #[test]
    fn partitioned_fit_knobs_default_and_build() {
        let c = BoatConfig::default();
        assert_eq!(c.fit_shards, 1);
        assert_eq!(c.prefetch_depth, 2);
        assert!(c.spill_dir.is_none());
        let c = BoatConfig::default()
            .with_fit_shards(0)
            .with_prefetch_depth(3)
            .with_spill_dir("/tmp/boat-spills");
        assert!(c.effective_fit_shards() >= 1);
        assert_eq!(c.prefetch_depth, 3);
        assert_eq!(
            c.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/boat-spills"))
        );
        c.validate().unwrap();
    }

    #[test]
    fn subsample_gate_is_on_by_default_and_can_be_disabled() {
        let c = BoatConfig::default();
        assert_eq!(c.split_subsample, 1.0 / 16.0);
        assert_eq!(c.split_subsample_min_node, 256);
        let params = c.subsample_params().expect("gate on by default");
        assert_eq!(params.fraction, 1.0 / 16.0);
        assert_eq!(params.min_node, 256);
        let off = BoatConfig::default().with_split_subsample(0.0);
        assert!(off.subsample_params().is_none());
        off.validate().unwrap();
        // min_node is unchecked while the gate is off.
        let off_tiny = BoatConfig::default()
            .with_split_subsample(0.0)
            .with_split_subsample_min_node(0);
        off_tiny.validate().unwrap();
        let custom = BoatConfig::default()
            .with_split_subsample(0.25)
            .with_split_subsample_min_node(64);
        custom.validate().unwrap();
        assert_eq!(custom.subsample_params().unwrap().min_node, 64);
    }

    #[test]
    fn effective_cleanup_threads_resolves_auto() {
        let auto = BoatConfig::default();
        assert_eq!(auto.cleanup_threads, 0, "default is auto-detect");
        assert!(auto.effective_cleanup_threads() >= 1);
        let fixed = BoatConfig::default().with_cleanup_threads(4);
        assert_eq!(fixed.effective_cleanup_threads(), 4);
    }
}
