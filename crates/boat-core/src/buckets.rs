//! Discretizations and bucket counts for the lower-bound checks (§3.4).
//!
//! During the cleanup scan, BOAT cannot afford full AVC-sets for every
//! numeric attribute at every node (that would be RainForest). Instead it
//! keeps, per (node, numeric attribute), class counts over a small number of
//! *buckets* whose boundaries were chosen from the in-memory sample. The
//! cumulative counts at bucket boundaries are exactly the paper's *stamp
//! points*, and Lemma 3.1 lower-bounds the impurity of every candidate
//! split inside a bucket from the two boundary stamp points.
//!
//! Bucket layout matters only for the *false-alarm rate* (a too-coarse
//! bucket yields a uselessly low bound and forces an unnecessary rebuild),
//! never for correctness.

use crate::config::DiscretizeStrategy;
use crate::verify::corner_lower_bound;
use boat_tree::{Impurity, NumAvc};

/// Class counts over a fixed discretization of one numeric attribute.
///
/// `boundaries = [b_1 < … < b_m]` induce `m + 1` buckets
/// `(-∞, b_1], (b_1, b_2], …, (b_m, +∞)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSet {
    boundaries: Vec<f64>,
    counts: Vec<u64>, // (boundaries.len() + 1) × n_classes, row-major
    // Exact per-class counts of tuples whose value equals a boundary value.
    // Boundary values concentrate mass (they are chosen from observed
    // sample values), and knowing their exact stamp points turns the
    // corner bound from vacuous to tight on integer-like attributes.
    at_boundary: Vec<u64>, // boundaries.len() × n_classes
    n_classes: usize,
}

impl BucketSet {
    /// Create a bucket set; `boundaries` is sorted and deduplicated.
    pub fn new(mut boundaries: Vec<f64>, n_classes: usize) -> Self {
        boundaries.retain(|b| b.is_finite());
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup_by(|a, b| a.to_bits() == b.to_bits());
        let n_buckets = boundaries.len() + 1;
        let n_bounds = boundaries.len();
        BucketSet {
            boundaries,
            counts: vec![0; n_buckets * n_classes],
            at_boundary: vec![0; n_bounds * n_classes],
            n_classes,
        }
    }

    /// Number of buckets (`boundaries + 1`).
    pub fn n_buckets(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary values.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Index of the bucket holding `v`.
    #[inline]
    pub fn bucket_of(&self, v: f64) -> usize {
        self.boundaries.partition_point(|&b| b < v)
    }

    /// Count one tuple.
    #[inline]
    pub fn add(&mut self, v: f64, label: u16) {
        let b = self.bucket_of(v);
        self.counts[b * self.n_classes + label as usize] += 1;
        if b < self.boundaries.len() && self.boundaries[b] == v {
            self.at_boundary[b * self.n_classes + label as usize] += 1;
        }
    }

    /// Whether [`BucketSet::sub`] of `(v, label)` can proceed without
    /// underflowing a cell: the bucket count, and the exact boundary count
    /// when `v` sits on a boundary, must both be positive. Incremental
    /// deletions check this along the whole routing path *before* mutating
    /// anything (`WorkTree::validate_delete`).
    #[inline]
    pub fn can_sub(&self, v: f64, label: u16) -> bool {
        let b = self.bucket_of(v);
        if self.counts[b * self.n_classes + label as usize] == 0 {
            return false;
        }
        if b < self.boundaries.len()
            && self.boundaries[b] == v
            && self.at_boundary[b * self.n_classes + label as usize] == 0
        {
            return false;
        }
        true
    }

    /// Remove one previously-counted tuple.
    #[inline]
    pub fn sub(&mut self, v: f64, label: u16) {
        let b = self.bucket_of(v);
        let cell = &mut self.counts[b * self.n_classes + label as usize];
        debug_assert!(*cell > 0, "BucketSet::sub below zero");
        *cell -= 1;
        if b < self.boundaries.len() && self.boundaries[b] == v {
            let cell = &mut self.at_boundary[b * self.n_classes + label as usize];
            debug_assert!(*cell > 0, "BucketSet::sub boundary count below zero");
            *cell -= 1;
        }
    }

    /// An empty bucket set with the same boundaries and class count as
    /// `self`. Shard accumulators in the parallel cleanup scan start from
    /// this and are later combined with [`BucketSet::merge_from`].
    pub fn zeroed_like(&self) -> Self {
        BucketSet {
            boundaries: self.boundaries.clone(),
            counts: vec![0; self.counts.len()],
            at_boundary: vec![0; self.at_boundary.len()],
            n_classes: self.n_classes,
        }
    }

    /// Add every cell of `other` (bucket counts and exact boundary counts)
    /// into `self`. Both sets must share identical boundaries.
    ///
    /// Counts are `u64` sums, so merging is exactly associative and
    /// commutative: any merge order over a set of shards produces
    /// bit-identical counts to a single sequential accumulation.
    pub fn merge_from(&mut self, other: &BucketSet) {
        debug_assert_eq!(self.n_classes, other.n_classes, "BucketSet shape mismatch");
        debug_assert!(
            self.boundaries.len() == other.boundaries.len()
                && self
                    .boundaries
                    .iter()
                    .zip(&other.boundaries)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "BucketSet boundary mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.at_boundary.iter_mut().zip(&other.at_boundary) {
            *a += b;
        }
    }

    /// Per-class counts of bucket `b`.
    pub fn bucket_counts(&self, b: usize) -> &[u64] {
        &self.counts[b * self.n_classes..(b + 1) * self.n_classes]
    }

    /// Per-class totals over all buckets.
    pub fn totals(&self) -> Vec<u64> {
        let mut t = vec![0u64; self.n_classes];
        for b in 0..self.n_buckets() {
            for (ti, ci) in t.iter_mut().zip(self.bucket_counts(b)) {
                *ti += ci;
            }
        }
        t
    }

    /// Stamp points: cumulative per-class counts *after* each bucket.
    /// `stamps()[j]` is the stamp point of boundary `b_{j+1}` (for the last
    /// bucket it equals the totals). The implicit stamp before bucket 0 is
    /// the zero vector.
    pub fn stamps(&self) -> Vec<Vec<u64>> {
        let mut out = Vec::with_capacity(self.n_buckets());
        let mut cum = vec![0u64; self.n_classes];
        for b in 0..self.n_buckets() {
            for (c, x) in cum.iter_mut().zip(self.bucket_counts(b)) {
                *c += x;
            }
            out.push(cum.clone());
        }
        out
    }

    /// Exact per-class counts of tuples whose value equals boundary `j`.
    pub fn boundary_counts(&self, j: usize) -> &[u64] {
        &self.at_boundary[j * self.n_classes..(j + 1) * self.n_classes]
    }

    /// The two verification parts for bucket `b` (paper §3.4, refined):
    ///
    /// * `exact_upper` — the **exact** stamp point of the candidate "split
    ///   at this bucket's upper boundary value" (cumulative counts through
    ///   the bucket). `None` for the last bucket (no upper boundary).
    /// * `interior_bound` — Lemma 3.1 corner lower bound for candidates
    ///   *strictly below* the upper boundary (the boundary value's own mass
    ///   excluded, which is what keeps the bound tight when mass
    ///   concentrates on boundary values). `None` when the interior is
    ///   provably empty.
    pub fn bucket_bound_parts(
        &self,
        b: usize,
        totals: &[u64],
        imp: &dyn Impurity,
    ) -> (Option<Vec<u64>>, Option<f64>) {
        self.bucket_bound_parts_with(&self.stamps(), b, totals, imp)
    }

    /// [`BucketSet::bucket_bound_parts`] with the cumulative stamp points
    /// precomputed once by the caller — the verification pass checks every
    /// bucket of an attribute, and recomputing stamps per bucket would be
    /// quadratic in the bucket count.
    pub fn bucket_bound_parts_with(
        &self,
        stamps: &[Vec<u64>],
        b: usize,
        totals: &[u64],
        imp: &dyn Impurity,
    ) -> (Option<Vec<u64>>, Option<f64>) {
        let lo = if b == 0 {
            vec![0u64; self.n_classes]
        } else {
            stamps[b - 1].clone()
        };
        let mut hi = stamps[b].clone();
        let exact_upper = (b < self.boundaries.len()).then(|| hi.clone());
        if b < self.boundaries.len() {
            for (h, x) in hi.iter_mut().zip(self.boundary_counts(b)) {
                *h -= x;
            }
        }
        let interior = (hi != lo).then(|| corner_lower_bound(imp, &lo, &hi, totals));
        (exact_upper, interior)
    }

    /// Lemma 3.1 lower bound on the impurity of any split whose point lies
    /// in bucket `b`, given the node totals `N^i` (the coarse combined
    /// form: minimum over the exact-boundary candidate and the interior
    /// bound).
    pub fn bucket_bound(&self, b: usize, totals: &[u64], imp: &dyn Impurity) -> f64 {
        let (exact_upper, interior) = self.bucket_bound_parts(b, totals, imp);
        let mut bound = interior.unwrap_or(f64::INFINITY);
        if let Some(stamp) = exact_upper {
            let right: Vec<u64> = totals.iter().zip(&stamp).map(|(t, s)| t - s).collect();
            bound = bound.min(boat_tree::split_impurity(imp, &stamp, &right));
        }
        if bound == f64::INFINITY {
            // Bucket with no interior and no upper boundary: no candidates.
            bound = f64::MAX;
        }
        bound
    }
}

/// Build bucket boundaries for one numeric attribute at one node, from the
/// node's *sample* AVC-set.
///
/// * `est_min` — estimated minimum impurity at the node (from the sample);
///   the adaptive strategy places fine buckets where candidate splits come
///   within `slack` of it (the paper's §3.4 scheme: tight bounds exactly
///   where false alarms would otherwise fire).
/// * `must_include` — boundary values that have to be present (BOAT passes
///   the confidence-interval edges of the splitting attribute).
pub fn build_boundaries(
    sample_avc: &NumAvc,
    sample_totals: &[u64],
    imp: &dyn Impurity,
    est_min: f64,
    strategy: DiscretizeStrategy,
    must_include: &[f64],
) -> Vec<f64> {
    let distinct: Vec<(f64, &[u64])> = sample_avc.iter().collect();
    let mut boundaries = match strategy {
        DiscretizeStrategy::EquiDepth { buckets } => equi_depth(&distinct, buckets),
        DiscretizeStrategy::Adaptive { max_buckets, slack } => {
            let base = equi_depth(&distinct, max_buckets.max(1));
            // Competitive sample values get their own boundaries, far
            // beyond the base budget: with per-boundary exact counts, a
            // per-value bucket yields an (almost) exact check, which is
            // the only thing that prevents false alarms in wide, flat
            // impurity valleys (Function 7's loan attribute — where the
            // whole axis competes within ~1e-3, so effectively every
            // sample value in the shelf needs its own boundary). The paper
            // capped the total bucket count for 1999-era memory; a modern
            // machine affords ~64x the base budget for the hot region
            // (~10^4 boundaries ≈ 400 KiB per node-attribute).
            let hot = hot_values(
                &distinct,
                sample_totals,
                imp,
                est_min * (1.0 + slack) + 1e-12,
                max_buckets * 64,
            );
            let mut all = base;
            all.extend(hot);
            all
        }
    };
    boundaries.extend_from_slice(must_include);
    boundaries.retain(|b| b.is_finite());
    boundaries.sort_by(f64::total_cmp);
    boundaries.dedup_by(|a, b| a.to_bits() == b.to_bits());
    boundaries
}

/// Equi-depth boundaries: split the (weighted) sample values into `buckets`
/// roughly equal-mass runs.
fn equi_depth(distinct: &[(f64, &[u64])], buckets: usize) -> Vec<f64> {
    if distinct.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let total: u64 = distinct.iter().map(|(_, c)| c.iter().sum::<u64>()).sum();
    if total == 0 {
        return Vec::new();
    }
    let per = (total as f64 / buckets as f64).max(1.0);
    let mut out = Vec::new();
    let mut cum = 0u64;
    let mut next_target = per;
    for &(v, counts) in distinct {
        cum += counts.iter().sum::<u64>();
        if cum as f64 >= next_target {
            out.push(v);
            while cum as f64 >= next_target {
                next_target += per;
            }
        }
    }
    // Keep the boundary at the maximum sample value: without it, the last
    // bucket's only candidate is the (invalid) split at the maximum, yet
    // its interior bound would still be checked — a guaranteed false alarm
    // on integer-valued attributes. With it, the max value's mass is
    // tracked exactly and the residual bucket beyond it is near-empty.
    out
}

/// Sample values whose own split impurity is within the threshold of the
/// node minimum — each becomes its own boundary (plus its predecessor), so
/// the dangerous region gets near-exact bounds. Capped at `cap` values,
/// keeping the most competitive.
fn hot_values(
    distinct: &[(f64, &[u64])],
    totals: &[u64],
    imp: &dyn Impurity,
    threshold: f64,
    cap: usize,
) -> Vec<f64> {
    let n: u64 = totals.iter().sum();
    let mut cum = vec![0u64; totals.len()];
    let mut scored: Vec<(f64, f64, Option<f64>)> = Vec::new(); // (imp, v, prev)
    let mut prev: Option<f64> = None;
    for &(v, counts) in distinct {
        for (c, x) in cum.iter_mut().zip(counts) {
            *c += x;
        }
        let left_n: u64 = cum.iter().sum();
        if left_n > 0 && left_n < n {
            let right: Vec<u64> = totals.iter().zip(&cum).map(|(t, c)| t - c).collect();
            let val = boat_tree::split_impurity(imp, &cum, &right);
            if val <= threshold {
                scored.push((val, v, prev));
            }
        }
        prev = Some(v);
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    scored.truncate(cap);
    let mut out = Vec::with_capacity(scored.len() * 2);
    for (_, v, p) in scored {
        out.push(v);
        if let Some(p) = p {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_tree::Gini;

    fn avc_from(pairs: &[(f64, u16)]) -> (NumAvc, Vec<u64>) {
        let mut avc = NumAvc::new(2);
        let mut totals = vec![0u64; 2];
        for &(v, l) in pairs {
            avc.add(v, l);
            totals[l as usize] += 1;
        }
        (avc, totals)
    }

    #[test]
    fn bucket_of_uses_half_open_intervals() {
        let b = BucketSet::new(vec![10.0, 20.0], 2);
        assert_eq!(b.n_buckets(), 3);
        assert_eq!(b.bucket_of(5.0), 0);
        assert_eq!(b.bucket_of(10.0), 0); // (-inf, 10]
        assert_eq!(b.bucket_of(10.5), 1);
        assert_eq!(b.bucket_of(20.0), 1); // (10, 20]
        assert_eq!(b.bucket_of(25.0), 2);
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut b = BucketSet::new(vec![0.0], 2);
        b.add(-1.0, 0);
        b.add(1.0, 1);
        b.add(1.0, 1);
        assert_eq!(b.bucket_counts(0), &[1, 0]);
        assert_eq!(b.bucket_counts(1), &[0, 2]);
        b.sub(1.0, 1);
        assert_eq!(b.bucket_counts(1), &[0, 1]);
        assert_eq!(b.totals(), vec![1, 1]);
    }

    #[test]
    fn stamps_are_cumulative() {
        let mut b = BucketSet::new(vec![10.0, 20.0], 2);
        for (v, l) in [(5.0, 0), (10.0, 0), (15.0, 1), (25.0, 0), (25.0, 1)] {
            b.add(v, l);
        }
        assert_eq!(b.stamps(), vec![vec![2, 0], vec![2, 1], vec![3, 2]]);
    }

    #[test]
    fn boundaries_are_sorted_and_deduped() {
        let b = BucketSet::new(vec![3.0, 1.0, 3.0, 2.0, f64::INFINITY], 2);
        assert_eq!(b.boundaries(), &[1.0, 2.0, 3.0]);
    }

    /// The bucket bound must never exceed the true minimum impurity over
    /// split points falling inside that bucket.
    #[test]
    fn bucket_bound_is_a_true_lower_bound() {
        let pairs: Vec<(f64, u16)> = (0..100).map(|i| (i as f64, u16::from(i % 7 < 3))).collect();
        let (avc, totals) = avc_from(&pairs);
        let mut bset = BucketSet::new(vec![20.0, 55.0, 80.0], 2);
        for &(v, l) in &pairs {
            bset.add(v, l);
        }
        // True minimum per bucket via exhaustive sweep.
        let mut cum = vec![0u64; 2];
        let mut true_min = vec![f64::INFINITY; bset.n_buckets()];
        for (v, counts) in avc.iter() {
            for (c, x) in cum.iter_mut().zip(counts) {
                *c += x;
            }
            let left_n: u64 = cum.iter().sum();
            if left_n == 0 || left_n == 100 {
                continue;
            }
            let right: Vec<u64> = totals.iter().zip(&cum).map(|(t, c)| t - c).collect();
            let val = boat_tree::split_impurity(&Gini, &cum, &right);
            let b = bset.bucket_of(v);
            true_min[b] = true_min[b].min(val);
        }
        for (b, &tmin) in true_min.iter().enumerate() {
            let bound = bset.bucket_bound(b, &totals, &Gini);
            assert!(
                bound <= tmin + 1e-12,
                "bucket {b}: bound {bound} exceeds true min {tmin}"
            );
        }
    }

    #[test]
    fn equi_depth_boundaries_track_mass() {
        let pairs: Vec<(f64, u16)> = (0..1000).map(|i| (i as f64, 0u16)).collect();
        let (avc, totals) = avc_from(&pairs);
        let bounds = build_boundaries(
            &avc,
            &totals,
            &Gini,
            0.0,
            DiscretizeStrategy::EquiDepth { buckets: 10 },
            &[],
        );
        assert!(
            bounds.len() >= 9 && bounds.len() <= 11,
            "got {} bounds",
            bounds.len()
        );
        // Roughly every 100 values.
        assert!(
            (bounds[0] - 99.0).abs() <= 5.0,
            "first boundary {}",
            bounds[0]
        );
    }

    #[test]
    fn adaptive_isolates_the_minimum_region() {
        // Clean threshold concept at 500: the impurity minimum sits there.
        let pairs: Vec<(f64, u16)> = (0..1000).map(|i| (i as f64, u16::from(i >= 500))).collect();
        let (avc, totals) = avc_from(&pairs);
        let strategy = DiscretizeStrategy::Adaptive {
            max_buckets: 16,
            slack: 0.10,
        };
        let bounds = build_boundaries(&avc, &totals, &Gini, 0.0, strategy, &[]);
        // The competitive region around 499 must have fine boundaries:
        // 499 itself (the exact minimum) must be a boundary.
        assert!(
            bounds.contains(&499.0),
            "boundaries {bounds:?} must isolate the minimum at 499"
        );
    }

    #[test]
    fn must_include_values_are_present() {
        let pairs: Vec<(f64, u16)> = (0..100).map(|i| (i as f64, (i % 2) as u16)).collect();
        let (avc, totals) = avc_from(&pairs);
        let bounds = build_boundaries(
            &avc,
            &totals,
            &Gini,
            0.3,
            DiscretizeStrategy::default(),
            &[17.5, 42.0],
        );
        assert!(bounds.contains(&17.5));
        assert!(bounds.contains(&42.0));
    }

    #[test]
    fn empty_sample_yields_no_boundaries() {
        let avc = NumAvc::new(2);
        let bounds = build_boundaries(
            &avc,
            &[0, 0],
            &Gini,
            0.0,
            DiscretizeStrategy::default(),
            &[],
        );
        assert!(bounds.is_empty());
    }
}
