//! The paper's central guarantee: BOAT constructs *exactly* the tree a
//! traditional in-memory algorithm builds on the full training database —
//! across label functions, noise levels, impurity functions, schemas, and
//! adversarial (unstable) data designed to defeat the optimistic phase.

use boat_core::{reference_tree, Boat, BoatConfig, DiscretizeStrategy};
use boat_data::dataset::RecordSource;
use boat_data::MemoryDataset;
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::{Entropy, Gini, GrowthLimits};

fn small_config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_500,
        bootstrap_reps: 12,
        bootstrap_sample_size: 600,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed,
        ..BoatConfig::default()
    }
}

fn check_exact(cfg: &GeneratorConfig, n: u64, boat_cfg: BoatConfig) {
    let source = cfg.source(n);
    let fit = Boat::new(boat_cfg.clone()).fit(&source).expect("boat fit");
    let reference = reference_tree(&source, Gini, boat_cfg.limits).expect("reference fit");
    assert_eq!(
        fit.tree,
        reference,
        "BOAT tree differs from the reference tree\nBOAT:\n{}\nreference:\n{}\nstats: {}",
        fit.tree.render(source.schema()),
        reference.render(source.schema()),
        fit.stats
    );
}

#[test]
fn exact_on_f1() {
    check_exact(
        &GeneratorConfig::new(LabelFunction::F1).with_seed(1),
        8_000,
        small_config(101),
    );
}

#[test]
fn exact_on_f6() {
    check_exact(
        &GeneratorConfig::new(LabelFunction::F6).with_seed(2),
        8_000,
        small_config(102),
    );
}

#[test]
fn exact_on_f7() {
    check_exact(
        &GeneratorConfig::new(LabelFunction::F7).with_seed(3),
        8_000,
        small_config(103),
    );
}

#[test]
fn exact_on_every_label_function() {
    for f in 1..=10 {
        let func = LabelFunction::from_number(f).unwrap();
        check_exact(
            &GeneratorConfig::new(func).with_seed(40 + f as u64),
            4_000,
            small_config(200 + f as u64),
        );
    }
}

#[test]
fn exact_with_noise() {
    for noise in [0.02, 0.06, 0.10] {
        check_exact(
            &GeneratorConfig::new(LabelFunction::F1)
                .with_seed(5)
                .with_noise(noise),
            6_000,
            small_config(300),
        );
    }
}

#[test]
fn exact_with_extra_attributes() {
    check_exact(
        &GeneratorConfig::new(LabelFunction::F6)
            .with_seed(6)
            .with_extra_attrs(4),
        5_000,
        small_config(400),
    );
}

#[test]
fn exact_with_entropy() {
    let source = GeneratorConfig::new(LabelFunction::F2)
        .with_seed(7)
        .source(6_000);
    let fit = Boat::with_impurity(small_config(500), Entropy)
        .fit(&source)
        .unwrap();
    let reference = reference_tree(&source, Entropy, GrowthLimits::default()).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn exact_with_stop_threshold() {
    // Paper-mode: stop growth at families under a size threshold.
    let limits = GrowthLimits {
        stop_family_size: Some(500),
        ..GrowthLimits::default()
    };
    let mut cfg = small_config(600);
    cfg.limits = limits;
    let source = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(8)
        .source(10_000);
    let fit = Boat::new(cfg).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn exact_with_max_depth() {
    let limits = GrowthLimits {
        max_depth: Some(3),
        ..GrowthLimits::default()
    };
    let mut cfg = small_config(700);
    cfg.limits = limits;
    let source = GeneratorConfig::new(LabelFunction::F6)
        .with_seed(9)
        .source(6_000);
    let fit = Boat::new(cfg).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, limits).unwrap();
    assert_eq!(fit.tree, reference);
    assert!(fit.tree.max_depth() <= 3);
}

#[test]
fn exact_on_unstable_two_minima_data() {
    // The Figure 12 adversarial case: bootstrap split points are bimodal, so
    // the optimistic phase degrades — but the output must stay exact.
    let ds = boat_datagen::instability::two_minima_dataset(200, 8);
    let mut cfg = small_config(800);
    cfg.sample_size = 2_000;
    cfg.in_memory_threshold = 500;
    let fit = Boat::new(cfg).fit(&ds).unwrap();
    let reference = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn exact_with_degenerate_interval_and_tiny_sample() {
    // A sample far too small to be reliable: verification failures and
    // rebuilds must still converge to the exact tree.
    let mut cfg = small_config(900);
    cfg.sample_size = 60;
    cfg.bootstrap_reps = 4;
    cfg.bootstrap_sample_size = 30;
    cfg.in_memory_threshold = 100;
    check_exact(
        &GeneratorConfig::new(LabelFunction::F2).with_seed(10),
        4_000,
        cfg,
    );
}

#[test]
fn exact_with_equidepth_discretization() {
    let mut cfg = small_config(1000);
    cfg.discretize = DiscretizeStrategy::EquiDepth { buckets: 8 };
    check_exact(
        &GeneratorConfig::new(LabelFunction::F7).with_seed(11),
        5_000,
        cfg,
    );
}

#[test]
fn exact_with_zero_spill_budget() {
    // Everything parked goes to disk immediately; results identical.
    let mut cfg = small_config(1100);
    cfg.spill_budget = 0;
    check_exact(
        &GeneratorConfig::new(LabelFunction::F1).with_seed(12),
        5_000,
        cfg,
    );
}

#[test]
fn typical_case_uses_two_scans() {
    // Well-conditioned data (a single crisp threshold concept): every
    // bootstrap tree agrees, every criterion verifies, and BOAT needs
    // exactly the sampling scan plus the cleanup scan.
    let schema = boat_data::Schema::shared(vec![boat_data::Attribute::numeric("x")], 2).unwrap();
    let records: Vec<boat_data::Record> = (0..10_000)
        .map(|i| {
            let x = (i % 1_000) as f64;
            boat_data::Record::new(vec![boat_data::Field::Num(x)], u16::from(x <= 300.0))
        })
        .collect();
    let source = MemoryDataset::new(schema, records);
    let limits = GrowthLimits {
        stop_family_size: Some(1_500),
        ..GrowthLimits::default()
    };
    let mut cfg = small_config(1200);
    cfg.limits = limits;
    cfg.in_memory_threshold = 1_500;
    let fit = Boat::new(cfg).fit(&source).unwrap();
    assert_eq!(
        fit.stats.scans_over_input, 2,
        "well-conditioned paper-mode run should need exactly two scans; stats: {}",
        fit.stats
    );
    assert_eq!(fit.stats.failed_nodes, 0);
    // And it is still the exact tree.
    let reference = reference_tree(&source, Gini, limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn paper_mode_f1_needs_few_scans_and_stays_exact() {
    // F1 at paper-mode settings: the occasional structural disagreement may
    // cost a recursive partition pass, but scan counts stay far below the
    // one-scan-per-level baseline and the tree stays exact.
    let source = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(13)
        .source(10_000);
    let limits = GrowthLimits {
        stop_family_size: Some(1_500),
        ..GrowthLimits::default()
    };
    let mut cfg = small_config(1200);
    cfg.limits = limits;
    cfg.in_memory_threshold = 1_500;
    let fit = Boat::new(cfg).fit(&source).unwrap();
    assert!(
        fit.stats.scans_over_input <= 4,
        "F1 should need at most sampling + cleanup + one recovery round; stats: {}",
        fit.stats
    );
    let reference = reference_tree(&source, Gini, limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn small_input_takes_the_in_memory_fast_path() {
    let source = GeneratorConfig::new(LabelFunction::F3)
        .with_seed(14)
        .source(300);
    let fit = Boat::new(small_config(1300)).fit(&source).unwrap();
    assert_eq!(fit.stats.scans_over_input, 1);
    let reference = reference_tree(&source, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn exact_on_pure_dataset() {
    let schema = boat_data::Schema::shared(vec![boat_data::Attribute::numeric("x")], 2).unwrap();
    let records: Vec<boat_data::Record> = (0..2_000)
        .map(|i| boat_data::Record::new(vec![boat_data::Field::Num(i as f64)], 0))
        .collect();
    let ds = MemoryDataset::new(schema, records);
    let mut cfg = small_config(1400);
    cfg.in_memory_threshold = 100;
    cfg.sample_size = 500;
    let fit = Boat::new(cfg).fit(&ds).unwrap();
    assert_eq!(fit.tree.n_nodes(), 1);
    let reference = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn stats_are_plausible() {
    let source = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(15)
        .source(8_000);
    let fit = Boat::new(small_config(1500)).fit(&source).unwrap();
    assert!(fit.stats.scans_over_input >= 2);
    assert!(fit.stats.sample_records == 1_500);
    assert!(fit.stats.coarse_nodes >= 1);
    assert!(fit.stats.io.records_read >= 8_000);
}

#[test]
fn exact_on_four_class_data() {
    // Exercises the 2^k corner bound with k=4 and categorical splits: class
    // determined by quadrant of (x, y) with a categorical override region.
    let schema = boat_data::Schema::shared(
        vec![
            boat_data::Attribute::numeric("x"),
            boat_data::Attribute::numeric("y"),
            boat_data::Attribute::categorical("zone", 6),
        ],
        4,
    )
    .unwrap();
    let records: Vec<boat_data::Record> = (0..8_000)
        .map(|i| {
            let x = (i % 100) as f64;
            let y = ((i / 7) % 100) as f64;
            let zone = (i % 6) as u32;
            let label: u16 = if zone == 5 {
                3
            } else {
                match (x < 50.0, y < 50.0) {
                    (true, true) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (false, false) => 3,
                }
            };
            boat_data::Record::new(
                vec![
                    boat_data::Field::Num(x),
                    boat_data::Field::Num(y),
                    boat_data::Field::Cat(zone),
                ],
                label,
            )
        })
        .collect();
    let ds = MemoryDataset::new(schema, records);
    let cfg = small_config(1600);
    let fit = Boat::new(cfg.clone()).fit(&ds).unwrap();
    let reference = reference_tree(&ds, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
    // Sanity: the tree actually uses several classes.
    let labels: std::collections::HashSet<u16> = fit
        .tree
        .preorder_ids()
        .iter()
        .filter(|&&id| fit.tree.node(id).is_leaf())
        .map(|&id| fit.tree.node(id).majority_label())
        .collect();
    assert!(
        labels.len() >= 3,
        "tree should distinguish several classes: {labels:?}"
    );
}

#[test]
fn exact_with_unanimous_agreement_rule() {
    // The paper's original agreement rule, end to end.
    let mut cfg = small_config(1700);
    cfg.agreement = boat_core::config::AgreementRule::Unanimous;
    check_exact(
        &GeneratorConfig::new(LabelFunction::F1).with_seed(16),
        6_000,
        cfg,
    );
}

#[test]
fn exact_with_confidence_trimming() {
    let mut cfg = small_config(1800);
    cfg.confidence_trim = 0.1;
    check_exact(
        &GeneratorConfig::new(LabelFunction::F6).with_seed(17),
        6_000,
        cfg,
    );
}
