//! Differential oracle for the confidence-gated subsampled split search.
//!
//! The gate must be *invisible*: with `split_subsample` at its on-by-default
//! setting (and at aggressive settings), the columnar engine must produce
//! byte-identical artifacts to both the gate-off columnar engine and the
//! row-materializing engine — serialized coarse trees out of the sampling
//! phase and serialized final models out of the full pipeline. Property
//! tests draw random schema shapes, record tables, and seeds; fixed cases
//! pin the adversarial datagen grid (heavy ties, high-cardinality
//! categoricals, skewed class priors, wide schemas) that the sample_phase
//! bench also runs.

use boat_core::coarse::build_coarse_tree;
use boat_core::{Boat, BoatConfig, SampleEngine};
use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};
use boat_obs::Registry;
use boat_tree::{Gini, ImpuritySelector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Attribute shape: `None` = numeric, `Some(card)` = categorical.
type AttrSpec = Option<u32>;

fn arb_attrs() -> impl Strategy<Value = Vec<AttrSpec>> {
    prop::collection::vec(prop_oneof![Just(None), (2u32..6).prop_map(Some)], 1..5)
}

fn make_schema(attrs: &[AttrSpec], n_classes: usize) -> Arc<Schema> {
    let attrs: Vec<Attribute> = attrs
        .iter()
        .enumerate()
        .map(|(i, spec)| match spec {
            None => Attribute::numeric(format!("x{i}")),
            Some(card) => Attribute::categorical(format!("c{i}"), *card),
        })
        .collect();
    Arc::new(Schema::new(attrs, n_classes as u16).expect("valid schema"))
}

/// Random records mixing a fine-grained value band (near-unique values,
/// where the gate actually prunes) with a coarse grid band (heavy ties,
/// where snapping and fallbacks dominate).
fn make_records(attrs: &[AttrSpec], n: usize, n_classes: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let fields: Vec<Field> = attrs
                .iter()
                .map(|spec| match spec {
                    None => {
                        if rng.random_range(0..2u32) == 0 {
                            // fine-grained band
                            Field::Num(rng.random_range(0..100_000u32) as f64 * 1e-3)
                        } else {
                            // coarse tied band
                            Field::Num(rng.random_range(0..12u32) as f64 * 0.5)
                        }
                    }
                    Some(card) => Field::Cat(rng.random_range(0..*card)),
                })
                .collect();
            let noisy = rng.random_range(0..5u32) == 0;
            let label = if noisy {
                rng.random_range(0..n_classes as u32) as u16
            } else {
                match &fields[0] {
                    Field::Num(v) => u16::from(*v >= 5.0) % n_classes as u16,
                    Field::Cat(c) => (*c % n_classes as u32) as u16,
                }
            };
            Record::new(fields, label)
        })
        .collect()
}

fn small_config(seed: u64, engine: SampleEngine) -> BoatConfig {
    BoatConfig {
        sample_size: 200,
        bootstrap_reps: 6,
        bootstrap_sample_size: 100,
        in_memory_threshold: 120,
        spill_budget: 16,
        cleanup_chunk_size: 128,
        seed,
        ..BoatConfig::default()
    }
    .with_sample_engine(engine)
}

/// The gate settings the oracle sweeps: the shipped default, an aggressive
/// tiny-node setting (gates almost every node), and a coarse fraction.
const GATE_SETTINGS: [(f64, usize); 3] = [(1.0 / 16.0, 256), (1.0 / 16.0, 8), (0.25, 16)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Sampling phase in isolation: the gated coarse trees are byte-identical
    /// to both the ungated columnar trees and the rows-engine trees.
    #[test]
    fn gated_coarse_trees_are_byte_identical(
        attrs in arb_attrs(),
        n_classes in 2usize..4,
        n in 250usize..600,
        data_seed in 0u64..1_000_000,
        boat_seed in 0u64..1_000_000,
    ) {
        let schema = make_schema(&attrs, n_classes);
        let sample = make_records(&attrs, n, n_classes, data_seed);
        let selector = ImpuritySelector::new(Gini);
        let full_size = (n as u64) * 8;
        let coarse_of = |config: BoatConfig| {
            let mut rng = StdRng::seed_from_u64(boat_seed ^ 0x0B0A7);
            build_coarse_tree(
                &schema,
                &sample,
                &selector,
                &config,
                full_size,
                &mut rng,
                &Registry::new(),
            )
        };
        let rows = coarse_of(small_config(boat_seed, SampleEngine::Rows));
        let ungated =
            coarse_of(small_config(boat_seed, SampleEngine::Columnar).with_split_subsample(0.0));
        prop_assert_eq!(&ungated, &rows, "gate-off columnar vs rows diverge");
        for (fraction, min_node) in GATE_SETTINGS {
            let gated = coarse_of(
                small_config(boat_seed, SampleEngine::Columnar)
                    .with_split_subsample(fraction)
                    .with_split_subsample_min_node(min_node),
            );
            prop_assert_eq!(&gated, &rows, "gated trees diverge at fraction={} min_node={}",
                fraction, min_node);
            prop_assert_eq!(
                format!("{gated:?}").into_bytes(),
                format!("{rows:?}").into_bytes()
            );
        }
    }

    /// Full pipeline: the gated serialized final model equals the ungated
    /// and rows-engine models byte for byte.
    #[test]
    fn gated_full_pipeline_models_are_byte_identical(
        attrs in arb_attrs(),
        n_classes in 2usize..4,
        n in 450usize..900,
        data_seed in 0u64..1_000_000,
        boat_seed in 0u64..1_000_000,
    ) {
        let schema = make_schema(&attrs, n_classes);
        let records = make_records(&attrs, n, n_classes, data_seed);
        let fit_of = |config: BoatConfig| {
            let source = MemoryDataset::new(schema.clone(), records.clone());
            Boat::new(config).fit(&source).expect("boat fit")
        };
        let rows = fit_of(small_config(boat_seed, SampleEngine::Rows));
        let gated = fit_of(
            small_config(boat_seed, SampleEngine::Columnar)
                .with_split_subsample_min_node(16),
        );
        let ungated =
            fit_of(small_config(boat_seed, SampleEngine::Columnar).with_split_subsample(0.0));
        let reference = rows.tree.to_bytes();
        prop_assert_eq!(&ungated.tree.to_bytes(), &reference, "gate-off model diverges");
        prop_assert_eq!(
            &gated.tree.to_bytes(),
            &reference,
            "gated model diverges\ngated:\n{}\nrows:\n{}",
            gated.tree.render(&schema),
            rows.tree.render(&schema),
        );
        prop_assert_eq!(gated.stats.coarse_nodes, rows.stats.coarse_nodes);
        prop_assert_eq!(gated.stats.verified_nodes, rows.stats.verified_nodes);
        prop_assert_eq!(gated.stats.failed_nodes, rows.stats.failed_nodes);
    }
}

/// The adversarial datagen grid, pinned as fixed cases: every scenario must
/// produce identical trees and serialized models across rows / gate-off /
/// gate-on, and the wide-schema scenario must actually take the gated path
/// (non-zero subsample counters), so the grid cannot silently stop
/// exercising the gate.
#[test]
fn adversarial_grid_is_exact_across_engines() {
    use boat_datagen::adversarial;

    let scenarios: Vec<(&str, (Schema, Vec<Record>))> = vec![
        ("heavy_ties", adversarial::heavy_ties(1_500, 31)),
        ("high_cardinality", adversarial::high_cardinality(1_500, 32)),
        ("skewed_priors", adversarial::skewed_priors(1_500, 33)),
        ("wide_schema", adversarial::wide_schema(1_200, 12, 34)),
    ];
    for (name, (schema, records)) in scenarios {
        let schema = Arc::new(schema);
        let selector = ImpuritySelector::new(Gini);
        let config = BoatConfig {
            sample_size: records.len(),
            bootstrap_reps: 4,
            bootstrap_sample_size: records.len() / 2,
            in_memory_threshold: 200,
            seed: 11_000,
            ..BoatConfig::default()
        };
        let full_size = records.len() as u64 * 4;
        let coarse_of = |cfg: BoatConfig, metrics: &Registry| {
            let mut rng = StdRng::seed_from_u64(0xAD5A);
            build_coarse_tree(
                &schema, &records, &selector, &cfg, full_size, &mut rng, metrics,
            )
        };
        let rows = coarse_of(
            config.clone().with_sample_engine(SampleEngine::Rows),
            &Registry::new(),
        );
        let ungated = coarse_of(
            config
                .clone()
                .with_sample_engine(SampleEngine::Columnar)
                .with_split_subsample(0.0),
            &Registry::new(),
        );
        let gated_metrics = Registry::new();
        let gated = coarse_of(
            config
                .clone()
                .with_sample_engine(SampleEngine::Columnar)
                .with_split_subsample_min_node(64),
            &gated_metrics,
        );
        assert_eq!(
            ungated, rows,
            "{name}: gate-off columnar diverges from rows"
        );
        assert_eq!(gated, rows, "{name}: gated columnar diverges from rows");
        assert_eq!(
            format!("{gated:?}").into_bytes(),
            format!("{rows:?}").into_bytes(),
            "{name}: rendered coarse trees differ"
        );
        let snap = gated_metrics.snapshot();
        let counter = |key: &str| snap.counter(key);
        let touched =
            counter("boat.sample.subsample.swept") + counter("boat.sample.subsample.fallbacks");
        assert!(
            touched > 0,
            "{name}: the gate never engaged — the scenario no longer tests it"
        );
        if name == "wide_schema" {
            assert!(
                counter("boat.sample.subsample.pruned") > 0,
                "wide_schema: expected actual gap pruning"
            );
        }
        if name == "heavy_ties" {
            assert!(
                counter("boat.sample.subsample.fallbacks") > 0,
                "heavy_ties: expected snap-budget fallbacks"
            );
        }
    }
}

/// Full-pipeline pin on one adversarial scenario (the gate's winning
/// shape): serialized models byte-identical across all three engines.
#[test]
fn wide_schema_full_pipeline_models_agree() {
    use boat_datagen::adversarial;

    let (schema, records) = adversarial::wide_schema(2_000, 10, 77);
    let schema = Arc::new(schema);
    let config = BoatConfig {
        sample_size: 400,
        bootstrap_reps: 5,
        bootstrap_sample_size: 200,
        in_memory_threshold: 300,
        spill_budget: 16,
        cleanup_chunk_size: 256,
        seed: 12_345,
        ..BoatConfig::default()
    };
    let fit_of = |cfg: BoatConfig| {
        let source = MemoryDataset::new(schema.clone(), records.clone());
        Boat::new(cfg).fit(&source).expect("boat fit")
    };
    let rows = fit_of(config.clone().with_sample_engine(SampleEngine::Rows));
    let ungated = fit_of(
        config
            .clone()
            .with_sample_engine(SampleEngine::Columnar)
            .with_split_subsample(0.0),
    );
    let gated = fit_of(
        config
            .clone()
            .with_sample_engine(SampleEngine::Columnar)
            .with_split_subsample_min_node(64),
    );
    let reference = rows.tree.to_bytes();
    assert_eq!(ungated.tree.to_bytes(), reference);
    assert_eq!(
        gated.tree.to_bytes(),
        reference,
        "gated:\n{}\nrows:\n{}",
        gated.tree.render(&schema),
        rows.tree.render(&schema)
    );
}
