//! Property-based tests for BOAT itself — the heavyweight one being the
//! paper's guarantee as a property: over *arbitrary* schema-conformant
//! datasets (discrete values, so exact ties and degenerate layouts are
//! common), BOAT's tree is identical to the in-memory reference, and any
//! interleaving of insert/delete chunks matches a rebuild.

use boat_core::verify::corner_lower_bound;
use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};
use boat_tree::{split_impurity, Entropy, Gini, Impurity};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::shared(
        vec![
            Attribute::numeric("x"),
            Attribute::categorical("c", 4),
            Attribute::numeric("y"),
        ],
        2,
    )
    .unwrap()
}

fn arb_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        (0i64..30, 0u32..4, 0i64..10, 0u16..2).prop_map(|(x, c, y, l)| {
            Record::new(
                vec![Field::Num(x as f64), Field::Cat(c), Field::Num(y as f64)],
                l,
            )
        }),
        0..=max,
    )
}

fn tiny_config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 200,
        bootstrap_reps: 8,
        bootstrap_sample_size: 100,
        in_memory_threshold: 40,
        spill_budget: 16,
        seed,
        ..BoatConfig::default()
    }
}

proptest! {
    // These cases each run full BOAT pipelines; keep counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central guarantee as a property: BOAT == reference, always.
    #[test]
    fn boat_equals_reference_on_arbitrary_data(
        records in arb_records(600),
        seed in 0u64..30,
    ) {
        let ds = MemoryDataset::new(schema(), records);
        let cfg = tiny_config(seed);
        let fit = Boat::new(cfg.clone()).fit(&ds).unwrap();
        let reference = reference_tree(&ds, Gini, cfg.limits).unwrap();
        prop_assert_eq!(&fit.tree, &reference);
    }

    /// The guarantee over *random schemas* too: attribute mixes, class
    /// counts and cardinalities drawn arbitrarily.
    #[test]
    fn boat_equals_reference_on_random_schemas(
        kinds in prop::collection::vec(prop_oneof![Just(None), (2u32..=6).prop_map(Some)], 1..=4),
        classes in 2u16..=4,
        raw in prop::collection::vec((0i64..20, 0u32..6, 0u16..4), 10..400),
        seed in 0u64..20,
    ) {
        let attrs: Vec<Attribute> = kinds
            .iter()
            .enumerate()
            .map(|(i, card)| match card {
                None => Attribute::numeric(format!("n{i}")),
                Some(c) => Attribute::categorical(format!("c{i}"), *c),
            })
            .collect();
        let schema = Schema::shared(attrs, classes).unwrap();
        let records: Vec<Record> = raw
            .iter()
            .map(|&(x, c, l)| {
                let fields: Vec<Field> = schema
                    .attributes()
                    .iter()
                    .map(|a| match a.ty() {
                        boat_data::AttrType::Numeric => Field::Num(x as f64),
                        boat_data::AttrType::Categorical { cardinality } => {
                            Field::Cat(c % cardinality)
                        }
                    })
                    .collect();
                Record::new(fields, l % classes)
            })
            .collect();
        let ds = MemoryDataset::new(schema, records);
        let cfg = tiny_config(seed);
        let fit = Boat::new(cfg.clone()).fit(&ds).unwrap();
        let reference = reference_tree(&ds, Gini, cfg.limits).unwrap();
        prop_assert_eq!(&fit.tree, &reference);
    }

    /// Incremental maintenance as a property: base + insert chunk + delete
    /// prefix == rebuild on the net records.
    #[test]
    fn model_updates_equal_rebuild_on_arbitrary_data(
        base in arb_records(300),
        chunk in arb_records(150),
        del in 0usize..100,
        seed in 0u64..20,
    ) {
        let s = schema();
        let ds = MemoryDataset::new(s.clone(), base.clone());
        let cfg = tiny_config(seed);
        let (mut model, _) = Boat::new(cfg.clone()).fit_model(&ds).unwrap();
        model.insert(&MemoryDataset::new(s.clone(), chunk.clone())).unwrap();
        let del = del.min(base.len());
        model.delete(&MemoryDataset::new(s.clone(), base[..del].to_vec())).unwrap();

        let mut net = base[del..].to_vec();
        net.extend(chunk);
        let reference =
            reference_tree(&MemoryDataset::new(s, net), Gini, cfg.limits).unwrap();
        prop_assert_eq!(model.tree().unwrap(), &reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 3.1 as a property: the corner bound never exceeds the true
    /// minimum impurity over any monotone stamp path through the box.
    #[test]
    fn corner_bound_is_sound(
        lo in prop::collection::vec(0u64..50, 2..4),
        extra in prop::collection::vec(0u64..50, 2..4),
        headroom in prop::collection::vec(0u64..50, 2..4),
        steps in 1usize..6,
        jitter in 0u64..1_000,
    ) {
        let k = lo.len().min(extra.len()).min(headroom.len());
        let lo = &lo[..k];
        let hi: Vec<u64> = lo.iter().zip(&extra[..k]).map(|(l, e)| l + e).collect();
        let totals: Vec<u64> =
            hi.iter().zip(&headroom[..k]).map(|(h, r)| h + r).collect();
        prop_assume!(totals.iter().sum::<u64>() > 0);
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let bound = corner_lower_bound(imp, lo, &hi, &totals);
            // Walk a pseudo-random monotone path from lo to hi; every stamp
            // on it must sit at or above the bound.
            let mut stamp = lo.to_vec();
            let mut state = jitter;
            for _ in 0..steps {
                for i in 0..k {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let room = hi[i] - stamp[i];
                    if room > 0 {
                        stamp[i] += state % (room + 1);
                    }
                }
                let right: Vec<u64> =
                    totals.iter().zip(&stamp).map(|(t, s)| t - s).collect();
                let v = split_impurity(imp, &stamp, &right);
                prop_assert!(
                    bound <= v + 1e-12,
                    "{}: corner bound {bound} above stamp value {v} at {stamp:?}",
                    imp.name()
                );
            }
        }
    }
}
