//! Property tests for the shard-merge algebra behind the parallel cleanup
//! scan.
//!
//! The parallel scan's exactness rests on one algebraic fact: every per-node
//! statistic ([`BucketSet`], [`CatAvc`], plain `u64` class counters) forms a
//! commutative monoid under `merge_from`, with `zeroed_like` as identity,
//! and a partitioned accumulation merged in *any* order equals one
//! sequential accumulation bit for bit. These properties pin that down over
//! randomized operation streams — including values that collide with bucket
//! boundaries, where `BucketSet` keeps separate exact counts.

use boat_core::buckets::BucketSet;
use boat_tree::CatAvc;
use proptest::prelude::*;

const K: usize = 3; // classes
const CARD: u32 = 8; // categorical cardinality

/// One recorded tuple as seen by a numeric accumulator: (value, label).
/// Values live on a small grid shared with the boundary strategy so that
/// exact boundary hits (the `at_boundary` side channel) are common.
fn arb_num_ops() -> impl Strategy<Value = Vec<(f64, u16)>> {
    prop::collection::vec(
        ((0i32..40).prop_map(|v| v as f64 * 0.5), 0u16..K as u16),
        0..200,
    )
}

fn arb_boundaries() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0i32..40).prop_map(|v| v as f64 * 0.5), 0..10)
}

fn arb_cat_ops() -> impl Strategy<Value = Vec<(u32, u16)>> {
    prop::collection::vec((0u32..CARD, 0u16..K as u16), 0..200)
}

/// Chunked operation streams: the partition a chunked parallel scan induces.
fn arb_num_chunks() -> impl Strategy<Value = Vec<Vec<(f64, u16)>>> {
    prop::collection::vec(
        prop::collection::vec(
            ((0i32..40).prop_map(|v| v as f64 * 0.5), 0u16..K as u16),
            0..60,
        ),
        0..6,
    )
}

fn bucket_accumulate(proto: &BucketSet, ops: &[(f64, u16)]) -> BucketSet {
    let mut b = proto.zeroed_like();
    for &(v, l) in ops {
        b.add(v, l);
    }
    b
}

fn cat_accumulate(ops: &[(u32, u16)]) -> CatAvc {
    let mut a = CatAvc::new(CARD, K);
    for &(c, l) in ops {
        a.add(c, l);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_merge_is_commutative(
        bounds in arb_boundaries(),
        xs in arb_num_ops(),
        ys in arb_num_ops(),
    ) {
        let proto = BucketSet::new(bounds, K);
        let a = bucket_accumulate(&proto, &xs);
        let b = bucket_accumulate(&proto, &ys);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bucket_merge_is_associative(
        bounds in arb_boundaries(),
        xs in arb_num_ops(),
        ys in arb_num_ops(),
        zs in arb_num_ops(),
    ) {
        let proto = BucketSet::new(bounds, K);
        let (a, b, c) = (
            bucket_accumulate(&proto, &xs),
            bucket_accumulate(&proto, &ys),
            bucket_accumulate(&proto, &zs),
        );
        // (a + b) + c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn bucket_zeroed_is_identity(bounds in arb_boundaries(), xs in arb_num_ops()) {
        let proto = BucketSet::new(bounds, K);
        let a = bucket_accumulate(&proto, &xs);
        let mut left = proto.zeroed_like();
        left.merge_from(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge_from(&proto.zeroed_like());
        prop_assert_eq!(&right, &a);
    }

    #[test]
    fn bucket_chunked_merge_equals_single_pass(
        bounds in arb_boundaries(),
        chunks in arb_num_chunks(),
    ) {
        let proto = BucketSet::new(bounds, K);
        // One sequential pass over the concatenated stream …
        let all: Vec<(f64, u16)> = chunks.iter().flatten().copied().collect();
        let serial = bucket_accumulate(&proto, &all);
        // … equals per-chunk shards merged in order …
        let shards: Vec<BucketSet> =
            chunks.iter().map(|c| bucket_accumulate(&proto, c)).collect();
        let mut forward = proto.zeroed_like();
        for s in &shards {
            forward.merge_from(s);
        }
        prop_assert_eq!(&forward, &serial);
        // … and merged in reverse order.
        let mut backward = proto.zeroed_like();
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        prop_assert_eq!(&backward, &serial);
    }

    #[test]
    fn cat_merge_is_commutative(xs in arb_cat_ops(), ys in arb_cat_ops()) {
        let a = cat_accumulate(&xs);
        let b = cat_accumulate(&ys);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn cat_merge_is_associative(
        xs in arb_cat_ops(),
        ys in arb_cat_ops(),
        zs in arb_cat_ops(),
    ) {
        let (a, b, c) = (cat_accumulate(&xs), cat_accumulate(&ys), cat_accumulate(&zs));
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn cat_chunked_merge_equals_single_pass(
        chunks in prop::collection::vec(arb_cat_ops(), 0..6),
    ) {
        let all: Vec<(u32, u16)> = chunks.iter().flatten().copied().collect();
        let serial = cat_accumulate(&all);
        let shards: Vec<CatAvc> = chunks.iter().map(|c| cat_accumulate(c)).collect();
        let mut forward = cat_accumulate(&[]);
        for s in &shards {
            forward.merge_from(s);
        }
        prop_assert_eq!(&forward, &serial);
        let mut backward = cat_accumulate(&[]);
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        prop_assert_eq!(&backward, &serial);
    }

    #[test]
    fn bucket_merge_agrees_with_interleaved_adds(
        bounds in arb_boundaries(),
        xs in arb_num_ops(),
        ys in arb_num_ops(),
    ) {
        // Two shards merged equals the *interleaved* serial stream — counts
        // do not care how the scan order interleaved the two partitions.
        let proto = BucketSet::new(bounds, K);
        let mut merged = bucket_accumulate(&proto, &xs);
        merged.merge_from(&bucket_accumulate(&proto, &ys));
        let mut interleaved = proto.zeroed_like();
        let (mut i, mut j) = (0, 0);
        while i < xs.len() || j < ys.len() {
            // Deterministic round-robin interleaving.
            if i < xs.len() {
                interleaved.add(xs[i].0, xs[i].1);
                i += 1;
            }
            if j < ys.len() {
                interleaved.add(ys[j].0, ys[j].1);
                j += 1;
            }
        }
        prop_assert_eq!(merged, interleaved);
    }
}
