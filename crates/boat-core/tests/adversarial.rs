//! Adversarial and degenerate-input coverage: extreme configurations,
//! degenerate datasets, and I/O failure propagation. Exactness (or a clean
//! error) must hold in every corner.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::dataset::{RecordScan, RecordSource};
use boat_data::{Attribute, Field, IoStats, MemoryDataset, Record, Result, Schema};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::{Gini, GrowthLimits};
use std::sync::Arc;

fn tiny_config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 300,
        bootstrap_reps: 6,
        bootstrap_sample_size: 150,
        in_memory_threshold: 50,
        spill_budget: 8,
        seed,
        ..BoatConfig::default()
    }
}

#[test]
fn single_record_dataset() {
    let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
    let ds = MemoryDataset::new(schema, vec![Record::new(vec![Field::Num(1.0)], 1)]);
    let fit = Boat::new(tiny_config(1)).fit(&ds).unwrap();
    assert_eq!(fit.tree.n_nodes(), 1);
    assert_eq!(fit.tree.node(fit.tree.root()).majority_label(), 1);
}

#[test]
fn empty_dataset() {
    let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
    let ds = MemoryDataset::new(schema, vec![]);
    let fit = Boat::new(tiny_config(2)).fit(&ds).unwrap();
    assert_eq!(fit.tree.n_nodes(), 1);
    assert_eq!(fit.tree.node(fit.tree.root()).n_records(), 0);
}

#[test]
fn all_records_identical_but_labels_differ() {
    // No attribute separates anything: the reference tree is a single leaf
    // (no valid split), and BOAT must agree.
    let schema = Schema::shared(
        vec![Attribute::numeric("x"), Attribute::categorical("c", 3)],
        2,
    )
    .unwrap();
    let records: Vec<Record> = (0..2_000)
        .map(|i| Record::new(vec![Field::Num(7.0), Field::Cat(1)], (i % 2) as u16))
        .collect();
    let ds = MemoryDataset::new(schema, records);
    let fit = Boat::new(tiny_config(3)).fit(&ds).unwrap();
    let reference = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(fit.tree, reference);
    assert_eq!(fit.tree.n_nodes(), 1);
}

#[test]
fn minimum_bootstrap_repetitions() {
    let mut cfg = tiny_config(4);
    cfg.bootstrap_reps = 2;
    let source = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(4)
        .source(3_000);
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn max_depth_one() {
    let mut cfg = tiny_config(5);
    cfg.limits = GrowthLimits {
        max_depth: Some(1),
        ..GrowthLimits::default()
    };
    let source = GeneratorConfig::new(LabelFunction::F6)
        .with_seed(5)
        .source(4_000);
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
    assert!(fit.tree.max_depth() <= 1);
}

#[test]
fn extreme_confidence_trim() {
    // Trim just under the validation cap: intervals collapse towards the
    // bootstrap median; exactness must survive the extra failures.
    let mut cfg = tiny_config(6);
    cfg.confidence_trim = 0.49;
    let source = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(6)
        .source(4_000);
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn zero_recursion_budget() {
    let mut cfg = tiny_config(7);
    cfg.max_recursion = 0; // every oversized completion goes in-memory
    let source = GeneratorConfig::new(LabelFunction::F7)
        .with_seed(7)
        .source(5_000);
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
    assert_eq!(fit.stats.recursive_builds, 0);
}

#[test]
fn sample_larger_than_dataset() {
    let mut cfg = tiny_config(8);
    cfg.sample_size = 100_000; // the whole dataset becomes the sample
    cfg.in_memory_threshold = 10; // …but the fast path must not trigger
    let source = GeneratorConfig::new(LabelFunction::F2)
        .with_seed(8)
        .source(3_000);
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
}

#[test]
fn model_on_tiny_base_then_large_inserts() {
    // The model must grow from a 100-record base to 30x its size through
    // promotions, staying exact throughout.
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(9);
    let schema = gen.schema();
    let all = gen.generate_vec(3_100);
    let algo = Boat::new(tiny_config(9));
    let (mut model, _) = algo
        .fit_model(&MemoryDataset::new(schema.clone(), all[..100].to_vec()))
        .unwrap();
    for chunk in all[100..].chunks(1_000) {
        model
            .insert(&MemoryDataset::new(schema.clone(), chunk.to_vec()))
            .unwrap();
    }
    let reference = reference_tree(
        &MemoryDataset::new(schema, all),
        Gini,
        GrowthLimits::default(),
    )
    .unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

#[test]
fn delete_everything_then_reinsert() {
    let gen = GeneratorConfig::new(LabelFunction::F3).with_seed(10);
    let schema = gen.schema();
    let records = gen.generate_vec(2_000);
    let ds = MemoryDataset::new(schema.clone(), records.clone());
    let algo = Boat::new(tiny_config(10));
    let (mut model, _) = algo.fit_model(&ds).unwrap();
    model.delete(&ds).unwrap();
    {
        let tree = model.tree().unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.node(tree.root()).n_records(), 0);
    }
    model.insert(&ds).unwrap();
    let reference = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

// ---------------------------------------------------------------------------
// I/O failure propagation
// ---------------------------------------------------------------------------

/// A source that fails mid-scan after `ok_records`.
struct FailingSource {
    schema: Arc<Schema>,
    ok_records: u64,
    claimed_len: u64,
    stats: IoStats,
}

impl RecordSource for FailingSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let ok = self.ok_records;
        let total = self.claimed_len;
        Ok(Box::new((0..total).map(move |i| {
            if i < ok {
                Ok(Record::new(vec![Field::Num(i as f64)], (i % 2) as u16))
            } else {
                Err(boat_data::DataError::Io(std::io::Error::other("disk died")))
            }
        })))
    }

    fn len(&self) -> u64 {
        self.claimed_len
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[test]
fn mid_scan_io_error_is_propagated_not_panicked() {
    let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
    let source = FailingSource {
        schema,
        ok_records: 500,
        claimed_len: 2_000,
        stats: IoStats::new(),
    };
    let err = Boat::new(tiny_config(11)).fit(&source).unwrap_err();
    assert!(err.to_string().contains("disk died"), "{err}");
}

#[test]
fn model_update_io_error_is_propagated() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(12);
    let base = MemoryDataset::new(gen.schema(), gen.generate_vec(1_000));
    let algo = Boat::new(tiny_config(12));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    // A failing chunk: same schema as the generator's 9-attribute layout is
    // needed, so build the failing source on that schema with conforming
    // records up to the failure point.
    struct FailingChunk {
        schema: Arc<Schema>,
        template: Record,
        stats: IoStats,
    }
    impl RecordSource for FailingChunk {
        fn schema(&self) -> &Arc<Schema> {
            &self.schema
        }
        fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
            self.stats.record_scan();
            let template = self.template.clone();
            Ok(Box::new((0..10u32).map(move |i| {
                if i < 5 {
                    Ok(template.clone())
                } else {
                    Err(boat_data::DataError::Io(std::io::Error::other(
                        "chunk truncated",
                    )))
                }
            })))
        }
        fn len(&self) -> u64 {
            10
        }
        fn stats(&self) -> &IoStats {
            &self.stats
        }
    }
    let chunk = FailingChunk {
        schema: gen.schema(),
        template: gen.generate_vec(1)[0].clone(),
        stats: IoStats::new(),
    };
    let err = model.insert(&chunk).unwrap_err();
    assert!(err.to_string().contains("chunk truncated"), "{err}");
}
