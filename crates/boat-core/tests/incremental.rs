//! Paper §4: incremental maintenance. After any sequence of insert/delete
//! chunks, the maintained tree must be *identical* to a full rebuild on the
//! net training data — including under distribution drift, where only the
//! affected subtree is rebuilt.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::dataset::RecordSource;
use boat_data::{MemoryDataset, Record};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::{Gini, GrowthLimits};

fn config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_200,
        bootstrap_reps: 10,
        bootstrap_sample_size: 500,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed,
        ..BoatConfig::default()
    }
}

fn mem(schema: &std::sync::Arc<boat_data::Schema>, records: Vec<Record>) -> MemoryDataset {
    MemoryDataset::new(schema.clone(), records)
}

/// Insert chunks one at a time; after each, the model tree must equal the
/// reference tree over the accumulated records.
#[test]
fn insertions_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(21);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let algo = Boat::new(config(2100));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let mut upto = 5_000;
    for chunk_end in [7_000, 9_000] {
        let chunk = mem(&schema, all[upto..chunk_end].to_vec());
        let report = model.insert(&chunk).unwrap();
        assert_eq!(report.inserted, (chunk_end - upto) as u64);
        upto = chunk_end;
        let net = mem(&schema, all[..upto].to_vec());
        let reference = reference_tree(&net, Gini, GrowthLimits::default()).unwrap();
        assert_eq!(
            model.tree().unwrap(),
            &reference,
            "after inserting up to {upto}: maintained tree != rebuild"
        );
    }
}

#[test]
fn deletions_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(22);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let base = mem(&schema, all.clone());
    let algo = Boat::new(config(2200));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    // Delete the *most recent* chunk (the paper's expiry scenario).
    let expired = mem(&schema, all[6_000..].to_vec());
    let report = model.delete(&expired).unwrap();
    assert_eq!(report.deleted, 2_000);
    let net = mem(&schema, all[..6_000].to_vec());
    let reference = reference_tree(&net, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

#[test]
fn interleaved_inserts_and_deletes_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(23);
    let schema = gen.schema();
    let all = gen.generate_vec(10_000);
    let algo = Boat::new(config(2300));
    let base = mem(&schema, all[..4_000].to_vec());
    let (mut model, _) = algo.fit_model(&base).unwrap();

    // +[4000,7000), -[1000,2000), +[7000,10000), -[5000,6000)
    model
        .insert(&mem(&schema, all[4_000..7_000].to_vec()))
        .unwrap();
    model
        .delete(&mem(&schema, all[1_000..2_000].to_vec()))
        .unwrap();
    model
        .insert(&mem(&schema, all[7_000..10_000].to_vec()))
        .unwrap();
    model
        .delete(&mem(&schema, all[5_000..6_000].to_vec()))
        .unwrap();

    let mut net: Vec<Record> = Vec::new();
    net.extend_from_slice(&all[..1_000]);
    net.extend_from_slice(&all[2_000..5_000]);
    net.extend_from_slice(&all[6_000..10_000]);
    let reference = reference_tree(&mem(&schema, net), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

#[test]
fn same_distribution_updates_do_not_rescan_base() {
    // The paper's key cost claim: updates from the same distribution only
    // scan the chunk. We verify via scan accounting on the base dataset.
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(24);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let base = mem(&schema, all[..6_000].to_vec());
    let algo = Boat::new(config(2400));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let scans_after_build = base.stats().snapshot().scans;

    let chunk = mem(&schema, all[6_000..].to_vec());
    model.insert(&chunk).unwrap();
    model.maintain().unwrap();
    assert_eq!(
        base.stats().snapshot().scans,
        scans_after_build,
        "incremental insert + maintenance must not rescan the base dataset"
    );
    assert_eq!(
        chunk.stats().snapshot().scans,
        1,
        "exactly one scan over the chunk"
    );
}

#[test]
fn drift_chunk_still_yields_exact_tree() {
    // Figure 14's scenario: new chunks follow a distribution that differs
    // in part of the attribute space. Verification must fail exactly where
    // the drift bites, subtrees get rebuilt, and the tree stays exact.
    let base_gen = GeneratorConfig::new(LabelFunction::F1).with_seed(25);
    let drift_gen = GeneratorConfig::new(LabelFunction::F1Drift).with_seed(26);
    let schema = base_gen.schema();
    let base_records = base_gen.generate_vec(6_000);
    let drift_records = drift_gen.generate_vec(4_000);

    let algo = Boat::new(config(2500));
    let (mut model, _) = algo.fit_model(&mem(&schema, base_records.clone())).unwrap();
    model.insert(&mem(&schema, drift_records.clone())).unwrap();

    let report = model.maintain().unwrap();
    let mut net = base_records;
    net.extend(drift_records);
    let reference = reference_tree(&mem(&schema, net), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
    let _ = report; // drift may or may not surface as Failed at this scale
}

#[test]
fn insert_then_delete_roundtrips_to_original_tree() {
    let gen = GeneratorConfig::new(LabelFunction::F7).with_seed(27);
    let schema = gen.schema();
    let all = gen.generate_vec(7_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let algo = Boat::new(config(2600));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let original = model.tree().unwrap().clone();

    let chunk = mem(&schema, all[5_000..].to_vec());
    model.insert(&chunk).unwrap();
    model.delete(&chunk).unwrap();
    assert_eq!(
        model.tree().unwrap(),
        &original,
        "insert followed by delete must round-trip"
    );
}

#[test]
fn deleting_a_missing_record_errors() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(28);
    let schema = gen.schema();
    let base = mem(&schema, gen.generate_vec(3_000));
    let algo = Boat::new(config(2700));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let foreign = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(999)
        .generate_vec(1);
    let result = model.delete(&mem(&schema, foreign));
    assert!(
        result.is_err(),
        "deleting a record that was never inserted must fail"
    );
}

/// Regression: deleting a never-inserted record used to subtract from
/// per-class counters unconditionally, underflowing `u64`s (caught by
/// `-C overflow-checks`, silent corruption in release). `validate_delete`
/// must reject the record *before* any counter is touched, leaving the
/// model fully usable.
#[test]
fn failed_delete_leaves_model_usable() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(31);
    let schema = gen.schema();
    let all = gen.generate_vec(6_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let algo = Boat::new(config(3100));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let before = model.tree().unwrap().clone();

    // A foreign record: same schema, different generator stream.
    let foreign = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(4_242)
        .generate_vec(3);
    let err = model.delete(&mem(&schema, foreign)).unwrap_err();
    assert!(
        matches!(err, boat_data::DataError::Invalid(_)),
        "absent delete must surface as DataError::Invalid, got {err:?}"
    );

    // The failed delete must be a pure no-op: tree unchanged, and further
    // maintenance still produces exact trees.
    assert_eq!(
        model.tree().unwrap(),
        &before,
        "failed delete must not mutate"
    );
    model.insert(&mem(&schema, all[5_000..].to_vec())).unwrap();
    let reference = reference_tree(&mem(&schema, all), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

/// Same regression at the bucket level: a record whose class exists at the
/// node but whose numeric value lands in a bucket that never saw that
/// class must also be rejected (the old code underflowed the bucket cell).
#[test]
fn failed_delete_of_unseen_value_is_rejected() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(32);
    let schema = gen.schema();
    let all = gen.generate_vec(5_000);
    let base = mem(&schema, all.clone());
    let algo = Boat::new(config(3200));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let before = model.tree().unwrap().clone();

    // Take a real record but nudge its numeric attributes far outside the
    // observed range — the class totals still match, the cells don't.
    let fields: Vec<boat_data::Field> = (0..schema.attributes().len())
        .map(|a| match all[0].field(a) {
            boat_data::Field::Num(v) => boat_data::Field::Num(v + 1e9),
            other => other,
        })
        .collect();
    let phantom = Record::new(fields, all[0].label());
    let result = model.delete(&mem(&schema, vec![phantom]));
    assert!(
        result.is_err(),
        "unseen-value delete must fail, not underflow"
    );
    assert_eq!(model.tree().unwrap(), &before);
}

/// Round-trip identity must also hold when the cleanup scan ran sharded
/// (the parked sets / frontier buffers the updates stream into were merged
/// from per-shard state).
#[test]
fn roundtrip_under_parallel_cleanup() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(33);
    let schema = gen.schema();
    let all = gen.generate_vec(7_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let mut cfg = config(3300);
    cfg.cleanup_threads = 4;
    let algo = Boat::new(cfg);
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let original = model.tree().unwrap().clone();

    let chunk = mem(&schema, all[5_000..].to_vec());
    model.insert(&chunk).unwrap();
    let reference = reference_tree(&mem(&schema, all.clone()), Gini, GrowthLimits::default());
    assert_eq!(model.tree().unwrap(), &reference.unwrap());
    model.delete(&chunk).unwrap();
    assert_eq!(
        model.tree().unwrap(),
        &original,
        "insert(C); delete(C) must round-trip under sharded cleanup"
    );

    // And an absent delete still errors cleanly on the merged state.
    let foreign = GeneratorConfig::new(LabelFunction::F6)
        .with_seed(5_555)
        .generate_vec(1);
    assert!(model.delete(&mem(&schema, foreign)).is_err());
    assert_eq!(model.tree().unwrap(), &original);
}

/// Regression: `MaintainReport::regrown_subtrees` only counted the jobs of
/// promotion round 0. It must equal the number of completion jobs actually
/// *executed* across every round — pinned here against the
/// `boat.jobs.executed` counter delta over the same maintenance pass.
#[test]
fn regrown_subtrees_counts_every_promotion_round() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(34);
    let schema = gen.schema();
    let all = gen.generate_vec(12_000);
    let base = mem(&schema, all[..4_000].to_vec());
    let algo = Boat::new(config(3400));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let _ = model.tree().unwrap();

    // Triple the data: frontier families outgrow in_memory_threshold=400,
    // forcing promotions — which splice subtrees and trigger follow-up
    // rounds whose jobs the old accounting dropped.
    model.insert(&mem(&schema, all[4_000..].to_vec())).unwrap();
    let before = model.metrics().snapshot();
    let report = model.maintain().unwrap();
    let executed = model
        .metrics()
        .snapshot()
        .since(&before)
        .counter("boat.jobs.executed");
    assert!(
        executed > 0,
        "growth must execute at least one completion job"
    );
    assert_eq!(
        report.regrown_subtrees, executed,
        "regrown_subtrees must count executed jobs across all rounds"
    );
    let reference = reference_tree(&mem(&schema, all), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

/// Regression: an empty (or cleanly failed) chunk used to invalidate the
/// materialized tree, forcing a full needless verification pass on the
/// next `tree()`. Pinned via the `boat.incremental.maintain_runs` counter.
#[test]
fn empty_chunk_does_not_invalidate_tree() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(35);
    let schema = gen.schema();
    let base = mem(&schema, gen.generate_vec(4_000));
    let algo = Boat::new(config(3500));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let _ = model.tree().unwrap(); // materialize

    let before = model.metrics().snapshot();
    let report = model.insert(&mem(&schema, Vec::new())).unwrap();
    assert_eq!(report.inserted, 0);
    model.delete(&mem(&schema, Vec::new())).unwrap();
    // An absent delete that fails validation on its first record is a
    // guaranteed no-op too.
    let foreign = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(6_060)
        .generate_vec(1);
    let _ = model.delete(&mem(&schema, foreign)).unwrap_err();

    let _ = model.tree().unwrap();
    let delta = model.metrics().snapshot().since(&before);
    assert_eq!(
        delta.counter("boat.incremental.maintain_runs"),
        0,
        "no-op chunks must not schedule maintenance"
    );
    assert_eq!(delta.counter("boat.incremental.update_chunks"), 3);
}

#[test]
fn update_with_mismatched_schema_errors() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(29);
    let base = mem(&gen.schema(), gen.generate_vec(2_000));
    let algo = Boat::new(config(2800));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let other = GeneratorConfig::new(LabelFunction::F1).with_extra_attrs(1);
    let chunk = MemoryDataset::new(other.schema(), other.generate_vec(10));
    assert!(model.insert(&chunk).is_err());
}

#[test]
fn many_small_chunks_match_one_big_chunk() {
    // Figure 15's question: does chunk granularity change the result? It
    // must not (and the harness shows it barely changes the cost).
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(30);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let algo = Boat::new(config(2900));

    let (mut small_chunks, _) = algo
        .fit_model(&mem(&schema, all[..3_000].to_vec()))
        .unwrap();
    for start in (3_000..9_000).step_by(1_000) {
        small_chunks
            .insert(&mem(&schema, all[start..start + 1_000].to_vec()))
            .unwrap();
    }

    let (mut one_chunk, _) = algo
        .fit_model(&mem(&schema, all[..3_000].to_vec()))
        .unwrap();
    one_chunk
        .insert(&mem(&schema, all[3_000..].to_vec()))
        .unwrap();

    assert_eq!(small_chunks.tree().unwrap(), one_chunk.tree().unwrap());
    let reference = reference_tree(&mem(&schema, all), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(small_chunks.tree().unwrap(), &reference);
}

/// Batched-deletion regression (the `remove_many` fix): deleting a chunk
/// rewrites each touched spill buffer **once**, not once per deleted
/// record, so the `data.spill.*` write counters must shrink dramatically
/// versus issuing the same deletions one record at a time — while both
/// paths leave byte-identical maintained trees.
#[test]
fn batch_delete_shrinks_spill_write_traffic() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(31);
    let schema = gen.schema();
    let all = gen.generate_vec(6_000);
    // Tight spill budget so parked sets and families genuinely hit disk.
    let cfg = BoatConfig {
        spill_budget: 8,
        ..config(3100)
    };
    let victims = &all[4_500..];

    let deletion_io = |chunks: Vec<Vec<Record>>| {
        let registry = boat_obs::Registry::new();
        let algo = Boat::new(cfg.clone()).with_metrics(registry.clone());
        let (mut model, _) = algo.fit_model(&mem(&schema, all.clone())).unwrap();
        let before = registry.snapshot();
        for chunk in chunks {
            model.delete(&mem(&schema, chunk)).unwrap();
        }
        let delta = registry.snapshot().since(&before);
        let tree = model.tree().unwrap().clone();
        (
            delta.counter("data.spill.records_written"),
            delta.counter("data.spill.bytes_written"),
            tree,
        )
    };

    // One record per chunk: every deletion pays its own buffer rewrite —
    // the old O(D·n) spill traffic.
    let (serial_records, serial_bytes, serial_tree) =
        deletion_io(victims.iter().map(|r| vec![r.clone()]).collect());
    // One chunk: every touched buffer is rewritten once.
    let (batch_records, batch_bytes, batch_tree) = deletion_io(vec![victims.to_vec()]);

    assert_eq!(serial_tree, batch_tree, "delete batching changed the tree");
    let reference = reference_tree(
        &mem(&schema, all[..4_500].to_vec()),
        Gini,
        GrowthLimits::default(),
    )
    .unwrap();
    assert_eq!(batch_tree, reference);
    assert!(
        batch_records * 4 <= serial_records && batch_bytes * 4 <= serial_bytes,
        "batched deletes must shrink spill writes by at least 4x: \
         batch wrote {batch_records} records / {batch_bytes} bytes, \
         per-record wrote {serial_records} records / {serial_bytes} bytes"
    );
}
