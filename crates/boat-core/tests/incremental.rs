//! Paper §4: incremental maintenance. After any sequence of insert/delete
//! chunks, the maintained tree must be *identical* to a full rebuild on the
//! net training data — including under distribution drift, where only the
//! affected subtree is rebuilt.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::dataset::RecordSource;
use boat_data::{MemoryDataset, Record};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::{Gini, GrowthLimits};

fn config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_200,
        bootstrap_reps: 10,
        bootstrap_sample_size: 500,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed,
        ..BoatConfig::default()
    }
}

fn mem(schema: &std::sync::Arc<boat_data::Schema>, records: Vec<Record>) -> MemoryDataset {
    MemoryDataset::new(schema.clone(), records)
}

/// Insert chunks one at a time; after each, the model tree must equal the
/// reference tree over the accumulated records.
#[test]
fn insertions_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(21);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let algo = Boat::new(config(2100));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let mut upto = 5_000;
    for chunk_end in [7_000, 9_000] {
        let chunk = mem(&schema, all[upto..chunk_end].to_vec());
        let report = model.insert(&chunk).unwrap();
        assert_eq!(report.inserted, (chunk_end - upto) as u64);
        upto = chunk_end;
        let net = mem(&schema, all[..upto].to_vec());
        let reference = reference_tree(&net, Gini, GrowthLimits::default()).unwrap();
        assert_eq!(
            model.tree().unwrap(),
            &reference,
            "after inserting up to {upto}: maintained tree != rebuild"
        );
    }
}

#[test]
fn deletions_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(22);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let base = mem(&schema, all.clone());
    let algo = Boat::new(config(2200));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    // Delete the *most recent* chunk (the paper's expiry scenario).
    let expired = mem(&schema, all[6_000..].to_vec());
    let report = model.delete(&expired).unwrap();
    assert_eq!(report.deleted, 2_000);
    let net = mem(&schema, all[..6_000].to_vec());
    let reference = reference_tree(&net, Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

#[test]
fn interleaved_inserts_and_deletes_match_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(23);
    let schema = gen.schema();
    let all = gen.generate_vec(10_000);
    let algo = Boat::new(config(2300));
    let base = mem(&schema, all[..4_000].to_vec());
    let (mut model, _) = algo.fit_model(&base).unwrap();

    // +[4000,7000), -[1000,2000), +[7000,10000), -[5000,6000)
    model
        .insert(&mem(&schema, all[4_000..7_000].to_vec()))
        .unwrap();
    model
        .delete(&mem(&schema, all[1_000..2_000].to_vec()))
        .unwrap();
    model
        .insert(&mem(&schema, all[7_000..10_000].to_vec()))
        .unwrap();
    model
        .delete(&mem(&schema, all[5_000..6_000].to_vec()))
        .unwrap();

    let mut net: Vec<Record> = Vec::new();
    net.extend_from_slice(&all[..1_000]);
    net.extend_from_slice(&all[2_000..5_000]);
    net.extend_from_slice(&all[6_000..10_000]);
    let reference = reference_tree(&mem(&schema, net), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
}

#[test]
fn same_distribution_updates_do_not_rescan_base() {
    // The paper's key cost claim: updates from the same distribution only
    // scan the chunk. We verify via scan accounting on the base dataset.
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(24);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let base = mem(&schema, all[..6_000].to_vec());
    let algo = Boat::new(config(2400));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let scans_after_build = base.stats().snapshot().scans;

    let chunk = mem(&schema, all[6_000..].to_vec());
    model.insert(&chunk).unwrap();
    model.maintain().unwrap();
    assert_eq!(
        base.stats().snapshot().scans,
        scans_after_build,
        "incremental insert + maintenance must not rescan the base dataset"
    );
    assert_eq!(
        chunk.stats().snapshot().scans,
        1,
        "exactly one scan over the chunk"
    );
}

#[test]
fn drift_chunk_still_yields_exact_tree() {
    // Figure 14's scenario: new chunks follow a distribution that differs
    // in part of the attribute space. Verification must fail exactly where
    // the drift bites, subtrees get rebuilt, and the tree stays exact.
    let base_gen = GeneratorConfig::new(LabelFunction::F1).with_seed(25);
    let drift_gen = GeneratorConfig::new(LabelFunction::F1Drift).with_seed(26);
    let schema = base_gen.schema();
    let base_records = base_gen.generate_vec(6_000);
    let drift_records = drift_gen.generate_vec(4_000);

    let algo = Boat::new(config(2500));
    let (mut model, _) = algo.fit_model(&mem(&schema, base_records.clone())).unwrap();
    model.insert(&mem(&schema, drift_records.clone())).unwrap();

    let report = model.maintain().unwrap();
    let mut net = base_records;
    net.extend(drift_records);
    let reference = reference_tree(&mem(&schema, net), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(model.tree().unwrap(), &reference);
    let _ = report; // drift may or may not surface as Failed at this scale
}

#[test]
fn insert_then_delete_roundtrips_to_original_tree() {
    let gen = GeneratorConfig::new(LabelFunction::F7).with_seed(27);
    let schema = gen.schema();
    let all = gen.generate_vec(7_000);
    let base = mem(&schema, all[..5_000].to_vec());
    let algo = Boat::new(config(2600));
    let (mut model, _) = algo.fit_model(&base).unwrap();
    let original = model.tree().unwrap().clone();

    let chunk = mem(&schema, all[5_000..].to_vec());
    model.insert(&chunk).unwrap();
    model.delete(&chunk).unwrap();
    assert_eq!(
        model.tree().unwrap(),
        &original,
        "insert followed by delete must round-trip"
    );
}

#[test]
fn deleting_a_missing_record_errors() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(28);
    let schema = gen.schema();
    let base = mem(&schema, gen.generate_vec(3_000));
    let algo = Boat::new(config(2700));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let foreign = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(999)
        .generate_vec(1);
    let result = model.delete(&mem(&schema, foreign));
    assert!(
        result.is_err(),
        "deleting a record that was never inserted must fail"
    );
}

#[test]
fn update_with_mismatched_schema_errors() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(29);
    let base = mem(&gen.schema(), gen.generate_vec(2_000));
    let algo = Boat::new(config(2800));
    let (mut model, _) = algo.fit_model(&base).unwrap();

    let other = GeneratorConfig::new(LabelFunction::F1).with_extra_attrs(1);
    let chunk = MemoryDataset::new(other.schema(), other.generate_vec(10));
    assert!(model.insert(&chunk).is_err());
}

#[test]
fn many_small_chunks_match_one_big_chunk() {
    // Figure 15's question: does chunk granularity change the result? It
    // must not (and the harness shows it barely changes the cost).
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(30);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let algo = Boat::new(config(2900));

    let (mut small_chunks, _) = algo
        .fit_model(&mem(&schema, all[..3_000].to_vec()))
        .unwrap();
    for start in (3_000..9_000).step_by(1_000) {
        small_chunks
            .insert(&mem(&schema, all[start..start + 1_000].to_vec()))
            .unwrap();
    }

    let (mut one_chunk, _) = algo
        .fit_model(&mem(&schema, all[..3_000].to_vec()))
        .unwrap();
    one_chunk
        .insert(&mem(&schema, all[3_000..].to_vec()))
        .unwrap();

    assert_eq!(small_chunks.tree().unwrap(), one_chunk.tree().unwrap());
    let reference = reference_tree(&mem(&schema, all), Gini, GrowthLimits::default()).unwrap();
    assert_eq!(small_chunks.tree().unwrap(), &reference);
}
