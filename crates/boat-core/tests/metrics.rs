//! Cost-model invariants asserted on the observability snapshot.
//!
//! The paper's performance claims are stated in scans and bounded spill;
//! `BoatRunStats::metrics` (the per-run delta of the owning `Boat`'s
//! `boat_obs` registry) makes them directly checkable instead of inferred
//! from wall time.

use boat_core::{Boat, BoatConfig};
use boat_data::dataset::RecordSource;
use boat_data::{FileDataset, IoStats};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::GrowthLimits;

fn config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_500,
        bootstrap_reps: 10,
        bootstrap_sample_size: 600,
        in_memory_threshold: 500,
        spill_budget: 128,
        seed,
        ..BoatConfig::default()
    }
}

/// The paper's operating regime (§5): growth stopped at 15 % families, the
/// in-memory switch at the stopping size. The cost-model claims ("two
/// scans", "spill bounded by the parked/frontier subset of the input") are
/// statements about *this* regime — a deliberately tiny in-memory threshold
/// instead forces recursive partitioning whose temp traffic can exceed the
/// input.
fn paper_config(n: u64, seed: u64) -> BoatConfig {
    let stop = (n * 3 / 20).max(500);
    let mut cfg = BoatConfig::scaled_for(n).with_seed(seed);
    cfg.limits = GrowthLimits {
        stop_family_size: Some(stop),
        ..GrowthLimits::default()
    };
    cfg.in_memory_threshold = stop;
    cfg
}

fn on_disk(n: u64, seed: u64, key: &str) -> FileDataset {
    let path = std::env::temp_dir().join(format!(
        "boat-metrics-{key}-{}-{n}.boat",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    GeneratorConfig::new(LabelFunction::F1)
        .with_seed(seed)
        .materialize_with_stats(&path, n, IoStats::new())
        .unwrap()
}

#[test]
fn clean_fit_makes_exactly_two_scans() {
    let data = on_disk(8_000, 41, "twoscan");
    let fit = Boat::new(paper_config(8_000, 4100)).fit(&data).unwrap();
    let m = &fit.stats.metrics;
    assert_eq!(fit.stats.failed_nodes, 0, "fixture must verify cleanly");
    // The paper's headline, checked three independent ways that must agree:
    // classic stats, the fit-phase counter, and the mirrored I/O counter.
    assert_eq!(fit.stats.scans_over_input, 2);
    assert_eq!(m.counter("boat.fit.input_scans"), 2);
    assert_eq!(m.counter("data.input.scans"), 2);
    assert_eq!(m.counter("boat.jobs.collection_scans"), 0);
    // Two scans = every input record read exactly twice.
    assert_eq!(m.counter("data.input.records_read"), 2 * data.len());
}

#[test]
fn spill_stays_within_input_budget() {
    let data = on_disk(8_000, 42, "spill");
    let fit = Boat::new(paper_config(8_000, 4200)).fit(&data).unwrap();
    let m = &fit.stats.metrics;
    let input_bytes = m.counter("data.input.bytes_read");
    let spill_written = m.counter("data.spill.bytes_written");
    assert!(input_bytes > 0);
    // Cleanup only writes parked / frontier tuples to temporary files, so
    // spill traffic is bounded by input traffic.
    assert!(
        spill_written <= input_bytes,
        "spill {spill_written}B must not exceed input {input_bytes}B"
    );
    // The structured snapshot agrees with the classic spill_io stats.
    assert_eq!(spill_written, fit.stats.spill_io.bytes_written);
    assert_eq!(
        m.counter("data.spill.records_written"),
        fit.stats.spill_io.records_written
    );
}

#[test]
fn phase_spans_cover_fit_time() {
    let data = on_disk(8_000, 43, "phases");
    let t = std::time::Instant::now();
    let fit = Boat::new(paper_config(8_000, 4300)).fit(&data).unwrap();
    let wall = t.elapsed();
    let m = &fit.stats.metrics;
    let phase_ns = m.histogram_sum_by_prefix("boat.phase.");
    assert!(
        phase_ns as f64 >= 0.9 * wall.as_nanos() as f64,
        "phase spans ({phase_ns}ns) must cover >= 90% of fit wall time ({:?})",
        wall
    );
    for phase in ["sample", "bootstrap", "cleanup", "verify"] {
        let h = m
            .histogram(&format!("boat.phase.{phase}"))
            .unwrap_or_else(|| panic!("boat.phase.{phase} span missing"));
        assert!(h.count >= 1, "boat.phase.{phase} must have fired");
    }
}

#[test]
fn metrics_are_per_run_deltas() {
    let data = on_disk(6_000, 44, "deltas");
    let algo = Boat::new(config(4400));
    let first = algo.fit(&data).unwrap();
    let second = algo.fit(&data).unwrap();
    // Same algorithm instance, same registry — but each run's snapshot is
    // the delta over that run only.
    for fit in [&first, &second] {
        assert_eq!(fit.stats.metrics.counter("boat.fit.runs"), 1);
        assert_eq!(fit.stats.metrics.counter("data.input.scans"), 2);
    }
    // The shared registry accumulated both runs.
    assert_eq!(algo.metrics().snapshot().counter("boat.fit.runs"), 2);
}

#[test]
fn verification_verdicts_account_for_every_coarse_node() {
    let data = on_disk(8_000, 45, "verdicts");
    let fit = Boat::new(paper_config(8_000, 4500)).fit(&data).unwrap();
    let m = &fit.stats.metrics;
    assert_eq!(m.counter("boat.verify.pass"), fit.stats.verified_nodes);
    assert_eq!(m.counter("boat.verify.fail"), fit.stats.failed_nodes);
    // On a clean fit, internal verdicts + leaves + frontier cover the whole
    // coarse tree (re-verification rounds can revisit nodes, hence >=). A
    // failed node discards its subtree, so descendants then carry no
    // verdict — gate on the clean case.
    if fit.stats.failed_nodes == 0 {
        assert!(
            m.counter("boat.verify.pass")
                + m.counter("boat.verify.leaf")
                + m.counter("boat.verify.frontier")
                >= fit.stats.coarse_nodes,
            "verdicts must cover all {} coarse nodes",
            fit.stats.coarse_nodes
        );
    }
}

#[test]
fn incremental_counters_track_updates() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(46);
    let schema = gen.schema();
    let all = gen.generate_vec(6_000);
    let base = boat_data::MemoryDataset::new(schema.clone(), all[..4_000].to_vec());
    let algo = Boat::new(config(4600));
    let (mut model, stats) = algo.fit_model(&base).unwrap();
    assert_eq!(stats.metrics.counter("boat.fit.runs"), 1);

    let chunk = boat_data::MemoryDataset::new(schema.clone(), all[4_000..].to_vec());
    model.insert(&chunk).unwrap();
    let _ = model.tree().unwrap();
    model.delete(&chunk).unwrap();
    let _ = model.tree().unwrap();

    let snap = model.metrics().snapshot();
    assert_eq!(snap.counter("boat.incremental.update_chunks"), 2);
    assert_eq!(snap.counter("boat.incremental.inserts"), 2_000);
    assert_eq!(snap.counter("boat.incremental.deletes"), 2_000);
    assert_eq!(snap.counter("boat.incremental.maintain_runs"), 2);
    let update_span = snap.histogram("boat.incremental.update").unwrap();
    assert_eq!(update_span.count, 2);
    let maintain_span = snap.histogram("boat.incremental.maintain").unwrap();
    assert_eq!(maintain_span.count, 2);
}

#[test]
fn snapshot_exports_json_with_run_counters() {
    let data = on_disk(5_000, 47, "json");
    let fit = Boat::new(config(4700)).fit(&data).unwrap();
    let json = fit.stats.metrics.to_json();
    for needle in [
        "\"counters\":",
        "\"gauges\":",
        "\"histograms\":",
        "\"boat.fit.runs\":1",
        "\"data.input.scans\":2",
        "\"boat.phase.cleanup\":",
    ] {
        assert!(
            json.contains(needle),
            "JSON export missing {needle}: {json}"
        );
    }
}
