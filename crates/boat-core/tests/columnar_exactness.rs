//! Differential oracle for the columnar sample-phase engine.
//!
//! The columnar engine (presorted attribute indices + weighted bootstrap)
//! must be *invisible*: for any schema, dataset, and seed, running BOAT
//! with `sample_engine: Columnar` must produce exactly the artifacts the
//! row-materializing engine produces — byte-identical serialized coarse
//! trees out of the sampling phase, and byte-identical serialized final
//! models out of the full pipeline (sampling + cleanup + verification),
//! at `cleanup_threads` 1 and 4 alike. Property tests draw random schema
//! shapes (numeric/categorical mixes), random record tables on coarse
//! value grids (so duplicate values and tie paths are common), and random
//! seeds; a failure prints the first diverging artifact.

use boat_core::coarse::build_coarse_tree;
use boat_core::{Boat, BoatConfig, SampleEngine};
use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};
use boat_obs::Registry;
use boat_tree::{Gini, ImpuritySelector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Attribute shape: `None` = numeric, `Some(card)` = categorical.
type AttrSpec = Option<u32>;

fn arb_attrs() -> impl Strategy<Value = Vec<AttrSpec>> {
    prop::collection::vec(prop_oneof![Just(None), (2u32..6).prop_map(Some)], 1..5)
}

fn make_schema(attrs: &[AttrSpec], n_classes: usize) -> Arc<Schema> {
    let attrs: Vec<Attribute> = attrs
        .iter()
        .enumerate()
        .map(|(i, spec)| match spec {
            None => Attribute::numeric(format!("x{i}")),
            Some(card) => Attribute::categorical(format!("c{i}"), *card),
        })
        .collect();
    Arc::new(Schema::new(attrs, n_classes as u16).expect("valid schema"))
}

/// Random records on a coarse numeric grid (multiples of 0.5, including a
/// negative band) so duplicate values, ties, and interval boundaries are
/// common. Labels follow the first attribute when possible, with noise, so
/// the trees are non-trivial without being pure noise-fitting.
fn make_records(
    schema: &Schema,
    attrs: &[AttrSpec],
    n: usize,
    n_classes: usize,
    seed: u64,
) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let fields: Vec<Field> = attrs
                .iter()
                .map(|spec| match spec {
                    None => Field::Num((rng.random_range(0..60i32) - 10) as f64 * 0.5),
                    Some(card) => Field::Cat(rng.random_range(0..*card)),
                })
                .collect();
            let noisy = rng.random_range(0..5u32) == 0;
            let label = if noisy {
                rng.random_range(0..n_classes as u32) as u16
            } else {
                match &fields[0] {
                    Field::Num(v) => u16::from(*v >= 7.5) % n_classes as u16,
                    Field::Cat(c) => (*c % n_classes as u32) as u16,
                }
            };
            debug_assert!(schema.n_classes() >= n_classes);
            Record::new(fields, label)
        })
        .collect()
}

/// Small config that still exercises the full pipeline: the dataset is
/// larger than both `sample_size` (real reservoir sampling) and
/// `in_memory_threshold` (real cleanup scan + verification).
fn small_config(seed: u64, engine: SampleEngine, threads: usize) -> BoatConfig {
    BoatConfig {
        sample_size: 200,
        bootstrap_reps: 6,
        bootstrap_sample_size: 100,
        in_memory_threshold: 120,
        spill_budget: 16,
        cleanup_chunk_size: 128,
        seed,
        ..BoatConfig::default()
    }
    .with_sample_engine(engine)
    .with_cleanup_threads(threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling phase in isolation: identical coarse trees, byte for byte,
    /// from the same sample and seed.
    #[test]
    fn coarse_trees_are_byte_identical(
        attrs in arb_attrs(),
        n_classes in 2usize..4,
        n in 250usize..600,
        data_seed in 0u64..1_000_000,
        boat_seed in 0u64..1_000_000,
    ) {
        let schema = make_schema(&attrs, n_classes);
        let sample = make_records(&schema, &attrs, n, n_classes, data_seed);
        let selector = ImpuritySelector::new(Gini);
        let full_size = (n as u64) * 8;
        let coarse_of = |engine: SampleEngine| {
            let config = small_config(boat_seed, engine, 1);
            let mut rng = StdRng::seed_from_u64(boat_seed ^ 0x0B0A7);
            build_coarse_tree(
                &schema,
                &sample,
                &selector,
                &config,
                full_size,
                &mut rng,
                &Registry::new(),
            )
        };
        let columnar = coarse_of(SampleEngine::Columnar);
        let rows = coarse_of(SampleEngine::Rows);
        prop_assert_eq!(&columnar, &rows, "coarse trees diverge");
        // "Byte-identical" in the serialized sense too: the rendered form
        // carries every split constant at full float precision.
        prop_assert_eq!(
            format!("{columnar:?}").into_bytes(),
            format!("{rows:?}").into_bytes()
        );
    }

    /// Full pipeline: byte-identical serialized final models at 1 and 4
    /// cleanup threads, plus identical deterministic run statistics.
    #[test]
    fn full_pipeline_models_are_byte_identical(
        attrs in arb_attrs(),
        n_classes in 2usize..4,
        n in 450usize..900,
        data_seed in 0u64..1_000_000,
        boat_seed in 0u64..1_000_000,
    ) {
        let schema = make_schema(&attrs, n_classes);
        let records = make_records(&schema, &attrs, n, n_classes, data_seed);
        for threads in [1usize, 4] {
            let fit_of = |engine: SampleEngine| {
                let source = MemoryDataset::new(schema.clone(), records.clone());
                Boat::new(small_config(boat_seed, engine, threads))
                    .fit(&source)
                    .expect("boat fit")
            };
            let columnar = fit_of(SampleEngine::Columnar);
            let rows = fit_of(SampleEngine::Rows);
            prop_assert_eq!(
                columnar.tree.to_bytes(),
                rows.tree.to_bytes(),
                "threads={}: serialized models diverge\ncolumnar:\n{}\nrows:\n{}",
                threads,
                columnar.tree.render(&schema),
                rows.tree.render(&schema),
            );
            // The engines must also agree on everything verification saw:
            // scan counts, parked/spilled tuples, and verdicts.
            prop_assert_eq!(columnar.stats.scans_over_input, rows.stats.scans_over_input);
            prop_assert_eq!(columnar.stats.coarse_nodes, rows.stats.coarse_nodes);
            prop_assert_eq!(columnar.stats.verified_nodes, rows.stats.verified_nodes);
            prop_assert_eq!(columnar.stats.failed_nodes, rows.stats.failed_nodes);
            prop_assert_eq!(columnar.stats.parked_tuples, rows.stats.parked_tuples);
            prop_assert_eq!(columnar.stats.spilled_tuples, rows.stats.spilled_tuples);
        }
    }
}

/// Non-property regression pin: one fixed, fully-specified case that fails
/// loudly (outside the proptest harness) if either engine drifts.
#[test]
fn fixed_case_agrees_across_engines_and_threads() {
    let attrs: Vec<AttrSpec> = vec![None, Some(4), None, Some(3)];
    let schema = make_schema(&attrs, 3);
    let records = make_records(&schema, &attrs, 700, 3, 7_001);
    let mut bytes: Option<Vec<u8>> = None;
    for threads in [1usize, 4] {
        for engine in [SampleEngine::Columnar, SampleEngine::Rows] {
            let source = MemoryDataset::new(schema.clone(), records.clone());
            let fit = Boat::new(small_config(9_001, engine, threads))
                .fit(&source)
                .expect("boat fit");
            let b = fit.tree.to_bytes();
            match &bytes {
                None => bytes = Some(b),
                Some(first) => assert_eq!(
                    &b, first,
                    "engine={engine:?} threads={threads} diverges from the first run"
                ),
            }
        }
    }
}
