//! Differential oracle for the sharded (partitioned) out-of-core fit.
//!
//! `Boat::fit_sharded` must be *invisible* in the output: for any schema,
//! dataset, and seed, the serialized final model must be byte-identical to
//! the serial `Boat::fit` at every shard count — the per-shard stratified
//! sample only changes the optimistic guess, never the exact result, and
//! the partitioned cleanup reduction is exact. Property tests draw random
//! schema shapes and record tables (as in `columnar_exactness`); fixed
//! tests pin the partition edge cases: more shards than chunks, a chunk
//! larger than the dataset, empty shards, and a shard that only ever sees
//! one class.

use boat_core::{Boat, BoatConfig};
use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Attribute shape: `None` = numeric, `Some(card)` = categorical.
type AttrSpec = Option<u32>;

fn arb_attrs() -> impl Strategy<Value = Vec<AttrSpec>> {
    prop::collection::vec(prop_oneof![Just(None), (2u32..6).prop_map(Some)], 1..5)
}

fn make_schema(attrs: &[AttrSpec], n_classes: usize) -> Arc<Schema> {
    let attrs: Vec<Attribute> = attrs
        .iter()
        .enumerate()
        .map(|(i, spec)| match spec {
            None => Attribute::numeric(format!("x{i}")),
            Some(card) => Attribute::categorical(format!("c{i}"), *card),
        })
        .collect();
    Arc::new(Schema::new(attrs, n_classes as u16).expect("valid schema"))
}

/// Random records on a coarse numeric grid so duplicate values, ties, and
/// interval boundaries are common (same shape as the columnar oracle).
fn make_records(attrs: &[AttrSpec], n: usize, n_classes: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let fields: Vec<Field> = attrs
                .iter()
                .map(|spec| match spec {
                    None => Field::Num((rng.random_range(0..60i32) - 10) as f64 * 0.5),
                    Some(card) => Field::Cat(rng.random_range(0..*card)),
                })
                .collect();
            let noisy = rng.random_range(0..5u32) == 0;
            let label = if noisy {
                rng.random_range(0..n_classes as u32) as u16
            } else {
                match &fields[0] {
                    Field::Num(v) => u16::from(*v >= 7.5) % n_classes as u16,
                    Field::Cat(c) => (*c % n_classes as u32) as u16,
                }
            };
            Record::new(fields, label)
        })
        .collect()
}

fn small_config(seed: u64, fit_shards: usize) -> BoatConfig {
    BoatConfig {
        sample_size: 200,
        bootstrap_reps: 6,
        bootstrap_sample_size: 100,
        in_memory_threshold: 120,
        spill_budget: 16,
        cleanup_chunk_size: 128,
        seed,
        ..BoatConfig::default()
    }
    .with_fit_shards(fit_shards)
}

/// Fit `records` at every shard count in `shard_counts` (plus the serial
/// `fit`) and assert all serialized models agree byte for byte.
fn assert_shard_invariance(schema: &Arc<Schema>, records: &[Record], seed: u64, shards: &[usize]) {
    let source = MemoryDataset::new(schema.clone(), records.to_vec());
    let serial = Boat::new(small_config(seed, 1)).fit(&source).expect("fit");
    let reference = serial.tree.to_bytes();
    for &k in shards {
        let source = MemoryDataset::new(schema.clone(), records.to_vec());
        let fit = Boat::new(small_config(seed, k))
            .fit_sharded(&source)
            .expect("fit_sharded");
        assert_eq!(
            fit.tree.to_bytes(),
            reference,
            "shards={k}: serialized model diverges from serial fit\nsharded:\n{}\nserial:\n{}",
            fit.tree.render(schema),
            serial.tree.render(schema),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full pipeline: byte-identical serialized models across
    /// `fit_shards` ∈ {1, 2, 4, 8} and the serial `fit`.
    #[test]
    fn sharded_models_are_byte_identical(
        attrs in arb_attrs(),
        n_classes in 2usize..4,
        n in 450usize..900,
        data_seed in 0u64..1_000_000,
        boat_seed in 0u64..1_000_000,
    ) {
        let schema = make_schema(&attrs, n_classes);
        let records = make_records(&attrs, n, n_classes, data_seed);
        let source = MemoryDataset::new(schema.clone(), records.clone());
        let serial = Boat::new(small_config(boat_seed, 1)).fit(&source).expect("fit");
        for k in [1usize, 2, 4, 8] {
            let source = MemoryDataset::new(schema.clone(), records.clone());
            let fit = Boat::new(small_config(boat_seed, k))
                .fit_sharded(&source)
                .expect("fit_sharded");
            prop_assert_eq!(
                fit.tree.to_bytes(),
                serial.tree.to_bytes(),
                "shards={}: serialized models diverge\nsharded:\n{}\nserial:\n{}",
                k,
                fit.tree.render(&schema),
                serial.tree.render(&schema),
            );
            // Exactness also pins the verification outcome: the parked and
            // spilled sets depend only on the coarse tree and the data, and
            // the coarse tree depends on the (shard-count-specific) sample,
            // so only the *tree* is invariant — but per-pass accounting is.
            prop_assert_eq!(fit.stats.scans_over_input >= 2, true);
        }
    }
}

/// Edge case: far more shards than chunks — trailing shards own empty
/// ranges and must contribute nothing.
#[test]
fn more_shards_than_chunks_matches_serial() {
    let attrs: Vec<AttrSpec> = vec![None, Some(3)];
    let schema = make_schema(&attrs, 2);
    // 600 records at chunk_size 128 → 5 chunks; 16 and 64 shards leave
    // most shards empty.
    let records = make_records(&attrs, 600, 2, 11);
    assert_shard_invariance(&schema, &records, 3_001, &[1, 5, 16, 64]);
}

/// Edge case: a cleanup chunk larger than the whole dataset — exactly one
/// shard owns the single chunk, every other shard is empty.
#[test]
fn chunk_larger_than_dataset_matches_serial() {
    let attrs: Vec<AttrSpec> = vec![None, None];
    let schema = make_schema(&attrs, 2);
    let records = make_records(&attrs, 500, 2, 13);
    let mut cfg = small_config(5_002, 4);
    cfg.cleanup_chunk_size = 10_000;
    let source = MemoryDataset::new(schema.clone(), records.clone());
    let serial = {
        let mut c = cfg.clone();
        c.fit_shards = 1;
        Boat::new(c).fit(&source).expect("fit")
    };
    let source = MemoryDataset::new(schema.clone(), records.clone());
    let sharded = Boat::new(cfg).fit_sharded(&source).expect("fit_sharded");
    assert_eq!(sharded.tree.to_bytes(), serial.tree.to_bytes());
}

/// Edge case: a dataset sorted by class, partitioned so that entire shards
/// see a single class only (degenerate per-shard samples).
#[test]
fn single_class_shards_match_serial() {
    let attrs: Vec<AttrSpec> = vec![None];
    let schema = make_schema(&attrs, 2);
    let mut rng = StdRng::seed_from_u64(17);
    // First half pure class 0, second half pure class 1, values overlapping
    // enough that the tree is non-trivial.
    let mut records: Vec<Record> = (0..400)
        .map(|_| {
            let v = rng.random_range(0..50u32) as f64;
            Record::new(vec![Field::Num(v)], 0)
        })
        .collect();
    records.extend((0..400).map(|_| {
        let v = rng.random_range(30..80u32) as f64;
        Record::new(vec![Field::Num(v)], 1)
    }));
    assert_shard_invariance(&schema, &records, 7_003, &[2, 4, 8]);
}

/// Edge case: `fit_shards: 0` means "auto" (available parallelism) and must
/// still be exact.
#[test]
fn auto_shards_match_serial() {
    let attrs: Vec<AttrSpec> = vec![None, Some(4)];
    let schema = make_schema(&attrs, 3);
    let records = make_records(&attrs, 700, 3, 19);
    assert_shard_invariance(&schema, &records, 9_004, &[0]);
}
