//! Exactness oracle for the parallel cleanup scan.
//!
//! The parallel scan must be *invisible*: at every thread count BOAT must
//! produce the same tree as the serial scan — which in turn must equal the
//! greedy reference tree — and the deterministic run statistics (scan
//! counts, parked/spilled tuples, verification outcomes, input I/O) must be
//! identical, because verification is supposed to see bit-identical state.
//! This suite sweeps a grid of generator functions × noise levels ×
//! `cleanup_threads ∈ {1, 2, 4, 8}` against both oracles.

use boat_core::{reference_tree, Boat, BoatConfig, BoatRunStats};
use boat_data::dataset::RecordSource;
use boat_data::IoStats;
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_tree::{Gini, Tree};

/// Thread counts required by the acceptance criteria.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn grid_config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_500,
        bootstrap_reps: 12,
        bootstrap_sample_size: 600,
        in_memory_threshold: 400,
        spill_budget: 64,
        // Small chunks so that even the grid's small inputs split into
        // dozens of chunks per worker — otherwise chunking is vacuous.
        cleanup_chunk_size: 256,
        seed,
        ..BoatConfig::default()
    }
}

/// The deterministic subset of [`BoatRunStats`] (everything but wall times
/// and spill-file I/O bytes, which may legitimately vary with buffering).
#[derive(Debug, PartialEq)]
struct DeterministicStats {
    scans_over_input: u64,
    sample_records: u64,
    coarse_nodes: u64,
    verified_nodes: u64,
    failed_nodes: u64,
    parked_tuples: u64,
    spilled_tuples: u64,
    inmem_builds: u64,
    recursive_builds: u64,
    input_records_read: u64,
    input_bytes_read: u64,
}

impl DeterministicStats {
    fn of(stats: &BoatRunStats) -> Self {
        DeterministicStats {
            scans_over_input: stats.scans_over_input,
            sample_records: stats.sample_records,
            coarse_nodes: stats.coarse_nodes,
            verified_nodes: stats.verified_nodes,
            failed_nodes: stats.failed_nodes,
            parked_tuples: stats.parked_tuples,
            spilled_tuples: stats.spilled_tuples,
            inmem_builds: stats.inmem_builds,
            recursive_builds: stats.recursive_builds,
            input_records_read: stats.io.records_read,
            input_bytes_read: stats.io.bytes_read,
        }
    }
}

/// Fit BOAT at every thread count, assert every tree equals both the serial
/// tree and the greedy reference, and that deterministic stats agree.
fn check_grid_point(gen: &GeneratorConfig, n: u64, base: BoatConfig) {
    let source = gen.source(n);
    let reference = reference_tree(&source, Gini, base.limits).expect("reference fit");

    let mut serial: Option<(Tree, DeterministicStats)> = None;
    for threads in THREADS {
        // A fresh source per run so `stats.io` counts this run only.
        let source = gen.source(n);
        let cfg = base.clone().with_cleanup_threads(threads);
        let fit = Boat::new(cfg).fit(&source).expect("boat fit");
        assert_eq!(
            fit.tree,
            reference,
            "threads={threads}: BOAT tree differs from the reference\nBOAT:\n{}\nreference:\n{}\nstats: {}",
            fit.tree.render(source.schema()),
            reference.render(source.schema()),
            fit.stats,
        );
        let det = DeterministicStats::of(&fit.stats);
        match &serial {
            None => serial = Some((fit.tree, det)),
            Some((tree1, det1)) => {
                assert_eq!(
                    &fit.tree, tree1,
                    "threads={threads}: tree differs from the serial (1-thread) tree"
                );
                assert_eq!(
                    &det, det1,
                    "threads={threads}: run statistics differ from the serial run"
                );
            }
        }
    }
}

#[test]
fn parallel_exact_on_f1_grid() {
    for (i, &noise) in [0.0, 0.05].iter().enumerate() {
        check_grid_point(
            &GeneratorConfig::new(LabelFunction::F1)
                .with_seed(21)
                .with_noise(noise),
            5_000,
            grid_config(2_100 + i as u64),
        );
    }
}

#[test]
fn parallel_exact_on_f6_grid() {
    for (i, &noise) in [0.0, 0.05].iter().enumerate() {
        check_grid_point(
            &GeneratorConfig::new(LabelFunction::F6)
                .with_seed(22)
                .with_noise(noise),
            5_000,
            grid_config(2_200 + i as u64),
        );
    }
}

#[test]
fn parallel_exact_on_f7_grid() {
    for (i, &noise) in [0.0, 0.05].iter().enumerate() {
        check_grid_point(
            &GeneratorConfig::new(LabelFunction::F7)
                .with_seed(23)
                .with_noise(noise),
            5_000,
            grid_config(2_300 + i as u64),
        );
    }
}

#[test]
fn parallel_exact_with_categorical_splits_and_extra_attrs() {
    // F3 splits on the categorical `elevel`; extra attributes widen the
    // per-node statistics the shards must merge.
    check_grid_point(
        &GeneratorConfig::new(LabelFunction::F3)
            .with_seed(24)
            .with_extra_attrs(3),
        4_000,
        grid_config(2_400),
    );
}

#[test]
fn parallel_exact_with_zero_spill_budget() {
    // Every deposit goes straight to a spill file: the chunk-ordered
    // application must reproduce the serial spill stream exactly.
    let mut cfg = grid_config(2_500);
    cfg.spill_budget = 0;
    check_grid_point(
        &GeneratorConfig::new(LabelFunction::F1).with_seed(25),
        5_000,
        cfg,
    );
}

#[test]
fn parallel_exact_on_disk_dataset() {
    // The same oracle through the on-disk chunked scan path.
    let dir = std::env::temp_dir().join("boat-parallel-exactness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("f6.boat");
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(26);
    let ds = gen.materialize(&path, 6_000).unwrap();
    let reference = reference_tree(&ds, Gini, grid_config(0).limits).unwrap();

    let mut first: Option<Tree> = None;
    for threads in THREADS {
        let ds = boat_data::FileDataset::open(&path, IoStats::new()).unwrap();
        let cfg = grid_config(2_600).with_cleanup_threads(threads);
        let fit = Boat::new(cfg).fit(&ds).unwrap();
        assert_eq!(
            fit.tree, reference,
            "threads={threads} differs on the disk path"
        );
        match &first {
            None => first = Some(fit.tree),
            Some(t) => assert_eq!(&fit.tree, t),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn threads_beyond_chunks_degenerate_gracefully() {
    // More workers than chunks (and than records): spare workers stay idle
    // and the result is still exact.
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(27);
    let source = gen.source(2_000);
    let mut cfg = grid_config(2_700);
    cfg.cleanup_chunk_size = 100_000; // single chunk
    cfg.cleanup_threads = 8;
    let fit = Boat::new(cfg.clone()).fit(&source).unwrap();
    let reference = reference_tree(&source, Gini, cfg.limits).unwrap();
    assert_eq!(fit.tree, reference);
}
