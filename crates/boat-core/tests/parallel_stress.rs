//! Threaded stress test for the parallel cleanup scan.
//!
//! Repeated parallel fits must be bit-for-bit reproducible even when the
//! *delivery order* of chunks to workers is adversarial: a wrapper source
//! hands out the scan's chunks in a freshly shuffled order on every scan,
//! and every fit must still serialize ([`boat_tree::Tree::to_bytes`]) to
//! the same bytes as the serial run — the merge is order-independent and
//! the deposit application restores chunk order by index.

use boat_core::{Boat, BoatConfig};
use boat_data::dataset::{ChunkScan, RecordScan, RecordSource};
use boat_data::{IoStats, MemoryDataset, RecordChunk, Result, Schema};
use boat_datagen::{GeneratorConfig, LabelFunction};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::Cell;
use std::sync::Arc;

/// A [`RecordSource`] whose `scan_chunks` yields the inner dataset's chunks
/// in a different shuffled order on every call. Record scans (`scan`) are
/// untouched, so the sampling phase is identical across fits; only the
/// cleanup workers see the adversarial ordering.
struct ShuffledChunkSource {
    inner: MemoryDataset,
    /// Bumped per scan so each shuffle differs.
    epoch: Cell<u64>,
}

impl ShuffledChunkSource {
    fn new(inner: MemoryDataset) -> Self {
        ShuffledChunkSource {
            inner,
            epoch: Cell::new(0),
        }
    }
}

impl RecordSource for ShuffledChunkSource {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.inner.scan()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn scan_chunks(&self, chunk_size: usize) -> Result<Box<dyn ChunkScan + '_>> {
        let mut chunks: Vec<Result<RecordChunk>> = self.inner.scan_chunks(chunk_size)?.collect();
        let epoch = self.epoch.get();
        self.epoch.set(epoch + 1);
        let mut rng = StdRng::seed_from_u64(0x5EED ^ epoch.wrapping_mul(0x9E37_79B9));
        chunks.shuffle(&mut rng);
        Ok(Box::new(chunks.into_iter()))
    }
}

fn stress_config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_500,
        bootstrap_reps: 12,
        bootstrap_sample_size: 600,
        in_memory_threshold: 400,
        spill_budget: 64,
        cleanup_chunk_size: 128, // many small chunks → many orderings
        seed,
        ..BoatConfig::default()
    }
}

fn dataset(function: LabelFunction, seed: u64, n: usize) -> MemoryDataset {
    let gen = GeneratorConfig::new(function).with_seed(seed);
    MemoryDataset::new(gen.schema(), gen.generate_vec(n))
}

#[test]
fn shuffled_chunk_orders_yield_byte_identical_models() {
    let source = ShuffledChunkSource::new(dataset(LabelFunction::F6, 31, 6_000));

    // Serial baseline: chunk order is irrelevant at 1 thread.
    let serial = Boat::new(stress_config(3_100).with_cleanup_threads(1))
        .fit(&source)
        .unwrap();
    let baseline = serial.tree.to_bytes();

    // Repeated parallel fits, each seeing a different chunk delivery order.
    for rep in 0..6 {
        for threads in [2, 4, 8] {
            let fit = Boat::new(stress_config(3_100).with_cleanup_threads(threads))
                .fit(&source)
                .unwrap();
            assert_eq!(
                fit.tree.to_bytes(),
                baseline,
                "rep {rep} at {threads} threads produced a different serialized model"
            );
        }
    }
}

#[test]
fn shuffled_orders_with_immediate_spilling_stay_identical() {
    // Zero spill budget: every parked/family record hits a spill file in
    // push order, so this would catch any deviation in deposit ordering.
    let source = ShuffledChunkSource::new(dataset(LabelFunction::F1, 32, 5_000));
    let mut cfg = stress_config(3_200);
    cfg.spill_budget = 0;

    let serial = Boat::new(cfg.clone().with_cleanup_threads(1))
        .fit(&source)
        .unwrap();
    let baseline = serial.tree.to_bytes();
    for rep in 0..4 {
        let fit = Boat::new(cfg.clone().with_cleanup_threads(4))
            .fit(&source)
            .unwrap();
        assert_eq!(
            fit.tree.to_bytes(),
            baseline,
            "rep {rep} diverged under spilling"
        );
    }
}

#[test]
fn wrapper_shuffles_are_actually_different_orders() {
    // Meta-test: make sure the stress source really produces distinct chunk
    // orders (otherwise the tests above prove nothing).
    let source = ShuffledChunkSource::new(dataset(LabelFunction::F2, 33, 2_000));
    let order = |src: &ShuffledChunkSource| -> Vec<usize> {
        src.scan_chunks(128)
            .unwrap()
            .map(|c| c.unwrap().index)
            .collect()
    };
    let a = order(&source);
    let b = order(&source);
    assert_eq!(a.len(), b.len());
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..a.len()).collect::<Vec<_>>(),
        "every chunk exactly once"
    );
    assert_ne!(a, b, "two scans should deliver different chunk orders");
}
