//! Differential oracle for the streaming write path: at any quiesce point
//! the daemon-maintained model must be **byte-identical**
//! (`Tree::to_bytes`) to a synchronous replay of the same chunk sequence
//! through `BoatModel::{insert,delete}` — same idiom as
//! `parallel_exactness` / `subsample_exactness`. Covers single-producer
//! mid-stream quiesce points, concurrent producers (replayed in WAL
//! order), and crash recovery over a torn durable prefix.

use boat_core::stream::{ProvenanceSink, StalenessBound, StreamConfig, StreamingBoat};
use boat_core::{replay_wal_into, Boat, BoatConfig, BoatModel};
use boat_data::wal::{read_segment, replay_segments, WalConfig, WalKind, WalOp};
use boat_data::{MemoryDataset, Record};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_obs::Registry;
use boat_tree::Gini;
use std::path::PathBuf;

fn config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_200,
        bootstrap_reps: 10,
        bootstrap_sample_size: 500,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed,
        ..BoatConfig::default()
    }
}

fn mem(schema: &std::sync::Arc<boat_data::Schema>, records: Vec<Record>) -> MemoryDataset {
    MemoryDataset::new(schema.clone(), records)
}

fn fit(seed: u64, schema: &std::sync::Arc<boat_data::Schema>, base: &[Record]) -> BoatModel<Gini> {
    let algo = Boat::new(config(seed));
    let (model, _) = algo.fit_model(&mem(schema, base.to_vec())).unwrap();
    model
}

fn stream_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boat-stream-ex-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One logical chunk of the workload script, so the daemon run and the
/// synchronous replay consume the identical sequence.
enum Op {
    Insert(Vec<Record>),
    Delete(Vec<Record>),
}

/// Single producer, mid-stream quiesce after every chunk: each quiesce
/// tree must equal a synchronous replay of the prefix.
#[test]
fn quiesce_points_match_synchronous_replay() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(91);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let base = &all[..4_000];

    // Insert two chunks, delete the second, insert another — exercising
    // both absorb paths through the WAL.
    let script = [
        Op::Insert(all[4_000..6_000].to_vec()),
        Op::Insert(all[6_000..7_500].to_vec()),
        Op::Delete(all[6_000..7_500].to_vec()),
        Op::Insert(all[7_500..9_000].to_vec()),
    ];

    let dir = stream_dir("quiesce");
    let streaming = StreamingBoat::spawn(
        fit(9_100, &schema, base),
        StreamConfig {
            staleness: StalenessBound {
                // Bigger than any one chunk (a single over-budget chunk is
                // the one unavoidable violation) but small enough that
                // back-to-back chunks force mid-stream maintains.
                max_records: 2_500,
                max_age: None,
            },
            wal: WalConfig {
                dir: Some(dir.clone()),
                ..WalConfig::default()
            },
            ..StreamConfig::default()
        },
    )
    .unwrap();

    let mut sync_model = fit(9_100, &schema, base);
    for (i, op) in script.iter().enumerate() {
        match op {
            Op::Insert(r) => {
                streaming.insert(r.clone()).unwrap();
                sync_model.insert(&mem(&schema, r.clone())).unwrap();
            }
            Op::Delete(r) => {
                streaming.delete(r.clone()).unwrap();
                sync_model.delete(&mem(&schema, r.clone())).unwrap();
            }
        }
        let report = streaming.quiesce().unwrap();
        assert_eq!(report.stats.first_error, None);
        assert_eq!(report.stats.bound_violations, 0);
        assert_eq!(
            report.tree_bytes,
            sync_model.tree().unwrap().to_bytes(),
            "quiesce point {i}: daemon tree != synchronous replay"
        );
    }
    let (_, stats) = streaming.finish().unwrap();
    assert_eq!(stats.ops_absorbed, script.len() as u64);
    assert!(stats.maintains >= script.len() as u64, "one per quiesce");
    std::fs::remove_dir_all(dir).ok();
}

/// Concurrent producers: the WAL fixes one global chunk order; replaying
/// the kept segments synchronously must reproduce the daemon's final tree
/// byte-for-byte.
#[test]
fn concurrent_producers_match_wal_order_replay() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(92);
    let schema = gen.schema();
    let all = gen.generate_vec(10_000);
    let base = &all[..4_000];

    let dir = stream_dir("concurrent");
    let streaming = StreamingBoat::spawn(
        fit(9_200, &schema, base),
        StreamConfig {
            staleness: StalenessBound {
                max_records: 1_000,
                max_age: None,
            },
            wal: WalConfig {
                dir: Some(dir.clone()),
                keep_segments: true,
                ..WalConfig::default()
            },
            ..StreamConfig::default()
        },
    )
    .unwrap();

    // 3 producers, each streaming its own slice in chunks; one also
    // deletes its previously-inserted chunks (per-producer FIFO through
    // the WAL keeps every delete valid at absorb time).
    std::thread::scope(|s| {
        for p in 0..3usize {
            let writer = streaming.writer();
            let slice = &all[4_000 + p * 2_000..4_000 + (p + 1) * 2_000];
            s.spawn(move || {
                for chunk in slice.chunks(250) {
                    writer.insert(chunk.to_vec()).unwrap();
                    if p == 2 {
                        writer.delete(chunk.to_vec()).unwrap();
                    }
                }
            });
        }
    });
    let report = streaming.quiesce().unwrap();
    assert_eq!(report.stats.first_error, None);
    assert_eq!(report.stats.ops_absorbed, 8 * 3 + 8);
    let segments = streaming.wal_segments();
    let (_, stats) = streaming.finish().unwrap();
    assert_eq!(stats.bound_violations, 0);

    // Synchronous replay in the recorded WAL order.
    let ops = replay_segments(&segments, &schema, &Registry::new()).unwrap();
    assert_eq!(ops.len(), 32);
    let mut sync_model = fit(9_200, &schema, base);
    for op in ops {
        let chunk = mem(&schema, op.records);
        match op.kind {
            WalKind::Insert => sync_model.insert(&chunk).unwrap(),
            WalKind::Delete => sync_model.delete(&chunk).unwrap(),
        };
    }
    assert_eq!(
        report.tree_bytes,
        sync_model.tree().unwrap().to_bytes(),
        "daemon tree != WAL-order synchronous replay"
    );
    for p in segments {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Crash recovery: tear the last segment mid-frame (truncated tail and a
/// torn checksum), replay into a fresh model, and assert byte-identity
/// with a clean synchronous run over the durable prefix.
#[test]
fn crash_recovery_is_exact_over_the_durable_prefix() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(93);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let base = &all[..4_000];

    let dir = stream_dir("crash");
    let streaming = StreamingBoat::spawn(
        fit(9_300, &schema, base),
        StreamConfig {
            wal: WalConfig {
                dir: Some(dir.clone()),
                keep_segments: true,
                ..WalConfig::default()
            },
            ..StreamConfig::default()
        },
    )
    .unwrap();
    for chunk in all[4_000..].chunks(500) {
        streaming.insert(chunk.to_vec()).unwrap();
    }
    streaming.delete(all[4_000..4_500].to_vec()).unwrap();
    let segments = streaming.wal_segments();
    streaming.finish().unwrap();
    assert_eq!(segments.len(), 1);
    let clean = std::fs::read(&segments[0]).unwrap();

    // Two crash shapes: a truncation 3 bytes into the last frame's
    // payload, and a checksum torn by flipping the file's last byte.
    let torn_variants: Vec<Vec<u8>> = vec![
        {
            let record_width = schema.record_width();
            let last_frame = 13 + 500 * record_width; // delete frame: overhead + payload
            clean[..clean.len() - last_frame + 8].to_vec()
        },
        {
            let mut v = clean.clone();
            let last = v.len() - 1;
            v[last] ^= 0xFF;
            v
        },
    ];
    for (variant, bytes) in torn_variants.into_iter().enumerate() {
        let torn_path = dir.join(format!("torn-{variant}.wal"));
        std::fs::write(&torn_path, &bytes).unwrap();
        let reg = Registry::new();
        let replay = read_segment(&torn_path, &schema, &reg).unwrap();
        assert!(replay.torn, "variant {variant} must report a torn tail");
        assert_eq!(
            replay.ops.len(),
            8,
            "variant {variant}: durable prefix is the 8 insert chunks"
        );

        // Recover: fresh fit + WAL replay of the torn segment.
        let mut recovered = fit(9_300, &schema, base);
        replay_wal_into(&mut recovered, std::slice::from_ref(&torn_path)).unwrap();

        // Oracle: clean synchronous run over the durable prefix only.
        let mut sync_model = fit(9_300, &schema, base);
        for op in read_segment(&torn_path, &schema, &reg).unwrap().ops {
            let chunk = mem(&schema, op.records);
            match op.kind {
                WalKind::Insert => sync_model.insert(&chunk).unwrap(),
                WalKind::Delete => sync_model.delete(&chunk).unwrap(),
            };
        }
        assert_eq!(
            recovered.tree().unwrap().to_bytes(),
            sync_model.tree().unwrap().to_bytes(),
            "variant {variant}: recovered model != clean run over durable prefix"
        );
        std::fs::remove_file(&torn_path).ok();
    }
    for p in segments {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Test-double provenance sink: records every absorbed op's content
/// digest and derives a toy fingerprint by hashing them in order — enough
/// to prove the daemon forwards each op exactly once, in absorb order,
/// and surfaces the sink's fingerprint in `QuiesceReport`.
#[derive(Clone)]
struct CountingSink {
    state: std::sync::Arc<std::sync::Mutex<(u64, boat_proof::Sha256)>>,
}

impl CountingSink {
    fn new() -> Self {
        CountingSink {
            state: std::sync::Arc::new(std::sync::Mutex::new((0, boat_proof::Sha256::new()))),
        }
    }

    fn ops_seen(&self) -> u64 {
        self.state.lock().unwrap().0
    }
}

impl ProvenanceSink for CountingSink {
    fn absorb_op(&mut self, op: &WalOp) {
        let mut state = self.state.lock().unwrap();
        state.0 += 1;
        state.1.update(op.content_digest.as_bytes());
    }

    fn fingerprint(&self) -> Option<boat_proof::Hash256> {
        let state = self.state.lock().unwrap();
        (state.0 > 0).then(|| state.1.clone().finalize())
    }
}

/// The daemon forwards every durable op's content digest to the
/// provenance sink in WAL order, and the quiesce report carries the
/// sink's fingerprint — which must be recomputable from an offline WAL
/// replay of the same segments.
#[test]
fn provenance_sink_sees_every_op_in_wal_order() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(95);
    let schema = gen.schema();
    let all = gen.generate_vec(7_000);
    let base = &all[..4_000];

    let dir = stream_dir("sink");
    let sink = CountingSink::new();
    let streaming = StreamingBoat::spawn(
        fit(9_500, &schema, base),
        StreamConfig {
            staleness: StalenessBound {
                max_records: 1_500,
                max_age: None,
            },
            wal: WalConfig {
                dir: Some(dir.clone()),
                keep_segments: true,
                ..WalConfig::default()
            },
            provenance: Some(Box::new(sink.clone())),
            ..StreamConfig::default()
        },
    )
    .unwrap();
    for chunk in all[4_000..].chunks(500) {
        streaming.insert(chunk.to_vec()).unwrap();
    }
    streaming.delete(all[4_000..4_500].to_vec()).unwrap();
    let report = streaming.quiesce().unwrap();
    assert_eq!(report.stats.first_error, None);
    assert_eq!(sink.ops_seen(), 7);
    assert_eq!(report.fingerprint, sink.fingerprint());
    let segments = streaming.wal_segments();
    streaming.finish().unwrap();

    // Oracle: the same fingerprint falls out of an offline replay of the
    // durable segments' content digests, in order.
    let ops = replay_segments(&segments, &schema, &Registry::new()).unwrap();
    assert_eq!(ops.len(), 7);
    let mut oracle = boat_proof::Sha256::new();
    for op in &ops {
        oracle.update(op.content_digest.as_bytes());
    }
    assert_eq!(report.fingerprint, Some(oracle.finalize()));
    for p in segments {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

/// The deadline trigger maintains without any further appends: staleness
/// age is bounded even when the stream goes quiet.
#[test]
fn deadline_trigger_fires_on_quiet_stream() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(94);
    let schema = gen.schema();
    let all = gen.generate_vec(5_000);
    let base = &all[..4_000];

    let dir = stream_dir("deadline");
    let streaming = StreamingBoat::spawn(
        fit(9_400, &schema, base),
        StreamConfig {
            staleness: StalenessBound {
                max_records: 1_000_000, // only the clock can trigger
                max_age: Some(std::time::Duration::from_millis(200)),
            },
            wal: WalConfig {
                dir: Some(dir.clone()),
                ..WalConfig::default()
            },
            ..StreamConfig::default()
        },
    )
    .unwrap();
    streaming.insert(all[4_000..].to_vec()).unwrap();
    // No quiesce, no more traffic: the deadline must fire on its own.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let metrics = streaming.metrics().clone();
    loop {
        let fires = metrics
            .snapshot()
            .counter("boat.stream.trigger_fires.deadline");
        if fires >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "deadline trigger never fired on a quiet stream"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let (_, stats) = streaming.finish().unwrap();
    assert_eq!(stats.bound_violations, 0);
    assert!(stats.maintains >= 1);
    std::fs::remove_dir_all(dir).ok();
}
