//! RainForest baselines \[GRG98\]: RF-Hybrid and RF-Vertical.
//!
//! The BOAT paper's performance comparison is against the RainForest family
//! of scalable decision-tree algorithms, which it describes as the previous
//! state of the art. RainForest's insight: split selection needs only the
//! **AVC-group** of a node (per-attribute value/class-label counts), so a
//! scalable algorithm can grow the tree level by level, building the
//! frontier's AVC-groups in sequential scans under a memory budget:
//!
//! * **RF-Hybrid** (fastest, most memory): per level, build the AVC-groups
//!   of as many frontier nodes as fit the budget per scan. When the whole
//!   frontier fits, that is *one scan per level*. (\[GRG98\]'s partition-file
//!   phase is approximated by batched frontier scans — a substitution that
//!   only helps the baseline; see DESIGN.md §4.)
//! * **RF-Vertical** (slowest, least memory): per level, small
//!   (categorical) AVC-sets are built in one scan, and each numeric
//!   attribute's AVC-sets get their own pass — modelling the vertical
//!   temporary projections of \[GRG98\].
//! * **RF-Write**: the family's base algorithm — two passes per node over
//!   its own partition file (AVC build, then children partitioning),
//!   minimal memory, data rewritten once per level.
//!
//! All variants produce **exactly** the same tree as the in-memory reference
//! builder (and therefore as BOAT): split selection runs through the shared
//! `boat-tree` machinery over identical counts.

#![warn(missing_docs)]

use boat_data::dataset::RecordSource;
use boat_data::{AttrType, IoSnapshot, Record, Result};
use boat_tree::grow::SplitSelector;
use boat_tree::{
    AvcGroup, CatAvc, Gini, GrowthLimits, Impurity, ImpuritySelector, NodeId, NumAvc, SplitEval,
    TdTreeBuilder, Tree,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which RainForest variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfVariant {
    /// One scan per level while the frontier's AVC-groups fit the budget;
    /// batched scans otherwise.
    Hybrid,
    /// One scan per level for categorical attributes plus one scan per
    /// numeric attribute (vertical passes), each batched under the budget.
    Vertical,
    /// The family's base algorithm \[GRG98\]: per node, one scan of the
    /// node's *partition* to build its AVC-group and a second scan to
    /// write the two children partitions to temporary files; recurse.
    /// Minimal memory (one AVC-group at a time) at the cost of rewriting
    /// the data once per level.
    Write,
}

/// RainForest configuration.
#[derive(Debug, Clone)]
pub struct RfConfig {
    /// Memory budget in AVC *entries* (value × class cells) per scan.
    /// The paper's experiments give RF-Hybrid 3 M entries and RF-Vertical
    /// 1.8 M.
    pub avc_budget_entries: usize,
    /// Families at or below this size finish with the in-memory builder
    /// (the same switch the paper applies to all algorithms).
    pub in_memory_threshold: u64,
    /// Stopping rules (identical to the other algorithms').
    pub limits: GrowthLimits,
}

impl Default for RfConfig {
    fn default() -> Self {
        RfConfig {
            avc_budget_entries: 3_000_000,
            in_memory_threshold: 10_000,
            limits: GrowthLimits::default(),
        }
    }
}

/// Statistics of one RainForest run.
#[derive(Debug, Clone, Default)]
pub struct RfRunStats {
    /// Sequential scans over the training database. The headline contrast
    /// with BOAT: at least one per tree level.
    pub scans_over_input: u64,
    /// Tree levels grown by the level-synchronous phase.
    pub levels: u64,
    /// Frontier batches processed (more batches = tighter memory).
    pub batches: u64,
    /// Subtrees finished with the in-memory switch.
    pub inmem_builds: u64,
    /// Wall time.
    pub time: Duration,
    /// I/O over the input training database.
    pub io: IoSnapshot,
    /// I/O over temporary partition files (RF-Write only).
    pub temp_io: IoSnapshot,
}

impl std::fmt::Display for RfRunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scans={} levels={} batches={} inmem={} time={:?}",
            self.scans_over_input, self.levels, self.batches, self.inmem_builds, self.time
        )
    }
}

/// Result of a RainForest run.
#[derive(Debug, Clone)]
pub struct RfFit {
    /// The exact decision tree (identical to the reference builder's).
    pub tree: Tree,
    /// Run statistics.
    pub stats: RfRunStats,
}

/// A frontier node awaiting split selection.
struct FrontierNode {
    id: NodeId,
    depth: u32,
    n: u64,
    /// Upper bound on AVC entries per attribute, inherited from the parent's
    /// actual distinct-value counts (root: family size).
    attr_entry_bounds: Vec<usize>,
}

/// The RainForest algorithm.
#[derive(Debug, Clone)]
pub struct RainForest<I: Impurity + Clone = Gini> {
    variant: RfVariant,
    config: RfConfig,
    impurity: I,
}

impl RainForest<Gini> {
    /// RF with the Gini index.
    pub fn new(variant: RfVariant, config: RfConfig) -> Self {
        RainForest {
            variant,
            config,
            impurity: Gini,
        }
    }
}

impl<I: Impurity + Clone> RainForest<I> {
    /// RF with an arbitrary concave impurity.
    pub fn with_impurity(variant: RfVariant, config: RfConfig, impurity: I) -> Self {
        RainForest {
            variant,
            config,
            impurity,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RfConfig {
        &self.config
    }

    /// Build the exact decision tree for `source`.
    pub fn fit(&self, source: &dyn RecordSource) -> Result<RfFit> {
        match self.variant {
            RfVariant::Write => self.fit_write(source),
            _ => self.fit_level_synchronous(source),
        }
    }

    /// RF-Write driver: depth-first over explicit partition files.
    fn fit_write(&self, source: &dyn RecordSource) -> Result<RfFit> {
        use boat_data::{FileDataset, FileDatasetWriter};
        static PART_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

        let t0 = Instant::now();
        let mut stats = RfRunStats::default();
        let schema = source.schema().clone();
        let k = schema.n_classes();
        let selector = ImpuritySelector::new(self.impurity.clone());

        // Root class counts.
        let mut root_counts = vec![0u64; k];
        for r in source.scan()? {
            root_counts[r?.label() as usize] += 1;
        }
        stats.scans_over_input += 1;
        let mut tree = Tree::leaf(root_counts);

        enum Partition<'a> {
            Input(&'a dyn RecordSource),
            Temp(FileDataset),
        }
        impl Partition<'_> {
            fn scan(&self) -> Result<Box<dyn boat_data::dataset::RecordScan + '_>> {
                match self {
                    Partition::Input(s) => s.scan(),
                    Partition::Temp(f) => f.scan(),
                }
            }
        }

        let temp_stats = boat_data::IoStats::new();
        let fresh_part = |schema: &std::sync::Arc<boat_data::Schema>| -> Result<FileDatasetWriter> {
            let id = PART_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("rf-write-{}-{id}.boat", std::process::id()));
            FileDatasetWriter::create(path, schema.clone(), temp_stats.clone())
        };

        let root = tree.root();
        let mut queue: Vec<(Partition, NodeId, u32)> = vec![(Partition::Input(source), root, 0)];
        while let Some((partition, node_id, depth)) = queue.pop() {
            let counts = tree.node(node_id).class_counts.clone();
            let n: u64 = counts.iter().sum();
            if self.config.limits.must_stop(&counts, depth) {
                if let Partition::Temp(f) = &partition {
                    let _ = std::fs::remove_file(f.path());
                }
                continue;
            }
            // In-memory switch.
            if n <= self.config.in_memory_threshold {
                let mut records = Vec::with_capacity(n as usize);
                for r in partition.scan()? {
                    records.push(r?);
                }
                if matches!(partition, Partition::Input(_)) {
                    stats.scans_over_input += 1;
                }
                let sub_limits = GrowthLimits {
                    max_depth: self
                        .config
                        .limits
                        .max_depth
                        .map(|d| d.saturating_sub(depth)),
                    ..self.config.limits
                };
                let sub = TdTreeBuilder::new(&selector, sub_limits).fit(&schema, &records);
                tree.replace_subtree(node_id, &sub);
                stats.inmem_builds += 1;
                if let Partition::Temp(f) = &partition {
                    let _ = std::fs::remove_file(f.path());
                }
                continue;
            }
            stats.levels = stats.levels.max(depth as u64 + 1);
            stats.batches += 1;
            // Pass 1: AVC-group of this node.
            let mut group = AvcGroup::new(&schema);
            for r in partition.scan()? {
                group.add_record(&r?);
            }
            if matches!(partition, Partition::Input(_)) {
                stats.scans_over_input += 1;
            }
            let Some(eval) = selector.select(&schema, &group) else {
                if let Partition::Temp(f) = &partition {
                    let _ = std::fs::remove_file(f.path());
                }
                continue;
            };
            // Pass 2: partition into children files.
            let mut left_writer = fresh_part(&schema)?;
            let mut right_writer = fresh_part(&schema)?;
            for r in partition.scan()? {
                let r = r?;
                if eval.split.goes_left(&r) {
                    left_writer.append(&r)?;
                } else {
                    right_writer.append(&r)?;
                }
            }
            if matches!(partition, Partition::Input(_)) {
                stats.scans_over_input += 1;
            }
            let (l, rgt) = tree.split_node(
                node_id,
                eval.split,
                eval.left_counts.clone(),
                eval.right_counts.clone(),
            );
            if let Partition::Temp(f) = &partition {
                let _ = std::fs::remove_file(f.path());
            }
            queue.push((Partition::Temp(left_writer.finish()?), l, depth + 1));
            queue.push((Partition::Temp(right_writer.finish()?), rgt, depth + 1));
        }

        tree.compact();
        stats.time = t0.elapsed();
        stats.io = source.stats().snapshot();
        stats.temp_io = temp_stats.snapshot();
        Ok(RfFit { tree, stats })
    }

    /// RF-Hybrid / RF-Vertical driver: level-synchronous scans of the
    /// input.
    fn fit_level_synchronous(&self, source: &dyn RecordSource) -> Result<RfFit> {
        let t0 = Instant::now();
        let mut stats = RfRunStats::default();
        let schema = source.schema().clone();
        let k = schema.n_classes();
        let selector = ImpuritySelector::new(self.impurity.clone());

        // Scan 0: root class counts (cheap; RainForest needs them to set up
        // the root AVC anyway — folded into the first AVC scan in [GRG98],
        // counted separately here for clarity).
        let mut root_counts = vec![0u64; k];
        for r in source.scan()? {
            root_counts[r?.label() as usize] += 1;
        }
        stats.scans_over_input += 1;
        let n_root: u64 = root_counts.iter().sum();
        let mut tree = Tree::leaf(root_counts);

        let root_bounds: Vec<usize> = schema
            .attributes()
            .iter()
            .map(|a| match a.ty() {
                AttrType::Numeric => (n_root as usize).saturating_mul(k),
                AttrType::Categorical { cardinality } => cardinality as usize * k,
            })
            .collect();
        let mut frontier = vec![FrontierNode {
            id: tree.root(),
            depth: 0,
            n: n_root,
            attr_entry_bounds: root_bounds,
        }];

        while !frontier.is_empty() {
            // Drop nodes the stopping rules freeze.
            frontier.retain(|f| {
                !self
                    .config
                    .limits
                    .must_stop(&tree.node(f.id).class_counts, f.depth)
            });
            if frontier.is_empty() {
                break;
            }

            // In-memory switch: once every remaining frontier family fits,
            // collect them all in one scan and finish in memory.
            if frontier
                .iter()
                .all(|f| f.n <= self.config.in_memory_threshold)
            {
                let mut families: HashMap<NodeId, Vec<Record>> =
                    frontier.iter().map(|f| (f.id, Vec::new())).collect();
                for r in source.scan()? {
                    let r = r?;
                    let leaf = tree.leaf_for(&r);
                    if let Some(v) = families.get_mut(&leaf) {
                        v.push(r);
                    }
                }
                stats.scans_over_input += 1;
                for f in &frontier {
                    let records = families.remove(&f.id).expect("family collected");
                    let sub_limits = GrowthLimits {
                        max_depth: self
                            .config
                            .limits
                            .max_depth
                            .map(|d| d.saturating_sub(f.depth)),
                        ..self.config.limits
                    };
                    let sub = TdTreeBuilder::new(&selector, sub_limits).fit(&schema, &records);
                    tree.replace_subtree(f.id, &sub);
                    stats.inmem_builds += 1;
                }
                frontier.clear();
                break;
            }

            stats.levels += 1;
            let evals = match self.variant {
                RfVariant::Hybrid => self.level_hybrid(source, &tree, &frontier, &mut stats)?,
                RfVariant::Vertical => self.level_vertical(source, &tree, &frontier, &mut stats)?,
                RfVariant::Write => unreachable!("RF-Write uses its own driver"),
            };

            // Apply the chosen splits and form the next frontier.
            let mut next = Vec::new();
            for (f, eval) in frontier.iter().zip(evals) {
                let Some((eval, actual_entries)) = eval else {
                    continue; // no valid split: stays a leaf
                };
                let (l, r) = tree.split_node(
                    f.id,
                    eval.split,
                    eval.left_counts.clone(),
                    eval.right_counts.clone(),
                );
                let child_bounds = |n: u64| -> Vec<usize> {
                    actual_entries
                        .iter()
                        .map(|&e| e.min((n as usize).saturating_mul(k)))
                        .collect()
                };
                let ln: u64 = eval.left_counts.iter().sum();
                let rn: u64 = eval.right_counts.iter().sum();
                next.push(FrontierNode {
                    id: l,
                    depth: f.depth + 1,
                    n: ln,
                    attr_entry_bounds: child_bounds(ln),
                });
                next.push(FrontierNode {
                    id: r,
                    depth: f.depth + 1,
                    n: rn,
                    attr_entry_bounds: child_bounds(rn),
                });
            }
            frontier = next;
        }

        tree.compact();
        stats.time = t0.elapsed();
        stats.io = source.stats().snapshot();
        Ok(RfFit { tree, stats })
    }

    /// RF-Hybrid level: batch frontier nodes under the budget, one scan per
    /// batch building full AVC-groups.
    #[allow(clippy::type_complexity)]
    fn level_hybrid(
        &self,
        source: &dyn RecordSource,
        tree: &Tree,
        frontier: &[FrontierNode],
        stats: &mut RfRunStats,
    ) -> Result<Vec<Option<(SplitEval, Vec<usize>)>>> {
        let schema = source.schema();
        let selector = ImpuritySelector::new(self.impurity.clone());
        let mut out: Vec<Option<(SplitEval, Vec<usize>)>> =
            (0..frontier.len()).map(|_| None).collect();
        let mut i = 0;
        while i < frontier.len() {
            // Greedy batch under the entry budget (always at least one node,
            // as [GRG98] requires memory for a single AVC-group).
            let mut used: usize = frontier[i].attr_entry_bounds.iter().sum();
            let mut j = i + 1;
            while j < frontier.len() {
                let est: usize = frontier[j].attr_entry_bounds.iter().sum();
                if used + est > self.config.avc_budget_entries {
                    break;
                }
                used += est;
                j += 1;
            }
            stats.batches += 1;

            let mut groups: HashMap<NodeId, (usize, AvcGroup)> = (i..j)
                .map(|bi| (frontier[bi].id, (bi, AvcGroup::new(schema))))
                .collect();
            for r in source.scan()? {
                let r = r?;
                let leaf = tree.leaf_for(&r);
                if let Some((_, g)) = groups.get_mut(&leaf) {
                    g.add_record(&r);
                }
            }
            stats.scans_over_input += 1;

            for (_, (bi, group)) in groups {
                let actual: Vec<usize> = (0..group.n_attrs())
                    .map(|a| group.attr(a).n_entries())
                    .collect();
                out[bi] = selector.select(schema, &group).map(|e| (e, actual));
            }
            i = j;
        }
        Ok(out)
    }

    /// RF-Vertical level: one scan for all categorical AVC-sets, then one
    /// (budget-batched) scan per numeric attribute.
    #[allow(clippy::type_complexity)]
    fn level_vertical(
        &self,
        source: &dyn RecordSource,
        tree: &Tree,
        frontier: &[FrontierNode],
        stats: &mut RfRunStats,
    ) -> Result<Vec<Option<(SplitEval, Vec<usize>)>>> {
        let schema = source.schema();
        let k = schema.n_classes();
        let imp: &dyn Impurity = &self.impurity;
        // Best candidate per frontier node, folded attribute by attribute
        // with the same deterministic order as `best_split`.
        let mut best: Vec<Option<SplitEval>> = (0..frontier.len()).map(|_| None).collect();
        let mut actual_entries: Vec<Vec<usize>> = (0..frontier.len())
            .map(|_| vec![0usize; schema.n_attributes()])
            .collect();
        let node_pos: HashMap<NodeId, usize> = frontier
            .iter()
            .enumerate()
            .map(|(i, f)| (f.id, i))
            .collect();

        fn fold(best: &mut [Option<SplitEval>], pos: usize, cand: Option<SplitEval>) {
            if let Some(c) = cand {
                let better = best[pos]
                    .as_ref()
                    .is_none_or(|b| boat_tree::cmp_splits(&c, b) == std::cmp::Ordering::Less);
                if better {
                    best[pos] = Some(c);
                }
            }
        }

        // Pass 1: all categorical attributes at once (their AVC-sets are
        // domain-bounded and small).
        let cat_attrs: Vec<usize> = schema.categorical_attrs().collect();
        if !cat_attrs.is_empty() {
            let mut sets: Vec<Vec<CatAvc>> = frontier
                .iter()
                .map(|_| {
                    cat_attrs
                        .iter()
                        .map(|&a| {
                            let AttrType::Categorical { cardinality } = schema.attribute(a).ty()
                            else {
                                unreachable!("cat_attrs holds categorical attributes")
                            };
                            CatAvc::new(cardinality, k)
                        })
                        .collect()
                })
                .collect();
            for r in source.scan()? {
                let r = r?;
                let leaf = tree.leaf_for(&r);
                if let Some(&pos) = node_pos.get(&leaf) {
                    for (si, &a) in cat_attrs.iter().enumerate() {
                        sets[pos][si].add(r.cat(a), r.label());
                    }
                }
            }
            stats.scans_over_input += 1;
            stats.batches += 1;
            for (pos, node_sets) in sets.into_iter().enumerate() {
                for (si, avc) in node_sets.into_iter().enumerate() {
                    let a = cat_attrs[si];
                    actual_entries[pos][a] = avc.n_entries();
                    fold(
                        &mut best,
                        pos,
                        boat_tree::split::best_categorical_split(a, &avc, imp),
                    );
                }
            }
        }

        // Pass 2+: one pass per numeric attribute, batched under the budget.
        for a in schema.numeric_attrs() {
            let mut i = 0;
            while i < frontier.len() {
                let mut used = frontier[i].attr_entry_bounds[a];
                let mut j = i + 1;
                while j < frontier.len() {
                    let est = frontier[j].attr_entry_bounds[a];
                    if used + est > self.config.avc_budget_entries {
                        break;
                    }
                    used += est;
                    j += 1;
                }
                stats.batches += 1;

                let mut sets: HashMap<NodeId, (usize, NumAvc, Vec<u64>)> = (i..j)
                    .map(|bi| (frontier[bi].id, (bi, NumAvc::new(k), vec![0u64; k])))
                    .collect();
                for r in source.scan()? {
                    let r = r?;
                    let leaf = tree.leaf_for(&r);
                    if let Some((_, avc, totals)) = sets.get_mut(&leaf) {
                        avc.add(r.num(a), r.label());
                        totals[r.label() as usize] += 1;
                    }
                }
                stats.scans_over_input += 1;
                for (_, (pos, avc, totals)) in sets {
                    actual_entries[pos][a] = avc.n_entries();
                    fold(
                        &mut best,
                        pos,
                        boat_tree::split::best_numeric_split(a, &avc, &totals, imp),
                    );
                }
                i = j;
            }
        }

        Ok(best
            .into_iter()
            .zip(actual_entries)
            .map(|(b, e)| b.map(|eval| (eval, e)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_datagen::{GeneratorConfig, LabelFunction};

    fn reference(source: &dyn RecordSource, limits: GrowthLimits) -> Tree {
        let records = source.collect_records().unwrap();
        let selector = ImpuritySelector::new(Gini);
        TdTreeBuilder::new(&selector, limits).fit(source.schema(), &records)
    }

    fn config(threshold: u64) -> RfConfig {
        RfConfig {
            avc_budget_entries: 100_000,
            in_memory_threshold: threshold,
            limits: GrowthLimits::default(),
        }
    }

    #[test]
    fn hybrid_matches_reference_on_f1() {
        let source = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(31)
            .source(5_000);
        let fit = RainForest::new(RfVariant::Hybrid, config(300))
            .fit(&source)
            .unwrap();
        assert_eq!(fit.tree, reference(&source, GrowthLimits::default()));
        assert!(fit.stats.levels >= 1);
    }

    #[test]
    fn vertical_matches_reference_on_f1() {
        let source = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(31)
            .source(5_000);
        let fit = RainForest::new(RfVariant::Vertical, config(300))
            .fit(&source)
            .unwrap();
        assert_eq!(fit.tree, reference(&source, GrowthLimits::default()));
    }

    #[test]
    fn variants_agree_on_all_paper_functions() {
        for f in [LabelFunction::F1, LabelFunction::F6, LabelFunction::F7] {
            let source = GeneratorConfig::new(f).with_seed(32).source(4_000);
            let h = RainForest::new(RfVariant::Hybrid, config(200))
                .fit(&source)
                .unwrap();
            let v = RainForest::new(RfVariant::Vertical, config(200))
                .fit(&source)
                .unwrap();
            let r = reference(&source, GrowthLimits::default());
            assert_eq!(h.tree, r, "{f:?} hybrid");
            assert_eq!(v.tree, r, "{f:?} vertical");
        }
    }

    #[test]
    fn vertical_scans_more_than_hybrid() {
        let source = GeneratorConfig::new(LabelFunction::F6)
            .with_seed(33)
            .source(5_000);
        let h = RainForest::new(RfVariant::Hybrid, config(100))
            .fit(&source)
            .unwrap();
        let v = RainForest::new(RfVariant::Vertical, config(100))
            .fit(&source)
            .unwrap();
        assert!(
            v.stats.scans_over_input > h.stats.scans_over_input,
            "vertical {} vs hybrid {}",
            v.stats.scans_over_input,
            h.stats.scans_over_input
        );
    }

    #[test]
    fn tight_budget_forces_more_batches_same_tree() {
        let source = GeneratorConfig::new(LabelFunction::F2)
            .with_seed(34)
            .source(4_000);
        let mut small = config(200);
        small.avc_budget_entries = 8_000; // roughly one node's numeric AVC
        let mut large = config(200);
        large.avc_budget_entries = 10_000_000;
        let s = RainForest::new(RfVariant::Hybrid, small)
            .fit(&source)
            .unwrap();
        let l = RainForest::new(RfVariant::Hybrid, large)
            .fit(&source)
            .unwrap();
        assert_eq!(s.tree, l.tree);
        assert!(s.stats.batches > l.stats.batches);
        assert!(s.stats.scans_over_input > l.stats.scans_over_input);
    }

    #[test]
    fn one_scan_per_level_when_budget_ample() {
        let source = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(35)
            .source(5_000);
        let mut cfg = config(200);
        cfg.avc_budget_entries = 100_000_000;
        let fit = RainForest::new(RfVariant::Hybrid, cfg)
            .fit(&source)
            .unwrap();
        // scans = 1 (root counts) + one per level + one if the in-memory
        // switch fired.
        let switch = u64::from(fit.stats.inmem_builds > 0);
        assert_eq!(fit.stats.scans_over_input, 1 + fit.stats.levels + switch);
        assert_eq!(
            fit.stats.batches, fit.stats.levels,
            "ample budget = one batch per level"
        );
    }

    #[test]
    fn paper_mode_stop_threshold_respected() {
        let limits = GrowthLimits {
            stop_family_size: Some(800),
            ..GrowthLimits::default()
        };
        let source = GeneratorConfig::new(LabelFunction::F7)
            .with_seed(36)
            .source(6_000);
        let mut cfg = config(400);
        cfg.limits = limits;
        let fit = RainForest::new(RfVariant::Hybrid, cfg)
            .fit(&source)
            .unwrap();
        assert_eq!(fit.tree, reference(&source, limits));
        // Internal nodes must all exceed the stop threshold.
        for id in fit.tree.preorder_ids() {
            let node = fit.tree.node(id);
            if !node.is_leaf() {
                assert!(node.n_records() > 800);
            }
        }
    }

    #[test]
    fn pure_data_is_one_root_scan() {
        let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(37);
        let schema = gen.schema();
        let records: Vec<Record> = gen
            .generate_vec(1_000)
            .into_iter()
            .map(|r| r.with_label(0))
            .collect();
        let source = boat_data::MemoryDataset::new(schema, records);
        let fit = RainForest::new(RfVariant::Hybrid, config(100))
            .fit(&source)
            .unwrap();
        assert_eq!(fit.tree.n_nodes(), 1);
        assert_eq!(fit.stats.scans_over_input, 1);
    }

    #[test]
    fn write_variant_matches_reference() {
        let source = GeneratorConfig::new(LabelFunction::F1)
            .with_seed(41)
            .source(5_000);
        let fit = RainForest::new(RfVariant::Write, config(300))
            .fit(&source)
            .unwrap();
        assert_eq!(fit.tree, reference(&source, GrowthLimits::default()));
        // RF-Write reads the input only for the root's AVC + partition
        // passes; deeper levels hit temporary files.
        assert!(
            fit.stats.scans_over_input <= 3,
            "scans: {}",
            fit.stats.scans_over_input
        );
        assert!(
            fit.stats.temp_io.records_written > 0,
            "must write partitions"
        );
    }

    #[test]
    fn write_variant_cleans_up_partitions() {
        let before = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("rf-write-")
            })
            .count();
        let source = GeneratorConfig::new(LabelFunction::F6)
            .with_seed(42)
            .source(4_000);
        RainForest::new(RfVariant::Write, config(200))
            .fit(&source)
            .unwrap();
        let after = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("rf-write-")
            })
            .count();
        assert_eq!(after, before, "partition files must be deleted");
    }

    #[test]
    fn all_three_variants_agree() {
        let source = GeneratorConfig::new(LabelFunction::F7)
            .with_seed(43)
            .source(4_000);
        let w = RainForest::new(RfVariant::Write, config(200))
            .fit(&source)
            .unwrap();
        let h = RainForest::new(RfVariant::Hybrid, config(200))
            .fit(&source)
            .unwrap();
        let v = RainForest::new(RfVariant::Vertical, config(200))
            .fit(&source)
            .unwrap();
        assert_eq!(w.tree, h.tree);
        assert_eq!(w.tree, v.tree);
    }

    #[test]
    fn with_entropy_matches_entropy_reference() {
        use boat_tree::Entropy;
        let source = GeneratorConfig::new(LabelFunction::F3)
            .with_seed(38)
            .source(3_000);
        let fit = RainForest::with_impurity(RfVariant::Hybrid, config(150), Entropy)
            .fit(&source)
            .unwrap();
        let records = source.collect_records().unwrap();
        let selector = ImpuritySelector::new(Entropy);
        let reference =
            TdTreeBuilder::new(&selector, GrowthLimits::default()).fit(source.schema(), &records);
        assert_eq!(fit.tree, reference);
    }
}
