//! Decision-tree substrate for the BOAT reproduction.
//!
//! This crate provides everything the construction algorithms (BOAT in
//! `boat-core`, the RainForest baselines in `boat-rainforest`) share:
//!
//! * [`model`] — the binary tree, splitting criteria and prediction.
//! * [`impurity`] — concave impurity functions (Gini, entropy).
//! * [`avc`] — AVC-sets/AVC-groups: the sufficient statistics for split
//!   selection.
//! * [`split`] — split search over AVC data with one deterministic
//!   tie-breaking order, used by *every* algorithm so outputs are
//!   bit-identical.
//! * [`grow`] — the greedy top-down induction schema (the paper's Figure 1)
//!   over in-memory data; the reference all scalable algorithms must match.
//! * [`catset`] — category subsets for categorical splitting predicates.
//! * [`subsample`] — the confidence-gated subsampled split search layered
//!   on the columnar engine (exact output, fewer points evaluated), plus
//!   the Lemma 3.1 corner bound and a mergeable quantile sketch.

#![warn(missing_docs)]

pub mod avc;
pub mod catset;
pub mod columnar;
pub mod grow;
pub mod impurity;
pub mod model;
pub mod model_io;
pub mod pruning;
pub mod quest;
pub mod split;
pub mod stats;
pub mod subsample;

pub use avc::{AttrAvc, AvcGroup, CatAvc, NumAvc, OrdF64};
pub use catset::CatSet;
pub use columnar::{grow_weighted, grow_weighted_gated, ColumnarSample, NodeRows};
pub use grow::{GrowthLimits, ImpuritySelector, SplitSelector, TdTreeBuilder};
pub use impurity::{split_impurity, Entropy, Gini, Impurity};
pub use model::{Node, NodeId, NodeKind, Predicate, Split, Tree};
pub use pruning::{prune_mdl, prune_reduced_error, MdlConfig};
pub use quest::QuestSelector;
pub use split::{best_split, cmp_splits, sweep_numeric, SplitEval};
pub use subsample::{
    corner_lower_bound, ColumnarCtx, QuantileSketch, SubsampleParams, SubsampleRuntime,
    SubsampleSnapshot, SubsampleStats,
};
