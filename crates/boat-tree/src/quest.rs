//! A QUEST-style *non-impurity* split selection method \[LS97\].
//!
//! The paper's §2.2 and §5 note that BOAT's induction schema is not tied to
//! impurity functions: "our techniques can be instantiated with other
//! split selection methods from the literature, e.g., QUEST", and §5 shows
//! experiments with a non-impurity method. This module provides such a
//! method for the shared [`crate::grow::SplitSelector`]
//! interface, in the *spirit* of QUEST (simplified):
//!
//! 1. **Attribute selection by association tests** — each numeric attribute
//!    is scored by a one-way ANOVA F-test across the class labels, each
//!    categorical attribute by a chi-square test of the category×class
//!    table; the attribute with the smallest p-value wins. Unlike
//!    exhaustive impurity search, this is *unbiased* across attribute types
//!    and needs only O(1) statistics per attribute.
//! 2. **Split point by discriminant analysis (simplified)** — classes are
//!    grouped into two superclasses by their attribute means; the split
//!    point is the midpoint between the superclass means, snapped to the
//!    largest observed value below it (so the predicate is expressed in
//!    observed values, like every other split in this workspace).
//! 3. **Categorical splits** — the subset of categories whose class-0
//!    proportion is at least the node's overall proportion (canonicalized).
//!
//! Determinism: all scores are computed from exact counts/sums; ties break
//! on the lower attribute index.

use crate::avc::AvcGroup;
use crate::catset::CatSet;
use crate::grow::SplitSelector;
use crate::model::{Predicate, Split};
use crate::split::SplitEval;
use crate::stats::{chi2_sf, f_sf};
use boat_data::{Record, Schema};

/// The simplified QUEST-style selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuestSelector;

impl QuestSelector {
    /// Construct the selector.
    pub fn new() -> Self {
        QuestSelector
    }
}

/// Per-class running moments of one numeric attribute.
#[derive(Debug, Clone)]
struct Moments {
    n: Vec<f64>,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl Moments {
    fn new(k: usize) -> Self {
        Moments {
            n: vec![0.0; k],
            sum: vec![0.0; k],
            sumsq: vec![0.0; k],
        }
    }

    /// Absorb a whole AVC-set.
    fn from_avc(avc: &crate::avc::NumAvc, k: usize) -> Self {
        let mut m = Moments::new(k);
        for (v, counts) in avc.iter() {
            for (class, &c) in counts.iter().enumerate() {
                if c > 0 {
                    m.n[class] += c as f64;
                    m.sum[class] += v * c as f64;
                    m.sumsq[class] += v * v * c as f64;
                }
            }
        }
        m
    }

    /// One-way ANOVA p-value across classes (None if undefined).
    fn anova_p(&self) -> Option<f64> {
        let k = self.n.iter().filter(|&&n| n > 0.0).count();
        let n: f64 = self.n.iter().sum();
        if k < 2 || n <= k as f64 {
            return None;
        }
        let grand_mean = self.sum.iter().sum::<f64>() / n;
        let mut ss_between = 0.0;
        let mut ss_within = 0.0;
        for i in 0..self.n.len() {
            if self.n[i] == 0.0 {
                continue;
            }
            let mean = self.sum[i] / self.n[i];
            ss_between += self.n[i] * (mean - grand_mean) * (mean - grand_mean);
            ss_within += self.sumsq[i] - self.n[i] * mean * mean;
        }
        let d1 = (k - 1) as f64;
        let d2 = n - k as f64;
        if ss_within <= 1e-12 {
            // Perfect separation (or a constant attribute).
            return if ss_between > 1e-12 { Some(0.0) } else { None };
        }
        let f = (ss_between / d1) / (ss_within / d2);
        Some(f_sf(f, d1, d2))
    }
}

/// Chi-square p-value of a category × class contingency table.
fn chi2_p(counts: &[Vec<u64>]) -> Option<f64> {
    let k = counts.first()?.len();
    let rows: Vec<&Vec<u64>> = counts.iter().filter(|r| r.iter().any(|&c| c > 0)).collect();
    if rows.len() < 2 {
        return None;
    }
    let mut col_totals = vec![0f64; k];
    let mut grand = 0f64;
    for r in &rows {
        for (j, &c) in r.iter().enumerate() {
            col_totals[j] += c as f64;
            grand += c as f64;
        }
    }
    let live_cols = col_totals.iter().filter(|&&c| c > 0.0).count();
    if live_cols < 2 || grand == 0.0 {
        return None;
    }
    let mut stat = 0.0;
    for r in &rows {
        let row_total: f64 = r.iter().map(|&c| c as f64).sum();
        for (j, &c) in r.iter().enumerate() {
            if col_totals[j] == 0.0 {
                continue;
            }
            let expect = row_total * col_totals[j] / grand;
            if expect > 0.0 {
                let d = c as f64 - expect;
                stat += d * d / expect;
            }
        }
    }
    let dof = ((rows.len() - 1) * (live_cols - 1)) as f64;
    Some(chi2_sf(stat, dof))
}

impl SplitSelector for QuestSelector {
    fn select(&self, schema: &Schema, group: &AvcGroup) -> Option<SplitEval> {
        // Reconstruct the per-record view the scoring needs from AVC data
        // (exact: AVC sets are sufficient statistics for both tests).
        let k = schema.n_classes();
        let mut best: Option<(f64, usize)> = None; // (p-value, attr)
        for a in 0..schema.n_attributes() {
            let p = match group.attr(a) {
                crate::avc::AttrAvc::Num(avc) => Moments::from_avc(avc, k).anova_p(),
                crate::avc::AttrAvc::Cat(avc) => {
                    let table: Vec<Vec<u64>> = (0..avc.cardinality())
                        .map(|c| avc.counts_for(c).to_vec())
                        .collect();
                    chi2_p(&table)
                }
            };
            if let Some(p) = p {
                if best.is_none_or(|(bp, _)| p < bp) {
                    best = Some((p, a));
                }
            }
        }
        let (_, attr) = best?;

        match group.attr(attr) {
            crate::avc::AttrAvc::Num(avc) => {
                // Superclass means: classes above/below the grand mean.
                let m = Moments::from_avc(avc, k);
                let n: f64 = m.n.iter().sum();
                let grand = m.sum.iter().sum::<f64>() / n;
                let (mut lo_n, mut lo_sum, mut hi_n, mut hi_sum) = (0.0, 0.0, 0.0, 0.0);
                for i in 0..k {
                    if m.n[i] == 0.0 {
                        continue;
                    }
                    let mean = m.sum[i] / m.n[i];
                    if mean <= grand {
                        lo_n += m.n[i];
                        lo_sum += m.sum[i];
                    } else {
                        hi_n += m.n[i];
                        hi_sum += m.sum[i];
                    }
                }
                if lo_n == 0.0 || hi_n == 0.0 {
                    return None;
                }
                let cut = 0.5 * (lo_sum / lo_n + hi_sum / hi_n);
                // Snap to the largest observed value strictly below `cut`
                // (predicates are expressed in observed values).
                let mut snapped: Option<f64> = None;
                for (v, _) in avc.iter() {
                    if v < cut {
                        snapped = Some(v);
                    } else {
                        break;
                    }
                }
                let point = snapped?;
                // Gather partition counts.
                let mut left = vec![0u64; k];
                let mut right = vec![0u64; k];
                for (v, counts) in avc.iter() {
                    let side = if v <= point { &mut left } else { &mut right };
                    for (s, c) in side.iter_mut().zip(counts) {
                        *s += c;
                    }
                }
                if right.iter().sum::<u64>() == 0 {
                    return None;
                }
                Some(SplitEval {
                    split: Split {
                        attr,
                        predicate: Predicate::NumLe(point),
                    },
                    impurity: f64::NAN, // not an impurity-based score
                    left_counts: left,
                    right_counts: right,
                })
            }
            crate::avc::AttrAvc::Cat(avc) => {
                let universe = avc.observed();
                if universe.len() < 2 {
                    return None;
                }
                let totals: Vec<u64> = {
                    let mut t = vec![0u64; k];
                    for c in universe.iter() {
                        for (ti, x) in t.iter_mut().zip(avc.counts_for(c)) {
                            *ti += x;
                        }
                    }
                    t
                };
                let grand: u64 = totals.iter().sum();
                let overall0 = totals[0] as f64 / grand as f64;
                let mut subset = CatSet::EMPTY;
                for c in universe.iter() {
                    let counts = avc.counts_for(c);
                    let tot: u64 = counts.iter().sum();
                    if tot > 0 && counts[0] as f64 / tot as f64 >= overall0 {
                        subset.insert(c);
                    }
                }
                if subset.is_empty() || subset == universe {
                    return None;
                }
                let canonical = subset.canonicalize(universe);
                let mut left = vec![0u64; k];
                for c in canonical.iter() {
                    for (l, x) in left.iter_mut().zip(avc.counts_for(c)) {
                        *l += x;
                    }
                }
                let right: Vec<u64> = totals.iter().zip(&left).map(|(t, l)| t - l).collect();
                Some(SplitEval {
                    split: Split {
                        attr,
                        predicate: Predicate::CatIn(canonical),
                    },
                    impurity: f64::NAN,
                    left_counts: left,
                    right_counts: right,
                })
            }
        }
    }

    fn select_records(&self, schema: &Schema, records: &[&Record]) -> Option<SplitEval> {
        let group = AvcGroup::from_records(schema, records.iter().copied());
        self.select(schema, &group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{GrowthLimits, TdTreeBuilder};
    use boat_data::{Attribute, Field, Schema};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::numeric("signal"),
                Attribute::numeric("noise"),
                Attribute::categorical("cat", 4),
            ],
            2,
        )
        .unwrap()
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let label = (i % 2) as u16;
                // "signal" separates classes by mean; "noise" does not.
                let signal = if label == 0 {
                    (i % 50) as f64
                } else {
                    100.0 + (i % 50) as f64
                };
                let noise = (i % 7) as f64;
                Record::new(
                    vec![
                        Field::Num(signal),
                        Field::Num(noise),
                        Field::Cat((i % 4) as u32),
                    ],
                    label,
                )
            })
            .collect()
    }

    #[test]
    fn picks_the_associated_attribute() {
        let s = schema();
        let rs = records(400);
        let group = AvcGroup::from_records(&s, &rs);
        let eval = QuestSelector::new().select(&s, &group).unwrap();
        assert_eq!(
            eval.split.attr, 0,
            "ANOVA must pick the separating attribute"
        );
        // Perfect separation: the split divides classes cleanly.
        assert_eq!(eval.left_counts[1], 0);
        assert_eq!(eval.right_counts[0], 0);
    }

    #[test]
    fn split_point_is_an_observed_value() {
        let s = schema();
        let rs = records(400);
        let group = AvcGroup::from_records(&s, &rs);
        let eval = QuestSelector::new().select(&s, &group).unwrap();
        let Predicate::NumLe(x) = eval.split.predicate else {
            panic!("numeric")
        };
        assert!(
            rs.iter().any(|r| r.num(0) == x),
            "split point {x} must be observed"
        );
    }

    #[test]
    fn builds_a_consistent_tree() {
        let s = schema();
        let rs = records(600);
        let sel = QuestSelector::new();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&s, &rs);
        assert!(tree.n_nodes() >= 3);
        // Perfectly separable data: training accuracy 100%.
        for r in &rs {
            assert_eq!(tree.predict(r), r.label());
        }
    }

    #[test]
    fn categorical_association_wins_when_it_is_the_signal() {
        let s = Schema::new(
            vec![
                Attribute::numeric("noise"),
                Attribute::categorical("cat", 3),
            ],
            2,
        )
        .unwrap();
        let rs: Vec<Record> = (0..300)
            .map(|i| {
                let c = (i % 3) as u32;
                let label = u16::from(c == 2);
                Record::new(vec![Field::Num((i % 5) as f64), Field::Cat(c)], label)
            })
            .collect();
        let group = AvcGroup::from_records(&s, &rs);
        let eval = QuestSelector::new().select(&s, &group).unwrap();
        assert_eq!(eval.split.attr, 1);
        let Predicate::CatIn(subset) = eval.split.predicate else {
            panic!("categorical")
        };
        // {2} vs {0,1}: canonical mask for {2} is 0b100 = 4 > 0b011 = 3,
        // so the canonical side is {0,1}.
        assert_eq!(subset, CatSet::from_iter([0, 1]));
    }

    #[test]
    fn pure_node_has_no_split() {
        let s = schema();
        let rs: Vec<Record> = records(100).into_iter().map(|r| r.with_label(0)).collect();
        let group = AvcGroup::from_records(&s, &rs);
        assert!(QuestSelector::new().select(&s, &group).is_none());
    }
}
