//! Compact binary serialization for trained trees.
//!
//! A classifier that cannot be saved is a benchmark, not a product. The
//! format is a versioned, preorder encoding of the reachable tree:
//!
//! ```text
//! magic "BOATTREE" | version u32 | n_classes u16 | preorder nodes…
//! node := tag u8 (0 = leaf, 1 = internal)
//!         class_counts (n_classes × u64)
//!         internal only: attr u32, pred_tag u8 (0 = NumLe, 1 = CatIn),
//!                        operand (f64 bits | u64 mask), left subtree,
//!                        right subtree
//! ```
//!
//! Round-trips are exact (split points restored bit-for-bit), so a
//! serialized tree still satisfies the workspace's structural-equality
//! guarantees.

use crate::catset::CatSet;
use crate::model::{NodeKind, Predicate, Split, Tree};
use boat_data::{DataError, Result};

const MAGIC: &[u8; 8] = b"BOATTREE";
const VERSION: u32 = 1;

impl Tree {
    /// Serialize the reachable tree to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let root = self.root();
        let k = self.node(root).class_counts.len();
        let mut out = Vec::with_capacity(16 + self.n_nodes() * (2 + k * 8));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(k as u16).to_le_bytes());
        self.write_node(root, &mut out);
        out
    }

    fn write_node(&self, id: crate::model::NodeId, out: &mut Vec<u8>) {
        let node = self.node(id);
        match &node.kind {
            NodeKind::Leaf => out.push(0),
            NodeKind::Internal { .. } => out.push(1),
        }
        for &c in &node.class_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        if let NodeKind::Internal { split, left, right } = &node.kind {
            out.extend_from_slice(&(split.attr as u32).to_le_bytes());
            match split.predicate {
                Predicate::NumLe(x) => {
                    out.push(0);
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
                Predicate::CatIn(set) => {
                    out.push(1);
                    out.extend_from_slice(&set.mask().to_le_bytes());
                }
            }
            self.write_node(*left, out);
            self.write_node(*right, out);
        }
    }

    /// Deserialize a tree previously produced by [`Tree::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Tree> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(DataError::Corrupt("not a BOATTREE blob".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(DataError::Corrupt(format!(
                "unsupported tree version {version}"
            )));
        }
        let k = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
        if k == 0 || k > 1 << 12 {
            return Err(DataError::Corrupt(format!("implausible class count {k}")));
        }
        let tree = read_node(&mut r, k)?;
        if r.pos != bytes.len() {
            return Err(DataError::Corrupt(format!(
                "{} trailing bytes after the tree",
                bytes.len() - r.pos
            )));
        }
        Ok(tree)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DataError::Corrupt("truncated tree blob".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn read_node(r: &mut Reader<'_>, k: usize) -> Result<Tree> {
    let tag = r.take(1)?[0];
    let mut counts = Vec::with_capacity(k);
    for _ in 0..k {
        counts.push(u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")));
    }
    match tag {
        0 => Ok(Tree::leaf(counts)),
        1 => {
            let attr = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
            let pred = match r.take(1)?[0] {
                0 => Predicate::NumLe(f64::from_bits(u64::from_le_bytes(
                    r.take(8)?.try_into().expect("8 bytes"),
                ))),
                1 => Predicate::CatIn(CatSet::from_mask(u64::from_le_bytes(
                    r.take(8)?.try_into().expect("8 bytes"),
                ))),
                t => return Err(DataError::Corrupt(format!("unknown predicate tag {t}"))),
            };
            let left = read_node(r, k)?;
            let right = read_node(r, k)?;
            let left_counts = left.node(left.root()).class_counts.clone();
            let right_counts = right.node(right.root()).class_counts.clone();
            let mut tree = Tree::leaf(counts);
            let root = tree.root();
            let (l, rt) = tree.split_node(
                root,
                Split {
                    attr,
                    predicate: pred,
                },
                left_counts,
                right_counts,
            );
            tree.replace_subtree(l, &left);
            tree.replace_subtree(rt, &right);
            tree.compact();
            Ok(tree)
        }
        t => Err(DataError::Corrupt(format!("unknown node tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{GrowthLimits, TdTreeBuilder};
    use crate::{Gini, ImpuritySelector};
    use boat_data::{Attribute, Field, Record, Schema};

    fn sample_tree() -> Tree {
        let schema = Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 5)],
            3,
        )
        .unwrap();
        let records: Vec<Record> = (0..300)
            .map(|i| {
                let x = (i % 60) as f64;
                let c = (i % 5) as u32;
                let label = if c == 4 { 2 } else { u16::from(x >= 30.0) };
                Record::new(vec![Field::Num(x), Field::Cat(c)], label)
            })
            .collect();
        let sel = ImpuritySelector::new(Gini);
        TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records)
    }

    #[test]
    fn roundtrip_is_exact() {
        let tree = sample_tree();
        let bytes = tree.to_bytes();
        let back = Tree::from_bytes(&bytes).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn roundtrip_single_leaf() {
        let tree = Tree::leaf(vec![3, 0, 9]);
        let back = Tree::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let tree = sample_tree();
        let mut bytes = tree.to_bytes();
        assert!(Tree::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Tree::from_bytes(&[]).is_err());
        bytes[0] = b'X';
        assert!(Tree::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let tree = sample_tree();
        let mut bytes = tree.to_bytes();
        bytes.push(7);
        assert!(Tree::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_version() {
        let tree = Tree::leaf(vec![1, 1]);
        let mut bytes = tree.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(Tree::from_bytes(&bytes).is_err());
    }

    #[test]
    fn predictions_survive_roundtrip() {
        let tree = sample_tree();
        let back = Tree::from_bytes(&tree.to_bytes()).unwrap();
        for i in 0..200 {
            let r = Record::new(
                vec![Field::Num((i % 60) as f64), Field::Cat((i % 5) as u32)],
                0,
            );
            assert_eq!(tree.predict(&r), back.predict(&r));
        }
    }

    #[test]
    fn edge_value_predictions_survive_roundtrip() {
        // The pinned prediction-time contract (NaN routes right at numeric
        // splits, unseen category codes route right at categorical splits —
        // see `model::Predicate::matches`) must hold identically for a
        // deserialized tree: split points are restored bit-for-bit, and the
        // routing rule depends only on those bits.
        let tree = sample_tree();
        let back = Tree::from_bytes(&tree.to_bytes()).unwrap();
        let probes = [
            Record::new(vec![Field::Num(f64::NAN), Field::Cat(0)], 0),
            Record::new(vec![Field::Num(f64::INFINITY), Field::Cat(4)], 0),
            Record::new(vec![Field::Num(f64::NEG_INFINITY), Field::Cat(2)], 0),
            // Category codes the training data never contained (schema says
            // cardinality 5; codes up to 63 are representable).
            Record::new(vec![Field::Num(10.0), Field::Cat(37)], 0),
            Record::new(vec![Field::Num(45.0), Field::Cat(63)], 0),
        ];
        for r in &probes {
            assert_eq!(tree.predict(r), back.predict(r), "probe {r}");
        }
    }
}
