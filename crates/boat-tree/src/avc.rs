//! AVC-sets and AVC-groups \[GRG98\].
//!
//! The RainForest framework observed that split selection never needs the
//! tuples themselves — only, per predictor attribute, the count of tuples
//! for each (attribute value, class label) pair: the **AVC-set** of the
//! attribute at a node. The collection of all attributes' AVC-sets at a node
//! is its **AVC-group**. BOAT's categorical verification uses the same
//! structure, and the in-memory builder evaluates splits through it too, so
//! every algorithm derives splits from *identical counts* — which is what
//! makes their outputs bit-identical.

use crate::catset::CatSet;
use boat_data::{AttrType, Record, Schema};
use std::collections::BTreeMap;

/// A totally-ordered wrapper for finite `f64` attribute values
/// (via `f64::total_cmp`).
///
/// Equality is defined to match [`f64::total_cmp`] exactly (two values are
/// equal iff their bit patterns are, so `-0.0 != 0.0` and NaN payloads are
/// distinguished). A derived `PartialEq` would use IEEE `==`, which calls
/// `-0.0 == 0.0` *equal* while `cmp` orders them `Less` — an `Eq`/`Ord`
/// consistency violation that breaks the `BTreeMap` contract.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// AVC-set of a categorical attribute: per-(category, class) counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CatAvc {
    cardinality: u32,
    n_classes: usize,
    counts: Vec<u64>, // cardinality × n_classes, row-major by category
}

impl CatAvc {
    /// An empty AVC-set for an attribute with `cardinality` categories.
    pub fn new(cardinality: u32, n_classes: usize) -> Self {
        CatAvc {
            cardinality,
            n_classes,
            counts: vec![0; cardinality as usize * n_classes],
        }
    }

    /// Count one tuple with category `cat` and class `label`.
    #[inline]
    pub fn add(&mut self, cat: u32, label: u16) {
        self.counts[cat as usize * self.n_classes + label as usize] += 1;
    }

    /// Count `weight` tuples with category `cat` and class `label` at once.
    /// The columnar sample engine accumulates bootstrap multiplicities this
    /// way instead of cloning records; `add_weighted(c, l, 1)` ≡ `add(c, l)`.
    #[inline]
    pub fn add_weighted(&mut self, cat: u32, label: u16, weight: u64) {
        self.counts[cat as usize * self.n_classes + label as usize] += weight;
    }

    /// Remove one previously-counted tuple (incremental deletions).
    #[inline]
    pub fn sub(&mut self, cat: u32, label: u16) {
        let cell = &mut self.counts[cat as usize * self.n_classes + label as usize];
        debug_assert!(*cell > 0, "CatAvc::sub below zero");
        *cell -= 1;
    }

    /// The per-class counts of one category.
    #[inline]
    pub fn counts_for(&self, cat: u32) -> &[u64] {
        let base = cat as usize * self.n_classes;
        &self.counts[base..base + self.n_classes]
    }

    /// Number of categories in the domain.
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Categories with at least one tuple.
    pub fn observed(&self) -> CatSet {
        CatSet::from_iter(
            (0..self.cardinality).filter(|&c| self.counts_for(c).iter().any(|&x| x > 0)),
        )
    }

    /// Number of (value, class) cells with the domain's full cardinality —
    /// the RainForest memory-accounting unit.
    pub fn n_entries(&self) -> usize {
        self.counts.len()
    }

    /// An empty AVC-set with the same shape (cardinality, class count) as
    /// `self`. Shard accumulators in the parallel cleanup scan start from
    /// this and are later combined with [`CatAvc::merge_from`].
    pub fn zeroed_like(&self) -> Self {
        CatAvc::new(self.cardinality, self.n_classes)
    }

    /// Add every cell of `other` into `self`.
    ///
    /// Counts are `u64` sums, so merging is exactly associative and
    /// commutative: any merge order over a set of shards produces
    /// bit-identical counts to a single sequential accumulation.
    pub fn merge_from(&mut self, other: &CatAvc) {
        debug_assert_eq!(self.cardinality, other.cardinality, "CatAvc shape mismatch");
        debug_assert_eq!(self.n_classes, other.n_classes, "CatAvc shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// AVC-set of a numeric attribute: per-(distinct value, class) counts, value
/// ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct NumAvc {
    n_classes: usize,
    map: BTreeMap<OrdF64, Vec<u64>>,
}

impl NumAvc {
    /// An empty numeric AVC-set.
    pub fn new(n_classes: usize) -> Self {
        NumAvc {
            n_classes,
            map: BTreeMap::new(),
        }
    }

    /// Count one tuple with value `v` and class `label`.
    pub fn add(&mut self, v: f64, label: u16) {
        self.map
            .entry(OrdF64(v))
            .or_insert_with(|| vec![0; self.n_classes])[label as usize] += 1;
    }

    /// Remove one previously-counted tuple; drops the entry when its counts
    /// reach zero (so `n_entries` reflects live distinct values).
    pub fn sub(&mut self, v: f64, label: u16) {
        let entry = self
            .map
            .get_mut(&OrdF64(v))
            .expect("NumAvc::sub of unseen value");
        debug_assert!(entry[label as usize] > 0, "NumAvc::sub below zero");
        entry[label as usize] -= 1;
        if entry.iter().all(|&c| c == 0) {
            self.map.remove(&OrdF64(v));
        }
    }

    /// Distinct values in ascending order with their per-class counts.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[u64])> {
        self.map.iter().map(|(k, v)| (k.0, v.as_slice()))
    }

    /// Materialize into parallel flat buffers — ascending distinct values
    /// plus row-major per-class counts (`n_classes` per value) — in a
    /// *single* pass over the tree map. Use this instead of collecting
    /// `(value, counts.to_vec())` pairs and re-collecting into buffers,
    /// which copies every count vector twice.
    pub fn materialized(&self) -> (Vec<f64>, Vec<u64>) {
        let mut values = Vec::with_capacity(self.map.len());
        let mut counts = Vec::with_capacity(self.map.len() * self.n_classes);
        for (k, c) in &self.map {
            values.push(k.0);
            counts.extend_from_slice(c);
        }
        (values, counts)
    }

    /// Consume the AVC-set into `(value, per-class counts)` entries in
    /// ascending value order, *moving* each count vector out of the map
    /// instead of cloning it (drain-instead-of-clone for call sites that
    /// own the set and only need its entries once).
    pub fn into_entries(self) -> impl Iterator<Item = (f64, Vec<u64>)> {
        self.map.into_iter().map(|(k, v)| (k.0, v))
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.map.len()
    }

    /// Number of (value, class) cells — the RainForest memory-accounting
    /// unit.
    pub fn n_entries(&self) -> usize {
        self.map.len() * self.n_classes
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// One attribute's AVC-set.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrAvc {
    /// Numeric attribute.
    Num(NumAvc),
    /// Categorical attribute.
    Cat(CatAvc),
}

impl AttrAvc {
    /// Memory-accounting cells.
    pub fn n_entries(&self) -> usize {
        match self {
            AttrAvc::Num(a) => a.n_entries(),
            AttrAvc::Cat(a) => a.n_entries(),
        }
    }
}

/// The AVC-group of a node: one AVC-set per predictor attribute plus the
/// node's class totals.
#[derive(Debug, Clone, PartialEq)]
pub struct AvcGroup {
    attrs: Vec<AttrAvc>,
    class_totals: Vec<u64>,
}

impl AvcGroup {
    /// An empty AVC-group for `schema`.
    pub fn new(schema: &Schema) -> Self {
        let attrs = schema
            .attributes()
            .iter()
            .map(|a| match a.ty() {
                AttrType::Numeric => AttrAvc::Num(NumAvc::new(schema.n_classes())),
                AttrType::Categorical { cardinality } => {
                    AttrAvc::Cat(CatAvc::new(cardinality, schema.n_classes()))
                }
            })
            .collect();
        AvcGroup {
            attrs,
            class_totals: vec![0; schema.n_classes()],
        }
    }

    /// Build from a set of records.
    pub fn from_records<'a>(
        schema: &Schema,
        records: impl IntoIterator<Item = &'a Record>,
    ) -> Self {
        let mut g = AvcGroup::new(schema);
        for r in records {
            g.add_record(r);
        }
        g
    }

    /// Count one record into every attribute's AVC-set.
    pub fn add_record(&mut self, r: &Record) {
        self.class_totals[r.label() as usize] += 1;
        for (i, avc) in self.attrs.iter_mut().enumerate() {
            match avc {
                AttrAvc::Num(a) => a.add(r.num(i), r.label()),
                AttrAvc::Cat(a) => a.add(r.cat(i), r.label()),
            }
        }
    }

    /// Remove one previously-counted record.
    pub fn sub_record(&mut self, r: &Record) {
        debug_assert!(self.class_totals[r.label() as usize] > 0);
        self.class_totals[r.label() as usize] -= 1;
        for (i, avc) in self.attrs.iter_mut().enumerate() {
            match avc {
                AttrAvc::Num(a) => a.sub(r.num(i), r.label()),
                AttrAvc::Cat(a) => a.sub(r.cat(i), r.label()),
            }
        }
    }

    /// Per-class totals of the counted records (the paper's `N^i`).
    pub fn class_totals(&self) -> &[u64] {
        &self.class_totals
    }

    /// Total records counted (`|F_n|`).
    pub fn n_records(&self) -> u64 {
        self.class_totals.iter().sum()
    }

    /// The AVC-set of attribute `attr`.
    pub fn attr(&self, attr: usize) -> &AttrAvc {
        &self.attrs[attr]
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total memory-accounting cells across all AVC-sets (the RainForest
    /// "AVC-group size" an algorithm must budget for).
    pub fn n_entries(&self) -> usize {
        self.attrs.iter().map(|a| a.n_entries()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::{Attribute, Field};

    fn schema() -> Schema {
        Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 3)],
            2,
        )
        .unwrap()
    }

    fn rec(x: f64, c: u32, label: u16) -> Record {
        Record::new(vec![Field::Num(x), Field::Cat(c)], label)
    }

    #[test]
    fn group_counts_records() {
        let s = schema();
        let rs = vec![
            rec(1.0, 0, 0),
            rec(1.0, 1, 1),
            rec(2.0, 0, 1),
            rec(3.0, 2, 0),
        ];
        let g = AvcGroup::from_records(&s, &rs);
        assert_eq!(g.class_totals(), &[2, 2]);
        assert_eq!(g.n_records(), 4);
        let AttrAvc::Num(num) = g.attr(0) else {
            panic!("attr 0 numeric")
        };
        // Single-pass materialization into the final flat buffers (no
        // intermediate per-value Vec clones).
        let (values, counts) = num.materialized();
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
        assert_eq!(counts, vec![1, 1, 0, 1, 1, 0]);
        let AttrAvc::Cat(cat) = g.attr(1) else {
            panic!("attr 1 categorical")
        };
        assert_eq!(cat.counts_for(0), &[1, 1]);
        assert_eq!(cat.counts_for(1), &[0, 1]);
        assert_eq!(cat.counts_for(2), &[1, 0]);
        assert_eq!(cat.observed(), CatSet::from_iter([0, 1, 2]));
    }

    #[test]
    fn sub_record_inverts_add() {
        let s = schema();
        let rs = vec![rec(1.0, 0, 0), rec(2.0, 1, 1), rec(2.0, 1, 1)];
        let mut g = AvcGroup::from_records(&s, &rs);
        let baseline = AvcGroup::from_records(&s, &rs[..2]);
        g.sub_record(&rs[2]);
        assert_eq!(g, baseline);
    }

    #[test]
    fn num_avc_drops_empty_entries() {
        let mut a = NumAvc::new(2);
        a.add(5.0, 0);
        a.add(5.0, 1);
        assert_eq!(a.n_distinct(), 1);
        a.sub(5.0, 0);
        assert_eq!(a.n_distinct(), 1);
        a.sub(5.0, 1);
        assert_eq!(a.n_distinct(), 0);
    }

    #[test]
    fn num_avc_iterates_in_value_order() {
        let mut a = NumAvc::new(2);
        for v in [3.0, -1.0, 2.5, -1.0] {
            a.add(v, 0);
        }
        let vals: Vec<f64> = a.iter().map(|(v, _)| v).collect();
        assert_eq!(vals, vec![-1.0, 2.5, 3.0]);
        assert_eq!(a.n_distinct(), 3);
    }

    #[test]
    fn entry_accounting() {
        let s = schema();
        let rs = vec![rec(1.0, 0, 0), rec(2.0, 1, 1)];
        let g = AvcGroup::from_records(&s, &rs);
        // numeric: 2 distinct × 2 classes; categorical: 3 cats × 2 classes.
        assert_eq!(g.n_entries(), 4 + 6);
    }

    #[test]
    fn cat_avc_observed_skips_empty_categories() {
        let mut a = CatAvc::new(4, 2);
        a.add(1, 0);
        a.add(3, 1);
        assert_eq!(a.observed(), CatSet::from_iter([1, 3]));
        a.sub(3, 1);
        assert_eq!(a.observed(), CatSet::from_iter([1]));
    }

    #[test]
    fn ordf64_total_order_handles_negatives() {
        let mut v = [OrdF64(1.0), OrdF64(-2.0), OrdF64(0.0), OrdF64(-0.0)];
        v.sort();
        assert_eq!(v.map(|o| o.0), [-2.0, -0.0, 0.0, 1.0]);
    }

    #[test]
    fn ordf64_eq_is_consistent_with_total_cmp() {
        use std::cmp::Ordering;
        // Signed zeros: total_cmp says Less, so PartialEq must say unequal
        // (a derived PartialEq would use IEEE ==, claiming equality).
        let (nz, pz) = (OrdF64(-0.0), OrdF64(0.0));
        assert_eq!(nz.cmp(&pz), Ordering::Less);
        assert_ne!(nz, pz);
        assert_eq!(nz, nz);
        assert_eq!(pz, pz);
        // NaN payloads: equal bits compare Equal (and eq), distinct
        // payloads compare unequal, both consistently with total_cmp.
        let qnan = OrdF64(f64::from_bits(0x7ff8_0000_0000_0000));
        let payload = OrdF64(f64::from_bits(0x7ff8_0000_0000_0001));
        assert_eq!(qnan, qnan);
        assert_eq!(qnan.cmp(&qnan), Ordering::Equal);
        assert_ne!(qnan, payload);
        assert_eq!(qnan.cmp(&payload), Ordering::Less);
        // The blanket invariant: eq ⟺ cmp == Equal on a value sweep.
        let vals = [-1.5, -0.0, 0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    OrdF64(a) == OrdF64(b),
                    OrdF64(a).cmp(&OrdF64(b)) == Ordering::Equal,
                    "eq/cmp inconsistent for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn materialized_matches_iter_in_one_pass() {
        let mut a = NumAvc::new(3);
        for (v, l) in [(2.0, 0), (1.0, 2), (2.0, 1), (-3.0, 0), (2.0, 0)] {
            a.add(v, l);
        }
        let (values, counts) = a.materialized();
        assert_eq!(values, vec![-3.0, 1.0, 2.0]);
        assert_eq!(counts.len(), values.len() * 3);
        let flat_from_iter: Vec<u64> = a.iter().flat_map(|(_, c)| c.to_vec()).collect();
        assert_eq!(counts, flat_from_iter);
    }

    #[test]
    fn into_entries_moves_counts_in_order() {
        let mut a = NumAvc::new(2);
        for (v, l) in [(5.0, 1), (4.0, 0), (5.0, 1)] {
            a.add(v, l);
        }
        let entries: Vec<(f64, Vec<u64>)> = a.into_entries().collect();
        assert_eq!(entries, vec![(4.0, vec![1, 0]), (5.0, vec![0, 2])]);
    }

    #[test]
    fn cat_avc_add_weighted_matches_repeated_add() {
        let mut w = CatAvc::new(3, 2);
        let mut r = CatAvc::new(3, 2);
        for (c, l, n) in [(0u32, 0u16, 4u64), (2, 1, 7), (0, 1, 1)] {
            w.add_weighted(c, l, n);
            for _ in 0..n {
                r.add(c, l);
            }
        }
        assert_eq!(w, r);
    }
}
