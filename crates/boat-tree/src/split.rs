//! Split selection (paper §2.2).
//!
//! All algorithms in this workspace — the in-memory builder, RainForest and
//! BOAT — evaluate candidate splits through the functions in this module,
//! over identical integer class counts, with one deterministic total order
//! for tie-breaking ([`cmp_splits`]). That is what makes their output trees
//! bit-identical, which the paper's correctness guarantee is stated in terms
//! of.
//!
//! * numeric attributes: sweep the distinct observed values in ascending
//!   order, evaluating `X ≤ v` for every value except the largest
//!   ([`sweep_numeric`]); BOAT reuses the same sweep with a non-zero base
//!   (the counts at its confidence-interval left edge).
//! * categorical attributes: for two classes, the provably optimal
//!   class-proportion ordering sweep \[BFOS84\]; for more classes, exhaustive
//!   search up to 12 observed categories and the ordering heuristic beyond.

use crate::avc::{AttrAvc, AvcGroup, CatAvc, NumAvc};
use crate::catset::CatSet;
use crate::impurity::{split_impurity, Impurity};
use crate::model::{Predicate, Split};
use boat_data::Schema;
use std::cmp::Ordering;

/// Maximum observed categories for exhaustive subset search with 3+
/// classes.
pub const EXHAUSTIVE_SUBSET_MAX: u32 = 12;

/// A fully evaluated candidate split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitEval {
    /// The candidate splitting criterion.
    pub split: Split,
    /// Its weighted impurity (lower is better).
    pub impurity: f64,
    /// Per-class counts of the left partition (records matching the
    /// predicate).
    pub left_counts: Vec<u64>,
    /// Per-class counts of the right partition.
    pub right_counts: Vec<u64>,
}

/// The deterministic total order on candidate splits: lower impurity wins;
/// ties break on the smaller attribute index, then on the predicate
/// (smaller split point / smaller canonical subset mask).
pub fn cmp_splits(a: &SplitEval, b: &SplitEval) -> Ordering {
    a.impurity
        .total_cmp(&b.impurity)
        .then_with(|| a.split.attr.cmp(&b.split.attr))
        .then_with(|| {
            a.split
                .predicate
                .tie_rank()
                .cmp(&b.split.predicate.tie_rank())
        })
}

/// Sweep candidate numeric splits `X ≤ v` on attribute `attr`.
///
/// `entries` must yield `(value, per-class counts at that value)` in strictly
/// ascending value order. `init_left` optionally seeds the sweep with the
/// counts of all tuples strictly below the first entry — this is how BOAT
/// evaluates in-interval candidates without the below-interval tuples in
/// memory. If `init_candidate` is set (a value strictly smaller than every
/// entry), "split exactly there with the seeded counts" is evaluated as a
/// candidate too. `totals` are the family's per-class counts `N^i`.
///
/// A candidate is valid only if both sides are non-empty. Returns the best
/// candidate under [`cmp_splits`] (within one attribute that means: lowest
/// impurity, then smallest split value).
pub fn sweep_numeric<'a>(
    attr: usize,
    entries: impl Iterator<Item = (f64, &'a [u64])>,
    init_left: Option<&[u64]>,
    init_candidate: Option<f64>,
    totals: &[u64],
    imp: &dyn Impurity,
) -> Option<SplitEval> {
    let n: u64 = totals.iter().sum();
    let mut left: Vec<u64> = match init_left {
        Some(counts) => counts.to_vec(),
        None => vec![0; totals.len()],
    };
    // Candidate values strictly ascend and `Predicate::NumLe`'s tie rank is
    // monotone in the value, so [`cmp_splits`] within this one attribute
    // reduces to a strict impurity comparison: equal impurity keeps the
    // earlier (smaller) value. Tracking `(impurity, value, left snapshot)`
    // and materializing one `SplitEval` at the end is therefore
    // bit-identical to building a candidate per point — and drops the
    // two Vec allocations per candidate this hot loop used to pay.
    let mut best: Option<(f64, f64)> = None; // (impurity, value)
    let mut best_left: Vec<u64> = Vec::new();
    let mut right: Vec<u64> = vec![0; totals.len()];
    let mut consider = |value: f64, left: &[u64]| {
        let left_n: u64 = left.iter().sum();
        if left_n == 0 || left_n == n {
            return;
        }
        for (r, (t, l)) in right.iter_mut().zip(totals.iter().zip(left)) {
            *r = t - l;
        }
        let impurity = split_impurity(imp, left, &right);
        if best.is_none_or(|(b, _)| impurity.total_cmp(&b) == Ordering::Less) {
            best = Some((impurity, value));
            best_left.clear();
            best_left.extend_from_slice(left);
        }
    };
    if let Some(v0) = init_candidate {
        consider(v0, &left);
    }
    let mut prev = init_candidate;
    for (v, counts) in entries {
        debug_assert!(
            prev.is_none_or(|p| p.total_cmp(&v) == Ordering::Less),
            "sweep_numeric entries must be strictly ascending (total_cmp order)"
        );
        prev = Some(v);
        for (l, c) in left.iter_mut().zip(counts) {
            *l += c;
        }
        consider(v, &left);
    }
    let (impurity, value) = best?;
    let right_counts: Vec<u64> = totals.iter().zip(&best_left).map(|(t, l)| t - l).collect();
    Some(SplitEval {
        split: Split {
            attr,
            predicate: Predicate::NumLe(value),
        },
        impurity,
        left_counts: best_left,
        right_counts,
    })
}

/// Best numeric split from raw `(value, label)` pairs: sorts in place,
/// aggregates equal values, and sweeps. Equivalent to building a [`NumAvc`]
/// and calling [`best_numeric_split`] (identical candidates, counts and
/// floats) but several times faster — this is the in-memory builder's hot
/// path, exercised heavily by BOAT's bootstrap phase.
pub fn best_numeric_split_from_pairs(
    attr: usize,
    pairs: &mut [(f64, u16)],
    totals: &[u64],
    imp: &dyn Impurity,
) -> Option<SplitEval> {
    pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let k = totals.len();
    // Group runs of equal values into parallel arrays.
    let mut values: Vec<f64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new(); // flat, k per value
    for &(v, label) in pairs.iter() {
        let new_run = values
            .last()
            .is_none_or(|&last| last.to_bits() != v.to_bits());
        if new_run {
            values.push(v);
            counts.extend(std::iter::repeat_n(0, k));
        }
        let base = counts.len() - k;
        counts[base + label as usize] += 1;
    }
    sweep_numeric(
        attr,
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, &counts[i * k..(i + 1) * k])),
        None,
        None,
        totals,
        imp,
    )
}

/// Best numeric split from an AVC-set.
pub fn best_numeric_split(
    attr: usize,
    avc: &NumAvc,
    totals: &[u64],
    imp: &dyn Impurity,
) -> Option<SplitEval> {
    sweep_numeric(attr, avc.iter(), None, None, totals, imp)
}

/// Order observed categories by ascending proportion of class `class_idx`
/// (exact rational comparison), ties by category code.
fn order_by_class_fraction(avc: &CatAvc, observed: &[u32], class_idx: usize) -> Vec<u32> {
    let mut cats = observed.to_vec();
    cats.sort_by(|&a, &b| {
        let (ca, ta) = {
            let c = avc.counts_for(a);
            (c[class_idx] as u128, c.iter().sum::<u64>() as u128)
        };
        let (cb, tb) = {
            let c = avc.counts_for(b);
            (c[class_idx] as u128, c.iter().sum::<u64>() as u128)
        };
        // ca/ta vs cb/tb without floats: cross-multiply.
        (ca * tb).cmp(&(cb * ta)).then_with(|| a.cmp(&b))
    });
    cats
}

/// Best categorical split `X ∈ Y` from an AVC-set.
///
/// The returned subset is canonicalized within the *observed* category
/// universe (see [`CatSet::canonicalize`]); `left_counts` always corresponds
/// to the canonical subset.
pub fn best_categorical_split(attr: usize, avc: &CatAvc, imp: &dyn Impurity) -> Option<SplitEval> {
    let universe = avc.observed();
    let observed: Vec<u32> = universe.iter().collect();
    if observed.len() < 2 {
        return None;
    }
    let totals: Vec<u64> = {
        let mut t = vec![0u64; avc.n_classes()];
        for &c in &observed {
            for (ti, ci) in t.iter_mut().zip(avc.counts_for(c)) {
                *ti += ci;
            }
        }
        t
    };

    let candidate_subsets: Vec<CatSet> = if avc.n_classes() == 2 {
        // Breiman's theorem: for two classes and a concave impurity, an
        // optimal subset is a prefix of the categories ordered by class-1
        // proportion.
        let order = order_by_class_fraction(avc, &observed, 1);
        (1..order.len())
            .map(|j| CatSet::from_iter(order[..j].iter().copied()))
            .collect()
    } else if observed.len() as u32 <= EXHAUSTIVE_SUBSET_MAX {
        // Exhaustive over subsets that contain the lowest observed category
        // (fixing one side avoids enumerating complements twice), excluding
        // the full set.
        let first = observed[0];
        let rest = &observed[1..];
        let m = rest.len();
        (0..(1u64 << m) - 1)
            .map(|bits| {
                let mut s = CatSet::from_iter([first]);
                for (i, &c) in rest.iter().enumerate() {
                    if bits & (1 << i) != 0 {
                        s.insert(c);
                    }
                }
                s
            })
            .collect()
    } else {
        // Heuristic for many categories and 3+ classes: ordering sweep by
        // class-0 proportion. Deterministic, identical across algorithms.
        let order = order_by_class_fraction(avc, &observed, 0);
        (1..order.len())
            .map(|j| CatSet::from_iter(order[..j].iter().copied()))
            .collect()
    };

    let mut best: Option<SplitEval> = None;
    for subset in candidate_subsets {
        let canonical = subset.canonicalize(universe);
        let mut left = vec![0u64; avc.n_classes()];
        for c in canonical.iter() {
            for (l, x) in left.iter_mut().zip(avc.counts_for(c)) {
                *l += x;
            }
        }
        let right: Vec<u64> = totals.iter().zip(&left).map(|(t, l)| t - l).collect();
        let left_n: u64 = left.iter().sum();
        let n: u64 = totals.iter().sum();
        if left_n == 0 || left_n == n {
            continue;
        }
        let impurity = split_impurity(imp, &left, &right);
        let cand = SplitEval {
            split: Split {
                attr,
                predicate: Predicate::CatIn(canonical),
            },
            impurity,
            left_counts: left,
            right_counts: right,
        };
        if best
            .as_ref()
            .is_none_or(|b| cmp_splits(&cand, b) == Ordering::Less)
        {
            best = Some(cand);
        }
    }
    best
}

/// Best split over every attribute of an AVC-group, under the global
/// deterministic order [`cmp_splits`].
pub fn best_split(schema: &Schema, group: &AvcGroup, imp: &dyn Impurity) -> Option<SplitEval> {
    debug_assert_eq!(schema.n_attributes(), group.n_attrs());
    let totals = group.class_totals();
    let mut best: Option<SplitEval> = None;
    for attr in 0..group.n_attrs() {
        let cand = match group.attr(attr) {
            AttrAvc::Num(avc) => best_numeric_split(attr, avc, totals, imp),
            AttrAvc::Cat(avc) => best_categorical_split(attr, avc, imp),
        };
        if let Some(c) = cand {
            if best
                .as_ref()
                .is_none_or(|b| cmp_splits(&c, b) == Ordering::Less)
            {
                best = Some(c);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impurity::{Entropy, Gini};
    use boat_data::{Attribute, Field, Record};

    fn build_num_avc(pairs: &[(f64, u16)]) -> (NumAvc, Vec<u64>) {
        let mut avc = NumAvc::new(2);
        let mut totals = vec![0u64; 2];
        for &(v, l) in pairs {
            avc.add(v, l);
            totals[l as usize] += 1;
        }
        (avc, totals)
    }

    #[test]
    fn pairs_fast_path_matches_avc_path() {
        // Random-ish fixture with duplicates; both paths must agree to the
        // bit (they share sweep_numeric and split_impurity).
        let pairs: Vec<(f64, u16)> = (0..500)
            .map(|i| (((i * 37) % 83) as f64, u16::from((i * 13) % 17 < 8)))
            .collect();
        let (avc, totals) = build_num_avc(&pairs);
        let slow = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        let mut p = pairs.clone();
        let fast = best_numeric_split_from_pairs(0, &mut p, &totals, &Gini).unwrap();
        assert_eq!(slow.split, fast.split);
        assert_eq!(slow.impurity.to_bits(), fast.impurity.to_bits());
        assert_eq!(slow.left_counts, fast.left_counts);
    }

    #[test]
    fn sweep_accepts_adjacent_signed_zero_runs() {
        // -0.0 and 0.0 are distinct under total_cmp (and distinct NumAvc /
        // run-grouping entries) but equal under `<`; the sweep's ascending-
        // order check must use total_cmp or this spuriously panics in debug
        // builds. Both the AVC path and the pairs fast path must agree.
        let pairs = [(-1.0, 0u16), (-0.0, 1), (0.0, 1), (1.0, 1)];
        let (avc, totals) = build_num_avc(&pairs);
        let slow = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        let mut p = pairs.to_vec();
        let fast = best_numeric_split_from_pairs(0, &mut p, &totals, &Gini).unwrap();
        assert_eq!(slow.split, fast.split);
        assert_eq!(slow.impurity.to_bits(), fast.impurity.to_bits());
        assert_eq!(slow.split.predicate, Predicate::NumLe(-1.0));
    }

    #[test]
    fn numeric_perfect_separation() {
        let (avc, totals) = build_num_avc(&[(1.0, 0), (2.0, 0), (3.0, 0), (10.0, 1), (11.0, 1)]);
        let e = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        assert_eq!(e.split.predicate, Predicate::NumLe(3.0));
        assert_eq!(e.impurity, 0.0);
        assert_eq!(e.left_counts, vec![3, 0]);
        assert_eq!(e.right_counts, vec![0, 2]);
    }

    #[test]
    fn numeric_never_splits_at_the_maximum() {
        let (avc, totals) = build_num_avc(&[(1.0, 0), (2.0, 1)]);
        let e = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        assert_eq!(e.split.predicate, Predicate::NumLe(1.0));
    }

    #[test]
    fn numeric_single_distinct_value_has_no_split() {
        let (avc, totals) = build_num_avc(&[(5.0, 0), (5.0, 1)]);
        assert!(best_numeric_split(0, &avc, &totals, &Gini).is_none());
    }

    #[test]
    fn numeric_tie_breaks_to_smaller_value() {
        // Symmetric data: splits at 1.0 and 3.0 score identically;
        // the sweep must keep 1.0.
        let (avc, totals) = build_num_avc(&[(1.0, 0), (2.0, 0), (2.0, 1), (3.0, 1)]);
        let at1 = {
            let left = [1u64, 0];
            let right = [1u64, 2];
            split_impurity(&Gini, &left, &right)
        };
        let at3 = {
            let left = [2u64, 1];
            let right = [0u64, 1];
            split_impurity(&Gini, &left, &right)
        };
        assert_eq!(at1, at3, "fixture must actually tie");
        let e = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        assert_eq!(e.split.predicate, Predicate::NumLe(1.0));
    }

    #[test]
    fn sweep_with_base_matches_full_sweep() {
        // Full data: values 1..=6. Base summarizes values <= 2.
        let all = [(1.0, 0), (2.0, 0), (3.0, 0), (4.0, 1), (5.0, 1), (6.0, 1)];
        let (avc, totals) = build_num_avc(&all);
        let full = best_numeric_split(0, &avc, &totals, &Gini).unwrap();

        let (tail_avc, _) = build_num_avc(&all[2..]);
        let base_counts = [2u64, 0];
        let from_base = sweep_numeric(
            0,
            tail_avc.iter(),
            Some(&base_counts),
            Some(2.0),
            &totals,
            &Gini,
        )
        .unwrap();
        assert_eq!(full.split, from_base.split);
        assert_eq!(full.impurity.to_bits(), from_base.impurity.to_bits());
        assert_eq!(full.left_counts, from_base.left_counts);
    }

    #[test]
    fn sweep_base_candidate_can_win() {
        // The best split is exactly at the base value.
        let all = [(1.0, 0), (2.0, 0), (3.0, 1), (4.0, 1)];
        let (avc, totals) = build_num_avc(&all);
        let full = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        assert_eq!(full.split.predicate, Predicate::NumLe(2.0));

        let (tail_avc, _) = build_num_avc(&all[2..]);
        let base_counts = [2u64, 0];
        let from_base = sweep_numeric(
            0,
            tail_avc.iter(),
            Some(&base_counts),
            Some(2.0),
            &totals,
            &Gini,
        )
        .unwrap();
        assert_eq!(from_base.split.predicate, Predicate::NumLe(2.0));
        assert_eq!(from_base.impurity, 0.0);
    }

    fn build_cat_avc(card: u32, k: usize, triples: &[(u32, u16, u64)]) -> CatAvc {
        let mut avc = CatAvc::new(card, k);
        for &(c, l, n) in triples {
            for _ in 0..n {
                avc.add(c, l);
            }
        }
        avc
    }

    #[test]
    fn categorical_perfect_separation() {
        let avc = build_cat_avc(4, 2, &[(0, 0, 5), (1, 1, 5), (2, 0, 5), (3, 1, 5)]);
        let e = best_categorical_split(0, &avc, &Gini).unwrap();
        assert_eq!(e.impurity, 0.0);
        let Predicate::CatIn(set) = e.split.predicate else {
            panic!("categorical")
        };
        // {0,2} vs {1,3}: canonical is the smaller mask {0,2} (0b0101).
        assert_eq!(set, CatSet::from_iter([0, 2]));
        assert_eq!(e.left_counts, vec![10, 0]);
    }

    #[test]
    fn categorical_single_observed_category_has_no_split() {
        let avc = build_cat_avc(4, 2, &[(2, 0, 5), (2, 1, 3)]);
        assert!(best_categorical_split(0, &avc, &Gini).is_none());
    }

    #[test]
    fn categorical_two_class_ordering_matches_exhaustive() {
        // Cross-check the Breiman prefix sweep against brute force on a
        // nontrivial 5-category fixture.
        let avc = build_cat_avc(
            5,
            2,
            &[
                (0, 0, 9),
                (0, 1, 1),
                (1, 0, 4),
                (1, 1, 6),
                (2, 0, 5),
                (2, 1, 5),
                (3, 0, 1),
                (3, 1, 9),
                (4, 0, 7),
                (4, 1, 3),
            ],
        );
        let fast = best_categorical_split(0, &avc, &Gini).unwrap();
        // Brute force over all subsets containing category 0.
        let universe = avc.observed();
        let mut best_imp = f64::INFINITY;
        for bits in 0..(1u64 << 4) {
            let mut s = CatSet::from_iter([0u32]);
            for i in 0..4u32 {
                if bits & (1 << i) != 0 {
                    s.insert(i + 1);
                }
            }
            if s == universe {
                continue;
            }
            let mut left = vec![0u64; 2];
            for c in s.iter() {
                for (l, x) in left.iter_mut().zip(avc.counts_for(c)) {
                    *l += x;
                }
            }
            let right = vec![26 - left[0], 24 - left[1]];
            best_imp = best_imp.min(split_impurity(&Gini, &left, &right));
        }
        assert!(
            (fast.impurity - best_imp).abs() < 1e-12,
            "prefix sweep {} vs exhaustive {best_imp}",
            fast.impurity
        );
    }

    #[test]
    fn categorical_multiclass_exhaustive() {
        // Three classes, three categories: category 0 -> class 0,
        // 1 -> class 1, 2 -> class 2. Any 1-vs-2 subset isolates a class.
        let avc = build_cat_avc(3, 3, &[(0, 0, 4), (1, 1, 4), (2, 2, 4)]);
        let e = best_categorical_split(0, &avc, &Gini).unwrap();
        let Predicate::CatIn(set) = e.split.predicate else {
            panic!()
        };
        assert_eq!(
            set.len(),
            1,
            "isolating one category is optimal-and-canonical"
        );
        // Tie across the three singletons breaks to the smallest mask {0}.
        assert_eq!(set, CatSet::from_iter([0]));
    }

    #[test]
    fn best_split_prefers_lower_impurity_attribute() {
        let schema = Schema::new(
            vec![
                Attribute::numeric("noisy"),
                Attribute::categorical("clean", 2),
            ],
            2,
        )
        .unwrap();
        let records: Vec<Record> = (0..20)
            .map(|i| {
                let label = (i % 2) as u16;
                // attr0 barely correlates; attr1 separates perfectly.
                Record::new(
                    vec![Field::Num((i % 5) as f64), Field::Cat(label as u32)],
                    label,
                )
            })
            .collect();
        let group = AvcGroup::from_records(&schema, &records);
        let e = best_split(&schema, &group, &Gini).unwrap();
        assert_eq!(e.split.attr, 1);
        assert_eq!(e.impurity, 0.0);
    }

    #[test]
    fn best_split_attribute_tie_breaks_to_lower_index() {
        let schema =
            Schema::new(vec![Attribute::numeric("a"), Attribute::numeric("b")], 2).unwrap();
        // Identical columns: both attributes admit identical best splits.
        let records: Vec<Record> = (0..10)
            .map(|i| {
                let v = i as f64;
                Record::new(vec![Field::Num(v), Field::Num(v)], (i / 5) as u16)
            })
            .collect();
        let group = AvcGroup::from_records(&schema, &records);
        let e = best_split(&schema, &group, &Gini).unwrap();
        assert_eq!(e.split.attr, 0);
    }

    #[test]
    fn entropy_and_gini_can_disagree_but_both_work() {
        let (avc, totals) =
            build_num_avc(&[(1.0, 0), (1.0, 0), (2.0, 1), (3.0, 0), (4.0, 1), (4.0, 1)]);
        let g = best_numeric_split(0, &avc, &totals, &Gini).unwrap();
        let h = best_numeric_split(0, &avc, &totals, &Entropy).unwrap();
        // Sanity: both choose a valid interior split.
        for e in [g, h] {
            let Predicate::NumLe(x) = e.split.predicate else {
                panic!()
            };
            assert!((1.0..4.0).contains(&x));
        }
    }

    #[test]
    fn no_split_when_all_attributes_constant() {
        let schema = Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 3)],
            2,
        )
        .unwrap();
        let records: Vec<Record> = (0..4)
            .map(|i| Record::new(vec![Field::Num(7.0), Field::Cat(1)], (i % 2) as u16))
            .collect();
        let group = AvcGroup::from_records(&schema, &records);
        assert!(best_split(&schema, &group, &Gini).is_none());
    }
}
