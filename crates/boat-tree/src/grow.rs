//! Greedy top-down tree induction (the paper's Figure 1 schema).
//!
//! `TDTree` applies a split-selection method `CL` to a partition, partitions
//! the data by the chosen criterion, and recurses. This in-memory builder is
//! the **reference implementation**: BOAT's correctness guarantee is that it
//! produces exactly the tree this builder produces on the full training
//! database — and the integration tests assert precisely that.
//!
//! The builder is also a component of the scalable algorithms themselves:
//! BOAT runs it on the bootstrap samples (sampling phase) and on node
//! families that fit in memory (the in-memory switch of §3.5).

use crate::avc::AvcGroup;
use crate::impurity::Impurity;
use crate::model::Tree;
use crate::split::{best_split, SplitEval};
use boat_data::{Record, Schema};
use std::fmt::Debug;

/// A split-selection method (`CL` in the paper's Figure 1), abstracted so
/// non-impurity methods (e.g. QUEST-style selectors) can plug into the same
/// induction schema.
pub trait SplitSelector: Debug + Send + Sync {
    /// Choose the best split for a node given its AVC-group, or `None` if no
    /// valid split exists.
    fn select(&self, schema: &Schema, group: &AvcGroup) -> Option<SplitEval>;

    /// Choose the best split directly from a node's records. The default
    /// builds an AVC-group and delegates to [`SplitSelector::select`];
    /// implementations may override with something faster, provided the
    /// result is identical.
    fn select_records(&self, schema: &Schema, records: &[&Record]) -> Option<SplitEval> {
        let group = AvcGroup::from_records(schema, records.iter().copied());
        self.select(schema, &group)
    }

    /// Whether [`SplitSelector::select_columnar`] is implemented for this
    /// selector. Callers (e.g. BOAT's sampling phase) fall back to the
    /// row-oriented path when this returns `false`.
    fn supports_columnar(&self) -> bool {
        false
    }

    /// Choose the best split for one node of the columnar weighted engine
    /// (see [`crate::columnar`]): `node` holds the member rows (row-id order
    /// plus each numeric attribute's presorted order), `weights` the
    /// bootstrap multiplicities, and `totals` the node's weighted per-class
    /// counts. Implementations must return exactly what
    /// [`SplitSelector::select_records`] would on the materialized multiset.
    ///
    /// The default panics; only call when
    /// [`SplitSelector::supports_columnar`] is `true`.
    fn select_columnar(
        &self,
        sample: &crate::columnar::ColumnarSample,
        node: &crate::columnar::NodeRows,
        weights: &[u32],
        totals: &[u64],
    ) -> Option<SplitEval> {
        let _ = (sample, node, weights, totals);
        unimplemented!("selector does not support the columnar sample engine")
    }

    /// [`SplitSelector::select_columnar`] plus the node's engine context
    /// (preorder index, depth, optional subsample gate — see
    /// [`crate::subsample`]). The contract is unchanged: the returned split
    /// must be exactly what `select_records` would return on the
    /// materialized multiset, whatever the context says. The default
    /// ignores the context, so selectors without a gated path (e.g. QUEST)
    /// keep their exact behavior.
    fn select_columnar_ctx(
        &self,
        sample: &crate::columnar::ColumnarSample,
        node: &crate::columnar::NodeRows,
        weights: &[u32],
        totals: &[u64],
        ctx: &crate::subsample::ColumnarCtx<'_>,
    ) -> Option<SplitEval> {
        let _ = ctx;
        self.select_columnar(sample, node, weights, totals)
    }
}

/// The impurity-based selector used by CART/C4.5-style methods (paper
/// §2.2): minimize a concave impurity over all candidate splits.
#[derive(Debug, Clone, Copy)]
pub struct ImpuritySelector<I: Impurity> {
    /// The concave impurity function to minimize.
    pub impurity: I,
}

impl<I: Impurity> ImpuritySelector<I> {
    /// Wrap an impurity function.
    pub fn new(impurity: I) -> Self {
        ImpuritySelector { impurity }
    }
}

impl<I: Impurity> SplitSelector for ImpuritySelector<I> {
    fn select(&self, schema: &Schema, group: &AvcGroup) -> Option<SplitEval> {
        best_split(schema, group, &self.impurity)
    }

    fn select_records(&self, schema: &Schema, records: &[&Record]) -> Option<SplitEval> {
        // Sort-based numeric sweeps instead of tree-map AVC-sets: identical
        // output (shared sweep + impurity code over identical counts),
        // several times faster — this is the bootstrap phase's hot path.
        use crate::avc::CatAvc;
        use crate::split::{best_categorical_split, best_numeric_split_from_pairs};
        use boat_data::AttrType;
        let k = schema.n_classes();
        let mut totals = vec![0u64; k];
        for r in records {
            totals[r.label() as usize] += 1;
        }
        let mut best: Option<SplitEval> = None;
        let mut pairs: Vec<(f64, u16)> = Vec::with_capacity(records.len());
        for (a, attr) in schema.attributes().iter().enumerate() {
            let cand = match attr.ty() {
                AttrType::Numeric => {
                    pairs.clear();
                    pairs.extend(records.iter().map(|r| (r.num(a), r.label())));
                    best_numeric_split_from_pairs(a, &mut pairs, &totals, &self.impurity)
                }
                AttrType::Categorical { cardinality } => {
                    let mut avc = CatAvc::new(cardinality, k);
                    for r in records {
                        avc.add(r.cat(a), r.label());
                    }
                    best_categorical_split(a, &avc, &self.impurity)
                }
            };
            if let Some(c) = cand {
                let better = best
                    .as_ref()
                    .is_none_or(|b| crate::split::cmp_splits(&c, b) == std::cmp::Ordering::Less);
                if better {
                    best = Some(c);
                }
            }
        }
        best
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn select_columnar(
        &self,
        sample: &crate::columnar::ColumnarSample,
        node: &crate::columnar::NodeRows,
        weights: &[u32],
        totals: &[u64],
    ) -> Option<SplitEval> {
        self.select_columnar_ctx(
            sample,
            node,
            weights,
            totals,
            &crate::subsample::ColumnarCtx::ungated(),
        )
    }

    fn select_columnar_ctx(
        &self,
        sample: &crate::columnar::ColumnarSample,
        node: &crate::columnar::NodeRows,
        weights: &[u32],
        totals: &[u64],
        ctx: &crate::subsample::ColumnarCtx<'_>,
    ) -> Option<SplitEval> {
        // The columnar twin of `select_records`: same per-attribute loop,
        // same shared sweep/impurity/tie-break code over the same counts.
        // Numeric attributes skip the per-node sort entirely — the node's
        // presorted row list yields the distinct values in `total_cmp`
        // order, grouped into runs by bit pattern exactly like
        // `best_numeric_split_from_pairs`, with weight-multiplied class
        // counts (u64 sums are order-insensitive, so counts are identical).
        //
        // When the context carries a subsample gate and the node is large
        // enough, numeric attributes first try the confidence-gated search
        // ([`crate::subsample::gated_numeric_split`]) — exact boundary
        // scores + Lemma 3.1 corner bounds pruning whole windows — which
        // returns the identical overall winner while evaluating far fewer
        // points, or declines and the full sweep below runs unchanged.
        use crate::avc::CatAvc;
        use crate::split::{best_categorical_split, cmp_splits, sweep_numeric};
        use crate::subsample::{gated_numeric_split, GateOutcome};
        use boat_data::AttrType;
        let schema = sample.schema();
        let k = schema.n_classes();
        let mut best: Option<SplitEval> = None;
        let mut values: Vec<f64> = Vec::new();
        let mut counts: Vec<u64> = Vec::new(); // flat, k per distinct value
        let gate = ctx
            .gate
            .filter(|rt| rt.params.enabled() && node.len() >= rt.params.min_node);
        for (a, attr) in schema.attributes().iter().enumerate() {
            let cand = match attr.ty() {
                AttrType::Numeric => {
                    let col = sample.num_column(a);
                    let list = node.sorted[a]
                        .as_deref()
                        .expect("numeric attribute must carry a presorted node list");
                    let gated = gate.and_then(|rt| {
                        match gated_numeric_split(
                            a,
                            col,
                            list,
                            sample.labels(),
                            weights,
                            totals,
                            &self.impurity,
                            rt,
                            ctx.node_index,
                            ctx.depth,
                            best.as_ref(),
                        ) {
                            GateOutcome::Gated(c) => Some(c),
                            GateOutcome::Fallback => None,
                        }
                    });
                    if let Some(c) = gated {
                        c
                    } else {
                        values.clear();
                        counts.clear();
                        for &row in list {
                            let v = col[row as usize];
                            let new_run = values
                                .last()
                                .is_none_or(|&last| last.to_bits() != v.to_bits());
                            if new_run {
                                values.push(v);
                                counts.extend(std::iter::repeat_n(0, k));
                            }
                            let base = counts.len() - k;
                            counts[base + sample.label(row) as usize] +=
                                weights[row as usize] as u64;
                        }
                        sweep_numeric(
                            a,
                            values
                                .iter()
                                .enumerate()
                                .map(|(i, &v)| (v, &counts[i * k..(i + 1) * k])),
                            None,
                            None,
                            totals,
                            &self.impurity,
                        )
                    }
                }
                AttrType::Categorical { cardinality } => {
                    let col = sample.cat_column(a);
                    let mut avc = CatAvc::new(cardinality, k);
                    for &row in &node.rows {
                        avc.add_weighted(
                            col[row as usize],
                            sample.label(row),
                            weights[row as usize] as u64,
                        );
                    }
                    best_categorical_split(a, &avc, &self.impurity)
                }
            };
            if let Some(c) = cand {
                let better = best
                    .as_ref()
                    .is_none_or(|b| cmp_splits(&c, b) == std::cmp::Ordering::Less);
                if better {
                    best = Some(c);
                }
            }
        }
        best
    }
}

/// Stopping rules shared by every construction algorithm. Identical limits
/// are a precondition for identical trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthLimits {
    /// Do not split nodes with fewer than this many records (default 2).
    pub min_split: u64,
    /// Do not split nodes at this depth (root = 0); `None` = unlimited.
    pub max_depth: Option<u32>,
    /// Make any node with at most this many records a leaf. The paper's
    /// experiments stop growth at families of 1.5 M tuples ("any smart
    /// implementation would switch to main-memory construction"); the bench
    /// harness sets this to the scaled equivalent for *all* algorithms.
    pub stop_family_size: Option<u64>,
}

impl Default for GrowthLimits {
    fn default() -> Self {
        GrowthLimits {
            min_split: 2,
            max_depth: None,
            stop_family_size: None,
        }
    }
}

impl GrowthLimits {
    /// Whether a node with the given class counts and depth must stay a
    /// leaf.
    pub fn must_stop(&self, class_counts: &[u64], depth: u32) -> bool {
        let n: u64 = class_counts.iter().sum();
        if n < self.min_split {
            return true;
        }
        if class_counts.iter().filter(|&&c| c > 0).count() <= 1 {
            return true; // pure (or empty)
        }
        if self.max_depth.is_some_and(|d| depth >= d) {
            return true;
        }
        if self.stop_family_size.is_some_and(|t| n <= t) {
            return true;
        }
        false
    }
}

/// The greedy top-down in-memory builder (Figure 1 of the paper).
#[derive(Debug, Clone)]
pub struct TdTreeBuilder<'a, S: SplitSelector + ?Sized> {
    selector: &'a S,
    limits: GrowthLimits,
}

impl<'a, S: SplitSelector + ?Sized> TdTreeBuilder<'a, S> {
    /// Create a builder from a split-selection method and stopping rules.
    pub fn new(selector: &'a S, limits: GrowthLimits) -> Self {
        TdTreeBuilder { selector, limits }
    }

    /// The stopping rules in use.
    pub fn limits(&self) -> GrowthLimits {
        self.limits
    }

    /// Build the decision tree for `records`.
    pub fn fit(&self, schema: &Schema, records: &[Record]) -> Tree {
        let mut counts = vec![0u64; schema.n_classes()];
        for r in records {
            counts[r.label() as usize] += 1;
        }
        let mut tree = Tree::leaf(counts);
        let root = tree.root();
        let indices: Vec<u32> = (0..records.len() as u32).collect();
        self.grow(&mut tree, root, schema, records, indices, 0);
        tree
    }

    fn grow(
        &self,
        tree: &mut Tree,
        node: crate::model::NodeId,
        schema: &Schema,
        records: &[Record],
        indices: Vec<u32>,
        depth: u32,
    ) {
        if self.limits.must_stop(&tree.node(node).class_counts, depth) {
            return;
        }
        let refs: Vec<&Record> = indices.iter().map(|&i| &records[i as usize]).collect();
        let Some(eval) = self.selector.select_records(schema, &refs) else {
            return;
        };
        drop(refs);
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for &i in &indices {
            if eval.split.goes_left(&records[i as usize]) {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        debug_assert_eq!(left_idx.len() as u64, eval.left_counts.iter().sum::<u64>());
        debug_assert_eq!(
            right_idx.len() as u64,
            eval.right_counts.iter().sum::<u64>()
        );
        drop(indices);
        let (left, right) = tree.split_node(node, eval.split, eval.left_counts, eval.right_counts);
        self.grow(tree, left, schema, records, left_idx, depth + 1);
        self.grow(tree, right, schema, records, right_idx, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catset::CatSet;
    use crate::impurity::Gini;
    use crate::model::Predicate;
    use boat_data::{Attribute, Field};

    fn selector() -> ImpuritySelector<Gini> {
        ImpuritySelector::new(Gini)
    }

    fn num_schema() -> Schema {
        Schema::new(vec![Attribute::numeric("x")], 2).unwrap()
    }

    fn rec1(x: f64, label: u16) -> Record {
        Record::new(vec![Field::Num(x)], label)
    }

    #[test]
    fn single_threshold_concept_yields_one_split() {
        let schema = num_schema();
        let records: Vec<Record> = (0..100)
            .map(|i| rec1(i as f64, u16::from(i >= 40)))
            .collect();
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree.n_nodes(), 3);
        let split = tree.node(tree.root()).split().unwrap();
        assert_eq!(split.predicate, Predicate::NumLe(39.0));
        assert_eq!(tree.predict(&rec1(10.0, 0)), 0);
        assert_eq!(tree.predict(&rec1(70.0, 0)), 1);
    }

    #[test]
    fn interval_concept_yields_two_levels() {
        // class 0 iff x in [25, 75): needs two splits.
        let schema = num_schema();
        let records: Vec<Record> = (0..100)
            .map(|i| rec1(i as f64, u16::from(!(25..75).contains(&i))))
            .collect();
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree.n_leaves(), 3);
        assert_eq!(tree.max_depth(), 2);
        for (x, want) in [(10.0, 1), (50.0, 0), (90.0, 1)] {
            assert_eq!(tree.predict(&rec1(x, 0)), want, "x={x}");
        }
    }

    #[test]
    fn pure_data_stays_a_leaf() {
        let schema = num_schema();
        let records: Vec<Record> = (0..10).map(|i| rec1(i as f64, 1)).collect();
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.node(tree.root()).majority_label(), 1);
    }

    #[test]
    fn max_depth_caps_growth() {
        let schema = num_schema();
        let records: Vec<Record> = (0..64).map(|i| rec1(i as f64, (i % 2) as u16)).collect();
        let sel = selector();
        let limits = GrowthLimits {
            max_depth: Some(2),
            ..GrowthLimits::default()
        };
        let tree = TdTreeBuilder::new(&sel, limits).fit(&schema, &records);
        assert!(tree.max_depth() <= 2);
    }

    #[test]
    fn stop_family_size_freezes_small_nodes() {
        let schema = num_schema();
        let records: Vec<Record> = (0..100)
            .map(|i| rec1(i as f64, u16::from(i >= 40)))
            .collect();
        let sel = selector();
        let limits = GrowthLimits {
            stop_family_size: Some(200),
            ..GrowthLimits::default()
        };
        let tree = TdTreeBuilder::new(&sel, limits).fit(&schema, &records);
        assert_eq!(
            tree.n_nodes(),
            1,
            "whole family under the threshold stays a leaf"
        );
    }

    #[test]
    fn min_split_respected() {
        let schema = num_schema();
        // Two records of different classes: splittable with min_split=2,
        // a leaf with min_split=3.
        let records = vec![rec1(1.0, 0), rec1(2.0, 1)];
        let sel = selector();
        let t2 = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(t2.n_nodes(), 3);
        let limits = GrowthLimits {
            min_split: 3,
            ..GrowthLimits::default()
        };
        let t3 = TdTreeBuilder::new(&sel, limits).fit(&schema, &records);
        assert_eq!(t3.n_nodes(), 1);
    }

    #[test]
    fn mixed_schema_split_on_categorical() {
        let schema = Schema::new(
            vec![Attribute::numeric("noise"), Attribute::categorical("c", 3)],
            2,
        )
        .unwrap();
        let records: Vec<Record> = (0..30)
            .map(|i| {
                let c = (i % 3) as u32;
                let label = u16::from(c == 1);
                Record::new(vec![Field::Num((i % 7) as f64), Field::Cat(c)], label)
            })
            .collect();
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        let split = tree.node(tree.root()).split().unwrap();
        assert_eq!(split.attr, 1);
        let Predicate::CatIn(set) = split.predicate else {
            panic!("categorical split")
        };
        // {1} vs {0,2}: canonical is {1} (mask 0b010 < 0b101).
        assert_eq!(set, CatSet::from_iter([1]));
        assert_eq!(tree.n_nodes(), 3);
    }

    #[test]
    fn xor_structure_needs_zero_gain_first_split() {
        // Classic 2-attribute XOR: no single split reduces impurity, but the
        // greedy schema still splits (both children then separate cleanly).
        let schema =
            Schema::new(vec![Attribute::numeric("a"), Attribute::numeric("b")], 2).unwrap();
        let mut records = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    records.push(Record::new(
                        vec![Field::Num(a as f64), Field::Num(b as f64)],
                        (a ^ b) as u16,
                    ));
                }
            }
        }
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree.n_leaves(), 4);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let want = ((a as i32) ^ (b as i32)) as u16;
            let r = Record::new(vec![Field::Num(a), Field::Num(b)], 0);
            assert_eq!(tree.predict(&r), want);
        }
    }

    #[test]
    fn determinism_across_record_order() {
        // The tree must not depend on input order (AVC counts are
        // order-insensitive and the tie order is total).
        let schema = num_schema();
        let mut records: Vec<Record> = (0..60)
            .map(|i| rec1((i % 13) as f64, u16::from(i % 13 >= 6)))
            .collect();
        let sel = selector();
        let t1 = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        records.reverse();
        let t2 = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_input_is_a_single_leaf() {
        let schema = num_schema();
        let sel = selector();
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &[]);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.node(tree.root()).n_records(), 0);
    }
}
