//! Small category sets for splitting subsets.
//!
//! A categorical split predicate is `X ∈ Y` for a subset `Y` of the
//! attribute's categories (paper §2.1). Schemas cap categorical cardinality
//! at 64, so a subset is a 64-bit mask.

use std::fmt;

/// A set of category codes (each `< 64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CatSet(u64);

impl CatSet {
    /// The empty set.
    pub const EMPTY: CatSet = CatSet(0);

    /// Build from a raw bitmask.
    pub fn from_mask(mask: u64) -> Self {
        CatSet(mask)
    }

    /// Build from an iterator of category codes. (Deliberately named like
    /// `FromIterator::from_iter`; a `FromIterator` impl would conflict with
    /// the inherent constructor's doc-visibility, so the inherent form is
    /// kept.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(codes: impl IntoIterator<Item = u32>) -> Self {
        let mut s = CatSet::EMPTY;
        for c in codes {
            s.insert(c);
        }
        s
    }

    /// The raw bitmask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Whether `code` is a member.
    #[inline]
    pub fn contains(self, code: u32) -> bool {
        debug_assert!(code < 64);
        self.0 & (1u64 << code) != 0
    }

    /// Add `code`.
    #[inline]
    pub fn insert(&mut self, code: u32) {
        debug_assert!(code < 64);
        self.0 |= 1u64 << code;
    }

    /// Remove `code`.
    #[inline]
    pub fn remove(&mut self, code: u32) {
        debug_assert!(code < 64);
        self.0 &= !(1u64 << code);
    }

    /// Number of members.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        let mut rest = self.0;
        std::iter::from_fn(move || {
            if rest == 0 {
                None
            } else {
                let c = rest.trailing_zeros();
                rest &= rest - 1;
                Some(c)
            }
        })
    }

    /// The complement within a universe set.
    pub fn complement_within(self, universe: CatSet) -> CatSet {
        CatSet(universe.0 & !self.0)
    }

    /// Canonical representative of the split `{Y, universe∖Y}`: a subset and
    /// its complement induce the same partition (with children swapped), so
    /// every algorithm in this workspace normalizes to whichever mask is
    /// numerically smaller. This makes categorical splits comparable across
    /// algorithms.
    pub fn canonicalize(self, universe: CatSet) -> CatSet {
        let comp = self.complement_within(universe);
        if comp.0 < self.0 {
            comp
        } else {
            self
        }
    }
}

impl fmt::Display for CatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CatSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(63);
        assert!(s.contains(3));
        assert!(s.contains(63));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_ascending() {
        let s = CatSet::from_iter([5, 1, 9]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn complement_within_universe() {
        let universe = CatSet::from_iter([0, 1, 2, 3]);
        let s = CatSet::from_iter([1, 3]);
        assert_eq!(s.complement_within(universe), CatSet::from_iter([0, 2]));
    }

    #[test]
    fn canonicalize_picks_smaller_mask() {
        let universe = CatSet::from_iter([0, 1, 2]);
        let big = CatSet::from_iter([1, 2]); // mask 0b110
        let small = CatSet::from_iter([0]); // mask 0b001
        assert_eq!(big.canonicalize(universe), small);
        assert_eq!(small.canonicalize(universe), small);
    }

    #[test]
    fn canonicalize_is_involution_invariant() {
        let universe = CatSet::from_iter([0, 2, 4, 6]);
        for mask in 0..16u64 {
            // Spread the 4-bit mask over the universe members.
            let s = CatSet::from_iter(
                universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| c),
            );
            let canon = s.canonicalize(universe);
            assert_eq!(canon.canonicalize(universe), canon);
            assert_eq!(s.complement_within(universe).canonicalize(universe), canon);
        }
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(CatSet::from_iter([2, 0]).to_string(), "{0,2}");
        assert_eq!(CatSet::EMPTY.to_string(), "{}");
    }
}
