//! Post-pruning (the tree-size selection phase the paper scopes out).
//!
//! The paper (§2.1) splits tree construction into a growth phase — its
//! subject — and a pruning phase it treats as orthogonal, citing MDL-based
//! pruning [MAR96, RS98] as the standard for large datasets. A usable
//! library needs both, so this module supplies the two classics:
//!
//! * [`prune_reduced_error`] — bottom-up replacement of a subtree by a leaf
//!   whenever that does not increase error on a *holdout* set (Quinlan's
//!   reduced-error pruning). Simple, needs validation data.
//! * [`prune_mdl`] — bottom-up cost comparison under a minimum description
//!   length model in the spirit of SLIQ/PUBLIC: a subtree is kept only if
//!   encoding its structure plus its leaves' data beats encoding the node
//!   as a single leaf. Needs no extra data.
//!
//! Both return a new tree and never change any kept split (they only
//! collapse subtrees), so a pruned BOAT tree is a pruned *exact* tree.

use crate::model::{NodeId, Tree};
use boat_data::Record;

/// Reduced-error pruning against a holdout set: collapse any subtree whose
/// replacement by a majority leaf does not increase holdout errors.
pub fn prune_reduced_error(tree: &Tree, holdout: &[Record]) -> Tree {
    let mut pruned = tree.clone();
    // Route holdout records to nodes once per pass; prune bottom-up until
    // fixpoint (a collapsed child can enable collapsing its parent).
    loop {
        let mut errors_at: std::collections::HashMap<NodeId, (u64, u64)> =
            std::collections::HashMap::new(); // (subtree errors, leaf errors)
        collect_errors(&pruned, pruned.root(), holdout, &mut errors_at);
        let mut collapsed = false;
        // Post-order: children before parents.
        let mut order = pruned.preorder_ids();
        order.reverse();
        for id in order {
            if pruned.node(id).is_leaf() {
                continue;
            }
            let &(sub_err, leaf_err) = errors_at.get(&id).expect("visited");
            if leaf_err <= sub_err {
                let counts = pruned.node(id).class_counts.clone();
                pruned.replace_subtree(id, &Tree::leaf(counts));
                collapsed = true;
                break; // errors_at is stale now; recompute
            }
        }
        if !collapsed {
            break;
        }
    }
    pruned.compact();
    pruned
}

/// For every node: errors the *subtree* makes on the records routed to it,
/// and errors a majority *leaf* would make there.
fn collect_errors(
    tree: &Tree,
    id: NodeId,
    records: &[Record],
    out: &mut std::collections::HashMap<NodeId, (u64, u64)>,
) -> u64 {
    let node = tree.node(id);
    let majority = node.majority_label();
    let leaf_err = records.iter().filter(|r| r.label() != majority).count() as u64;
    let sub_err = match node.children() {
        None => leaf_err,
        Some((l, r)) => {
            let split = node.split().expect("internal");
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for rec in records {
                if split.goes_left(rec) {
                    left.push(rec.clone());
                } else {
                    right.push(rec.clone());
                }
            }
            collect_errors(tree, l, &left, out) + collect_errors(tree, r, &right, out)
        }
    };
    out.insert(id, (sub_err, leaf_err));
    sub_err
}

/// MDL pruning parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdlConfig {
    /// Bits charged for describing one split (attribute choice + operand).
    /// SLIQ-style default: `log2(m)` for the attribute plus a constant for
    /// the operand, folded into one knob.
    pub split_cost_bits: f64,
}

impl Default for MdlConfig {
    fn default() -> Self {
        MdlConfig {
            split_cost_bits: 8.0,
        }
    }
}

/// MDL pruning: collapse a subtree when a leaf's description length (data
/// bits) is no worse than the subtree's (structure bits + leaves' data
/// bits). Leaf data cost uses the classic stochastic-complexity
/// approximation `n·H(p) + ((k−1)/2)·log2(n)`.
pub fn prune_mdl(tree: &Tree, config: MdlConfig) -> Tree {
    let mut pruned = tree.clone();
    loop {
        let mut collapsed = false;
        let mut order = pruned.preorder_ids();
        order.reverse();
        for id in order {
            if pruned.node(id).is_leaf() {
                continue;
            }
            let sub = subtree_cost(&pruned, id, &config);
            let leaf = leaf_cost(&pruned.node(id).class_counts);
            if leaf <= sub {
                let counts = pruned.node(id).class_counts.clone();
                pruned.replace_subtree(id, &Tree::leaf(counts));
                collapsed = true;
                break;
            }
        }
        if !collapsed {
            break;
        }
    }
    pruned.compact();
    pruned
}

fn leaf_cost(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 1.0;
    }
    let n_f = n as f64;
    let mut entropy = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / n_f;
            entropy -= p * p.log2();
        }
    }
    let k = counts.len() as f64;
    1.0 + n_f * entropy + 0.5 * (k - 1.0) * n_f.log2()
}

fn subtree_cost(tree: &Tree, id: NodeId, config: &MdlConfig) -> f64 {
    let node = tree.node(id);
    match node.children() {
        None => leaf_cost(&node.class_counts),
        Some((l, r)) => {
            1.0 + config.split_cost_bits
                + subtree_cost(tree, l, config)
                + subtree_cost(tree, r, config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{GrowthLimits, TdTreeBuilder};
    use crate::{Gini, ImpuritySelector};
    use boat_data::{Attribute, Field, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn schema() -> Schema {
        Schema::new(vec![Attribute::numeric("x"), Attribute::numeric("y")], 2).unwrap()
    }

    /// Threshold concept on x with pure label noise; y is irrelevant.
    fn noisy_records(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x: f64 = rng.random_range(0..1000) as f64;
                let y: f64 = rng.random_range(0..50) as f64;
                let mut label = u16::from(x >= 500.0);
                if rng.random::<f64>() < 0.15 {
                    label = 1 - label;
                }
                Record::new(vec![Field::Num(x), Field::Num(y)], label)
            })
            .collect()
    }

    fn accuracy(tree: &Tree, data: &[Record]) -> f64 {
        data.iter().filter(|r| tree.predict(r) == r.label()).count() as f64 / data.len() as f64
    }

    #[test]
    fn reduced_error_pruning_shrinks_and_generalizes() {
        let s = schema();
        let train = noisy_records(3_000, 1);
        let holdout = noisy_records(1_000, 2);
        let fresh = noisy_records(2_000, 3);
        let sel = ImpuritySelector::new(Gini);
        let full = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&s, &train);
        let pruned = prune_reduced_error(&full, &holdout);

        assert!(
            pruned.n_nodes() < full.n_nodes(),
            "noise-fitted tree must shrink"
        );
        assert!(
            accuracy(&pruned, &fresh) >= accuracy(&full, &fresh) - 1e-9,
            "pruning must not hurt fresh-data accuracy here"
        );
        // The real concept survives: one split near 500 remains.
        assert!(pruned.n_nodes() >= 3);
    }

    #[test]
    fn mdl_pruning_shrinks_noise_fitted_trees() {
        let s = schema();
        let train = noisy_records(3_000, 4);
        let sel = ImpuritySelector::new(Gini);
        let full = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&s, &train);
        let pruned = prune_mdl(&full, MdlConfig::default());
        assert!(pruned.n_nodes() < full.n_nodes());
        assert!(pruned.n_nodes() >= 3, "the true split must survive");
        let fresh = noisy_records(2_000, 5);
        assert!(accuracy(&pruned, &fresh) >= accuracy(&full, &fresh) - 0.01);
    }

    #[test]
    fn pruning_a_stump_is_identity() {
        let s = schema();
        let train: Vec<Record> = (0..100)
            .map(|i| {
                Record::new(
                    vec![Field::Num((i % 10) as f64), Field::Num(0.0)],
                    u16::from(i % 10 >= 5),
                )
            })
            .collect();
        let sel = ImpuritySelector::new(Gini);
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&s, &train);
        let holdout = train.clone();
        assert_eq!(prune_reduced_error(&tree, &holdout), tree);
    }

    #[test]
    fn reduced_error_with_empty_holdout_collapses_everything() {
        // Zero holdout records: a leaf is never worse, so the tree folds to
        // the root.
        let s = schema();
        let train = noisy_records(500, 6);
        let sel = ImpuritySelector::new(Gini);
        let tree = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&s, &train);
        let pruned = prune_reduced_error(&tree, &[]);
        assert_eq!(pruned.n_nodes(), 1);
    }
}
