//! The binary decision-tree model (paper §2.1).
//!
//! Nodes live in an arena indexed by [`NodeId`]. Internal nodes carry a
//! [`Split`] (splitting attribute + splitting predicate); leaves predict the
//! majority class of their family. Every node stores the exact per-class
//! counts of its family, which all algorithms in this workspace compute —
//! they are part of the identical-tree guarantee and drive leaf labelling.

use crate::catset::CatSet;
use boat_data::{Record, Schema};
use std::fmt::Write as _;

/// Index of a node in a [`Tree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A splitting predicate `q_n` (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Numeric split `X ≤ x`; the operand is the *split point*.
    NumLe(f64),
    /// Categorical split `X ∈ Y`; the operand is the *splitting subset*,
    /// canonicalized per [`CatSet::canonicalize`].
    CatIn(CatSet),
}

impl Predicate {
    /// Evaluate the predicate on `record`'s attribute `attr`.
    ///
    /// # Prediction-time contract (pinned)
    ///
    /// Training data is validated ([`Record::validate`]), but *prediction*
    /// accepts arbitrary field values, so the routing rule for values the
    /// tree never saw at training time is part of the model's contract.
    /// Every inference path in this workspace — [`Tree::predict`], the
    /// serving compiler in `boat-serve`, and any future backend — must
    /// replicate these rules bit-for-bit:
    ///
    /// * **Numeric `X ≤ x`** is evaluated with IEEE-754 `<=` on the stored
    ///   split point. A **NaN** value therefore fails every numeric
    ///   predicate and **routes right** at every numeric split (`NaN <= x`
    ///   is false for all `x`). `-∞` always routes left; `+∞` always routes
    ///   right (split points are finite: they are midpoints/values of
    ///   validated, finite training data).
    /// * **Categorical `X ∈ Y`** is a membership test in the splitting
    ///   subset's 64-bit mask. A category code **not in the subset routes
    ///   right — including codes that never occurred at training time**
    ///   (such codes are never members: splitting subsets are built from
    ///   observed categories only, and canonicalization complements within
    ///   the *observed* universe, so unseen codes cannot enter the mask).
    ///   Codes must be `< 64` (the schema bound); larger codes are outside
    ///   the model's domain.
    #[inline]
    pub fn matches(&self, record: &Record, attr: usize) -> bool {
        match self {
            Predicate::NumLe(x) => record.num(attr) <= *x,
            Predicate::CatIn(set) => set.contains(record.cat(attr)),
        }
    }

    /// A deterministic rank used to break exact impurity ties between
    /// predicates on the same attribute.
    pub(crate) fn tie_rank(&self) -> u64 {
        match self {
            // total_cmp-compatible ordering for finite values.
            Predicate::NumLe(x) => {
                let bits = x.to_bits();
                if *x >= 0.0 {
                    bits ^ (1 << 63)
                } else {
                    !bits
                }
            }
            Predicate::CatIn(set) => set.mask(),
        }
    }
}

/// A splitting criterion: attribute index plus predicate (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Index of the splitting attribute in the schema.
    pub attr: usize,
    /// The splitting predicate. Records matching it go to the left child.
    pub predicate: Predicate,
}

impl Split {
    /// Evaluate on a record: `true` routes left.
    #[inline]
    pub fn goes_left(&self, record: &Record) -> bool {
        self.predicate.matches(record, self.attr)
    }
}

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A leaf; predicts the majority class of its family.
    Leaf,
    /// An internal node with a split and two children.
    Internal {
        /// The splitting criterion.
        split: Split,
        /// Child for records satisfying the predicate.
        left: NodeId,
        /// Child for records not satisfying it.
        right: NodeId,
    },
}

/// One node of a decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Leaf or internal payload.
    pub kind: NodeKind,
    /// Exact per-class counts of the node's family `F_n`.
    pub class_counts: Vec<u64>,
    /// Depth (root = 0).
    pub depth: u32,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
}

impl Node {
    /// Family size `|F_n|`.
    pub fn n_records(&self) -> u64 {
        self.class_counts.iter().sum()
    }

    /// Majority class (ties break to the smaller class index).
    pub fn majority_label(&self) -> u16 {
        let mut best = 0usize;
        for (i, &c) in self.class_counts.iter().enumerate() {
            if c > self.class_counts[best] {
                best = i;
            }
        }
        best as u16
    }

    /// Whether all records at this node share one class.
    pub fn is_pure(&self) -> bool {
        self.class_counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// The split, if internal.
    pub fn split(&self) -> Option<&Split> {
        match &self.kind {
            NodeKind::Internal { split, .. } => Some(split),
            NodeKind::Leaf => None,
        }
    }

    /// The children, if internal.
    pub fn children(&self) -> Option<(NodeId, NodeId)> {
        match self.kind {
            NodeKind::Internal { left, right, .. } => Some((left, right)),
            NodeKind::Leaf => None,
        }
    }

    /// Whether the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf)
    }
}

/// A binary decision tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// A single-leaf tree with the given family class counts.
    pub fn leaf(class_counts: Vec<u64>) -> Tree {
        Tree {
            nodes: vec![Node {
                kind: NodeKind::Leaf,
                class_counts,
                depth: 0,
                parent: None,
            }],
            root: NodeId(0),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Turn leaf `id` into an internal node with the given split and
    /// children family counts; returns `(left, right)` child ids.
    ///
    /// Panics if `id` is already internal.
    pub fn split_node(
        &mut self,
        id: NodeId,
        split: Split,
        left_counts: Vec<u64>,
        right_counts: Vec<u64>,
    ) -> (NodeId, NodeId) {
        assert!(self.node(id).is_leaf(), "split_node on an internal node");
        let depth = self.node(id).depth + 1;
        let left = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf,
            class_counts: left_counts,
            depth,
            parent: Some(id),
        });
        let right = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf,
            class_counts: right_counts,
            depth,
            parent: Some(id),
        });
        self.nodes[id.index()].kind = NodeKind::Internal { split, left, right };
        (left, right)
    }

    /// Replace the subtree rooted at `at` with a copy of `sub` (whose root
    /// family must describe the same records). The old descendants become
    /// unreachable; call [`Tree::compact`] to drop them.
    pub fn replace_subtree(&mut self, at: NodeId, sub: &Tree) {
        let base_depth = self.node(at).depth;
        let parent = self.node(at).parent;
        // Copy sub's reachable nodes, remapping ids.
        let ids = sub.preorder_ids();
        let mut remap = vec![NodeId(u32::MAX); sub.nodes.len()];
        for (i, &sid) in ids.iter().enumerate() {
            remap[sid.index()] = if i == 0 {
                at
            } else {
                NodeId((self.nodes.len() + i - 1) as u32)
            };
        }
        for (i, &sid) in ids.iter().enumerate() {
            let src = sub.node(sid);
            let kind = match src.kind {
                NodeKind::Leaf => NodeKind::Leaf,
                NodeKind::Internal { split, left, right } => NodeKind::Internal {
                    split,
                    left: remap[left.index()],
                    right: remap[right.index()],
                },
            };
            let node = Node {
                kind,
                class_counts: src.class_counts.clone(),
                depth: base_depth + src.depth,
                parent: if i == 0 {
                    parent
                } else {
                    Some(remap[sub.node(sid).parent.expect("non-root has parent").index()])
                },
            };
            if i == 0 {
                self.nodes[at.index()] = node;
            } else {
                self.nodes.push(node);
            }
        }
    }

    /// Drop unreachable arena entries (left behind by
    /// [`Tree::replace_subtree`]) and renumber nodes in preorder.
    pub fn compact(&mut self) {
        let ids = self.preorder_ids();
        let mut remap = vec![NodeId(u32::MAX); self.nodes.len()];
        for (i, &id) in ids.iter().enumerate() {
            remap[id.index()] = NodeId(i as u32);
        }
        let mut fresh = Vec::with_capacity(ids.len());
        for &id in &ids {
            let src = &self.nodes[id.index()];
            fresh.push(Node {
                kind: match src.kind {
                    NodeKind::Leaf => NodeKind::Leaf,
                    NodeKind::Internal { split, left, right } => NodeKind::Internal {
                        split,
                        left: remap[left.index()],
                        right: remap[right.index()],
                    },
                },
                class_counts: src.class_counts.clone(),
                depth: src.depth,
                parent: src.parent.map(|p| remap[p.index()]),
            });
        }
        self.nodes = fresh;
        self.root = NodeId(0);
    }

    /// Reachable node ids in preorder (root, left subtree, right subtree).
    pub fn preorder_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            if let NodeKind::Internal { left, right, .. } = self.node(id).kind {
                stack.push(right);
                stack.push(left);
            }
        }
        out
    }

    /// Number of reachable nodes.
    pub fn n_nodes(&self) -> usize {
        self.preorder_ids().len()
    }

    /// Number of reachable leaves.
    pub fn n_leaves(&self) -> usize {
        self.preorder_ids()
            .iter()
            .filter(|&&id| self.node(id).is_leaf())
            .count()
    }

    /// Maximum depth over reachable nodes (root-only tree = 0).
    pub fn max_depth(&self) -> u32 {
        self.preorder_ids()
            .iter()
            .map(|&id| self.node(id).depth)
            .max()
            .unwrap_or(0)
    }

    /// The child of internal node `id` that `record` routes to.
    #[inline]
    pub fn route(&self, id: NodeId, record: &Record) -> NodeId {
        match &self.node(id).kind {
            NodeKind::Internal { split, left, right } => {
                if split.goes_left(record) {
                    *left
                } else {
                    *right
                }
            }
            NodeKind::Leaf => panic!("route called on a leaf"),
        }
    }

    /// The leaf `record` falls into.
    pub fn leaf_for(&self, record: &Record) -> NodeId {
        let mut id = self.root;
        while !self.node(id).is_leaf() {
            id = self.route(id, record);
        }
        id
    }

    /// Predict the class label of `record`: route to a leaf and return its
    /// majority label (ties break to the smaller class index).
    ///
    /// Unlike training, prediction performs **no validation**: NaN numeric
    /// values route right at every numeric split, and category codes absent
    /// from a splitting subset (including codes never seen at training
    /// time) route right at every categorical split — see
    /// [`Predicate::matches`] for the pinned contract that every compiled
    /// or alternative inference path must replicate exactly.
    pub fn predict(&self, record: &Record) -> u16 {
        self.node(self.leaf_for(record)).majority_label()
    }

    /// Render an indented textual view of the tree.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_node(schema, self.root, 0, &mut out);
        out
    }

    fn render_node(&self, schema: &Schema, id: NodeId, indent: usize, out: &mut String) {
        let node = self.node(id);
        let pad = "  ".repeat(indent);
        match &node.kind {
            NodeKind::Leaf => {
                let _ = writeln!(
                    out,
                    "{pad}leaf: class {} {:?} (n={})",
                    node.majority_label(),
                    node.class_counts,
                    node.n_records()
                );
            }
            NodeKind::Internal { split, left, right } => {
                let name = schema.attribute(split.attr).name();
                let pred = match &split.predicate {
                    Predicate::NumLe(x) => format!("{name} <= {x}"),
                    Predicate::CatIn(set) => format!("{name} in {set}"),
                };
                let _ = writeln!(out, "{pad}{pred} (n={})", node.n_records());
                self.render_node(schema, *left, indent + 1, out);
                self.render_node(schema, *right, indent + 1, out);
            }
        }
    }
}

/// Logical equality: identical structure, splits and class counts, ignoring
/// arena layout. Numeric split points compare *exactly* (bitwise) — the
/// algorithms are required to agree to the bit.
impl PartialEq for Tree {
    fn eq(&self, other: &Self) -> bool {
        fn eq_rec(a: &Tree, ai: NodeId, b: &Tree, bi: NodeId) -> bool {
            let (na, nb) = (a.node(ai), b.node(bi));
            if na.class_counts != nb.class_counts {
                return false;
            }
            match (&na.kind, &nb.kind) {
                (NodeKind::Leaf, NodeKind::Leaf) => true,
                (
                    NodeKind::Internal {
                        split: sa,
                        left: la,
                        right: ra,
                    },
                    NodeKind::Internal {
                        split: sb,
                        left: lb,
                        right: rb,
                    },
                ) => {
                    let split_eq = sa.attr == sb.attr
                        && match (&sa.predicate, &sb.predicate) {
                            (Predicate::NumLe(x), Predicate::NumLe(y)) => {
                                x.to_bits() == y.to_bits()
                            }
                            (Predicate::CatIn(x), Predicate::CatIn(y)) => x == y,
                            _ => false,
                        };
                    split_eq && eq_rec(a, *la, b, *lb) && eq_rec(a, *ra, b, *rb)
                }
                _ => false,
            }
        }
        eq_rec(self, self.root, other, other.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::{Attribute, Field};

    fn schema() -> Schema {
        Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 4)],
            2,
        )
        .unwrap()
    }

    fn rec(x: f64, c: u32) -> Record {
        Record::new(vec![Field::Num(x), Field::Cat(c)], 0)
    }

    /// x <= 5 ? (c in {1,3} ? leaf0 : leaf1) : leaf1
    fn sample_tree() -> Tree {
        let mut t = Tree::leaf(vec![6, 4]);
        let (l, _r) = t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![4, 2],
            vec![2, 2],
        );
        t.split_node(
            l,
            Split {
                attr: 1,
                predicate: Predicate::CatIn(CatSet::from_iter([1, 3])),
            },
            vec![4, 0],
            vec![0, 2],
        );
        t
    }

    #[test]
    fn split_node_builds_structure() {
        let t = sample_tree();
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.max_depth(), 2);
        let root = t.node(t.root());
        assert!(!root.is_leaf());
        assert_eq!(root.n_records(), 10);
        let (l, r) = root.children().unwrap();
        assert_eq!(t.node(l).depth, 1);
        assert_eq!(t.node(l).parent, Some(t.root()));
        assert!(t.node(r).is_leaf());
    }

    #[test]
    fn routing_and_prediction() {
        let t = sample_tree();
        // x=3 (left), c=1 (in subset) -> pure class 0 leaf
        assert_eq!(t.predict(&rec(3.0, 1)), 0);
        // x=3, c=0 (not in subset) -> pure class 1 leaf
        assert_eq!(t.predict(&rec(3.0, 0)), 1);
        // x=9 -> right leaf [2,2] -> tie breaks to class 0
        assert_eq!(t.predict(&rec(9.0, 1)), 0);
        // boundary: x = 5.0 goes left (X <= x).
        let leaf = t.leaf_for(&rec(5.0, 0));
        assert_eq!(t.node(leaf).class_counts, vec![0, 2]);
    }

    #[test]
    fn majority_label_tie_breaks_low() {
        let n = Node {
            kind: NodeKind::Leaf,
            class_counts: vec![3, 3, 1],
            depth: 0,
            parent: None,
        };
        assert_eq!(n.majority_label(), 0);
    }

    #[test]
    fn purity() {
        let mk = |counts: Vec<u64>| Node {
            kind: NodeKind::Leaf,
            class_counts: counts,
            depth: 0,
            parent: None,
        };
        assert!(mk(vec![5, 0]).is_pure());
        assert!(mk(vec![0, 0]).is_pure());
        assert!(!mk(vec![5, 1]).is_pure());
    }

    #[test]
    fn logical_equality_ignores_arena_layout() {
        let a = sample_tree();
        let mut b = sample_tree();
        // Force different arena layout in b via a replace + compact cycle.
        let sub = sample_tree();
        b.replace_subtree(b.root(), &sub);
        assert_eq!(a, b);
        b.compact();
        assert_eq!(a, b);
    }

    #[test]
    fn inequality_on_different_split_point() {
        let a = sample_tree();
        let mut b = Tree::leaf(vec![6, 4]);
        b.split_node(
            b.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(6.0),
            },
            vec![4, 2],
            vec![2, 2],
        );
        assert_ne!(a, b);
    }

    #[test]
    fn inequality_on_counts() {
        let a = Tree::leaf(vec![1, 2]);
        let b = Tree::leaf(vec![2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn replace_subtree_grafts_and_fixes_depth() {
        let mut t = sample_tree();
        let (l, _) = t.node(t.root()).children().unwrap();
        // Replace the left internal node with a single leaf.
        let sub = Tree::leaf(vec![4, 2]);
        t.replace_subtree(l, &sub);
        assert_eq!(t.n_leaves(), 2);
        assert!(t.node(l).is_leaf());
        assert_eq!(t.node(l).depth, 1);
        // Graft a deeper subtree back.
        let mut sub2 = Tree::leaf(vec![4, 2]);
        sub2.split_node(
            sub2.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(1.0),
            },
            vec![1, 1],
            vec![3, 1],
        );
        t.replace_subtree(l, &sub2);
        assert_eq!(t.max_depth(), 2);
        let (ll, _) = t.node(l).children().unwrap();
        assert_eq!(t.node(ll).depth, 2);
        assert_eq!(t.node(ll).parent, Some(l));
    }

    #[test]
    fn compact_drops_garbage() {
        let mut t = sample_tree();
        let (l, _) = t.node(t.root()).children().unwrap();
        t.replace_subtree(l, &Tree::leaf(vec![4, 2]));
        assert!(t.nodes.len() > t.n_nodes(), "garbage before compact");
        let before = t.clone();
        t.compact();
        assert_eq!(t.nodes.len(), t.n_nodes());
        assert_eq!(t, before);
    }

    #[test]
    fn render_names_attributes() {
        let s = schema();
        let text = sample_tree().render(&s);
        assert!(text.contains("x <= 5"));
        assert!(text.contains("c in {1,3}"));
        assert!(text.contains("leaf: class"));
    }

    #[test]
    fn nan_routes_right_at_every_numeric_split() {
        // Pinned prediction-time contract: `NaN <= x` is false for every x,
        // so a NaN numeric attribute must fall through the *right* child of
        // every numeric split it meets.
        let t = sample_tree();
        // Root split is `x <= 5`; NaN must go right regardless of c.
        for c in [0u32, 1, 3] {
            let leaf = t.leaf_for(&rec(f64::NAN, c));
            assert_eq!(
                t.node(leaf).class_counts,
                vec![2, 2],
                "NaN must route right at the root numeric split"
            );
            // Right leaf [2,2] tie-breaks to class 0.
            assert_eq!(t.predict(&rec(f64::NAN, c)), 0);
        }
        // Infinities: -inf <= x always holds (left); +inf never (right).
        assert_eq!(
            t.node(t.leaf_for(&rec(f64::NEG_INFINITY, 0))).class_counts,
            vec![0, 2],
            "-inf routes left at the root, then c=0 is outside {{1,3}}"
        );
        assert_eq!(
            t.node(t.leaf_for(&rec(f64::INFINITY, 1))).class_counts,
            vec![2, 2]
        );
    }

    #[test]
    fn unseen_category_routes_right_at_categorical_splits() {
        // Pinned prediction-time contract: category codes outside the
        // splitting subset — including codes never observed at training
        // time — fail `X ∈ Y` and route right.
        let t = sample_tree(); // left child splits on c ∈ {1,3}, universe {0..4}
        for unseen in [2u32, 4, 63] {
            // schema says card 4, but predict doesn't validate: anything < 64
            let leaf = t.leaf_for(&rec(3.0, unseen));
            assert_eq!(
                t.node(leaf).class_counts,
                vec![0, 2],
                "code {unseen} is not in {{1,3}} and must route right"
            );
            assert_eq!(t.predict(&rec(3.0, unseen)), 1);
        }
    }

    #[test]
    fn predicate_tie_rank_orders_num_values() {
        let a = Predicate::NumLe(-1.0).tie_rank();
        let b = Predicate::NumLe(0.0).tie_rank();
        let c = Predicate::NumLe(2.0).tie_rank();
        assert!(a < b && b < c);
    }
}
