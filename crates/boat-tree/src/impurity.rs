//! Concave impurity functions (paper §2.2).
//!
//! Impurity-based split selection minimizes a *concave* impurity function
//! `imp_θ` over the class-probability arguments induced by a candidate
//! split. Concavity is load-bearing twice:
//!
//! 1. it is why the best split can be found on the convex hull of stamp
//!    points, and
//! 2. it is why Lemma 3.1's hyper-rectangle *corner* lower bound is valid —
//!    a concave function over a box attains its minimum at a vertex.
//!
//! Every function here works on **integer class counts** and performs the
//! identical floating-point operations regardless of caller, so that the
//! in-memory builder, RainForest and BOAT compute bit-identical impurity
//! values from identical counts — the foundation of the exact-same-tree
//! guarantee.

use std::fmt::Debug;

/// A concave impurity function over class-count vectors.
///
/// `node_impurity` is the paper's `imp_θ` applied to a single partition's
/// class proportions; [`split_impurity`] combines two partitions weighted by
/// size.
pub trait Impurity: Debug + Send + Sync {
    /// Impurity of one partition given its per-class counts. Must be
    /// concave in the count vector (for fixed total) and `0` for a pure or
    /// empty partition.
    fn node_impurity(&self, counts: &[u64]) -> f64;

    /// A short stable name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// Weighted impurity of a binary split: `(n_L·imp(L) + n_R·imp(R)) / n`.
///
/// `left` and `right` are per-class counts of the two partitions. This is
/// the quantity all split-selection code minimizes; it is the estimator
/// `imp_X(n, X, x)` of paper §2.2.1 expressed over counts instead of
/// proportions.
pub fn split_impurity(imp: &dyn Impurity, left: &[u64], right: &[u64]) -> f64 {
    debug_assert_eq!(left.len(), right.len());
    let n_l: u64 = left.iter().sum();
    let n_r: u64 = right.iter().sum();
    let n = n_l + n_r;
    if n == 0 {
        return 0.0;
    }
    let w_l = n_l as f64 / n as f64;
    let w_r = n_r as f64 / n as f64;
    w_l * imp.node_impurity(left) + w_r * imp.node_impurity(right)
}

/// The Gini index `1 − Σ p_i²` \[BFOS84\], used by CART.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gini;

impl Impurity for Gini {
    fn node_impurity(&self, counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let mut sum_sq = 0.0;
        for &c in counts {
            let p = c as f64 / n;
            sum_sq += p * p;
        }
        1.0 - sum_sq
    }

    fn name(&self) -> &'static str {
        "gini"
    }
}

/// The entropy `−Σ p_i log₂ p_i` \[Qui86\], used by C4.5.
#[derive(Debug, Clone, Copy, Default)]
pub struct Entropy;

impl Impurity for Entropy {
    fn node_impurity(&self, counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let mut h = 0.0;
        for &c in counts {
            if c > 0 {
                let p = c as f64 / n;
                h -= p * p.log2();
            }
        }
        h
    }

    fn name(&self) -> &'static str {
        "entropy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_and_empty_partitions_have_zero_impurity() {
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            assert_eq!(imp.node_impurity(&[10, 0]), 0.0, "{}", imp.name());
            assert_eq!(imp.node_impurity(&[0, 7, 0]), 0.0);
            assert_eq!(imp.node_impurity(&[0, 0]), 0.0);
            assert_eq!(imp.node_impurity(&[]), 0.0);
        }
    }

    #[test]
    fn uniform_distribution_maximizes() {
        // Gini of 50/50 = 0.5; entropy of 50/50 = 1 bit.
        assert!((Gini.node_impurity(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((Entropy.node_impurity(&[5, 5]) - 1.0).abs() < 1e-12);
        // Three balanced classes.
        assert!((Gini.node_impurity(&[4, 4, 4]) - (1.0 - 3.0 / 9.0)).abs() < 1e-12);
        assert!((Entropy.node_impurity(&[4, 4, 4]) - 3f64.log2()).abs() < 1e-12);
        // Skewed is lower than balanced.
        assert!(Gini.node_impurity(&[9, 1]) < Gini.node_impurity(&[5, 5]));
        assert!(Entropy.node_impurity(&[9, 1]) < Entropy.node_impurity(&[5, 5]));
    }

    #[test]
    fn impurity_is_scale_invariant() {
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let a = imp.node_impurity(&[3, 7]);
            let b = imp.node_impurity(&[300, 700]);
            assert!((a - b).abs() < 1e-12, "{}", imp.name());
        }
    }

    #[test]
    fn split_impurity_weights_partitions() {
        // Left pure (4 tuples), right 50/50 (4 tuples): weighted Gini = 0.25.
        let v = split_impurity(&Gini, &[4, 0], &[2, 2]);
        assert!((v - 0.25).abs() < 1e-12);
        // Degenerate empty split.
        assert_eq!(split_impurity(&Gini, &[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn perfect_split_scores_zero() {
        assert_eq!(split_impurity(&Gini, &[8, 0], &[0, 8]), 0.0);
        assert_eq!(split_impurity(&Entropy, &[8, 0], &[0, 8]), 0.0);
    }

    #[test]
    fn useless_split_scores_node_impurity() {
        // Splitting a 50/50 node into two 50/50 halves changes nothing.
        let v = split_impurity(&Gini, &[3, 3], &[5, 5]);
        assert!((v - 0.5).abs() < 1e-12);
    }

    /// Concavity over the count simplex (fixed totals): for stamp points
    /// a, b and λ ∈ (0,1): imp(λa + (1−λ)b) ≥ λ·imp(a) + (1−λ)·imp(b).
    /// We check it on the *proportion* form using midpoints of integer
    /// vectors with equal totals.
    #[test]
    fn concavity_on_midpoints() {
        let pairs: &[(&[u64], &[u64])] = &[
            (&[10, 0], &[0, 10]),
            (&[7, 3], &[1, 9]),
            (&[5, 5], &[9, 1]),
            (&[6, 2, 2], &[2, 6, 2]),
            (&[1, 1, 8], &[8, 1, 1]),
        ];
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            for (a, b) in pairs {
                let mid: Vec<u64> = a.iter().zip(*b).map(|(x, y)| (x + y) / 2).collect();
                // Totals are equal and even in these fixtures, so `mid`
                // is the exact midpoint.
                let lhs = imp.node_impurity(&mid);
                let rhs = 0.5 * imp.node_impurity(a) + 0.5 * imp.node_impurity(b);
                assert!(
                    lhs >= rhs - 1e-12,
                    "{} not concave at {a:?}/{b:?}: {lhs} < {rhs}",
                    imp.name()
                );
            }
        }
    }
}
