//! Columnar sample-phase engine (SLIQ/SPRINT-style presorted attribute
//! lists + weighted bootstrap).
//!
//! BOAT's sampling phase grows `b` bootstrap trees over resamples of the
//! in-memory sample `D'`. The row-oriented reference path clones the drawn
//! records per resample and re-sorts `(value, label)` pairs per node per
//! numeric attribute. This module replaces both costs while producing
//! **bit-identical trees**:
//!
//! * [`ColumnarSample`] transposes `D'` *once* into per-attribute dense
//!   columns (`Vec<f64>` / `Vec<u32>`, plus `Vec<u16>` labels) and computes,
//!   once per numeric attribute, a presorted row-id index ordered by
//!   [`f64::total_cmp`] with ties broken by row id.
//! * A bootstrap resample becomes a *multiplicity vector* (`Vec<u32>`,
//!   weights) over sample rows — zero record clones.
//! * [`grow_weighted`] grows a [`Tree`] over `(columns, weights)`: a node's
//!   per-attribute sorted order is derived by *filtering* its parent's
//!   sorted order with a node-membership bitmap (stable, O(node) per node,
//!   no re-sort — the rank-preserving partition), and the numeric sweep
//!   runs over the dense sorted column with weight-multiplied class counts
//!   through the **identical** shared [`sweep_numeric`]/impurity code the
//!   reference builder uses.
//!
//! ### Determinism contract
//!
//! For any multiplicity vector `w` and the materialized multiset `M(w)`
//! (row `r` repeated `w[r]` times), `grow_weighted(cs, w, sel, limits)`
//! equals `TdTreeBuilder::new(sel, limits).fit(schema, M(w))` node for
//! node, bit for bit: class counts are the same `u64` sums in a different
//! order (addition is commutative), distinct-value grouping uses the same
//! bit-pattern runs over the same `total_cmp` order, and split evaluation,
//! tie-breaking and midpoints go through the same shared code. The
//! differential oracle (`boat-core/tests/columnar_exactness.rs`) asserts
//! this end to end.
//!
//! [`sweep_numeric`]: crate::split::sweep_numeric

use crate::grow::{GrowthLimits, SplitSelector};
use crate::model::{NodeId, Predicate, Split, Tree};
use boat_data::{AttrType, Field, Record, Schema};

/// One transposed attribute column of the sample.
#[derive(Debug, Clone)]
pub enum Column {
    /// Dense numeric values, one per sample row.
    Num(Vec<f64>),
    /// Dense category codes, one per sample row.
    Cat(Vec<u32>),
}

/// The in-memory sample `D'` in columnar form: dense per-attribute columns,
/// dense labels, and (after [`ColumnarSample::presort`]) one presorted
/// row-id index per numeric attribute.
#[derive(Debug, Clone)]
pub struct ColumnarSample {
    schema: Schema,
    n_rows: usize,
    columns: Vec<Column>,
    labels: Vec<u16>,
    /// Per attribute: row ids ordered ascending by `total_cmp` on the
    /// column value, ties broken by row id. `None` for categorical
    /// attributes (and for numeric attributes before [`presort`]).
    ///
    /// [`presort`]: ColumnarSample::presort
    sorted: Vec<Option<Vec<u32>>>,
}

impl ColumnarSample {
    /// Transpose `records` into dense columns. Does **not** build the
    /// presorted indices — call [`ColumnarSample::presort`] (the split lets
    /// callers time the two steps separately).
    pub fn transpose(schema: &Schema, records: &[Record]) -> Self {
        let n = records.len();
        let columns = schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(a, attr)| match attr.ty() {
                AttrType::Numeric => Column::Num(records.iter().map(|r| r.num(a)).collect()),
                AttrType::Categorical { .. } => {
                    Column::Cat(records.iter().map(|r| r.cat(a)).collect())
                }
            })
            .collect();
        ColumnarSample {
            schema: schema.clone(),
            n_rows: n,
            columns,
            labels: records.iter().map(|r| r.label()).collect(),
            sorted: vec![None; schema.n_attributes()],
        }
    }

    /// Build the presorted row-id index of every numeric attribute:
    /// ascending by `total_cmp`, ties broken by row id (a deterministic
    /// total order, so the index is a pure function of the column).
    /// Idempotent.
    pub fn presort(&mut self) {
        for (a, col) in self.columns.iter().enumerate() {
            if self.sorted[a].is_some() {
                continue;
            }
            if let Column::Num(values) = col {
                let mut idx: Vec<u32> = (0..self.n_rows as u32).collect();
                idx.sort_unstable_by(|&x, &y| {
                    values[x as usize]
                        .total_cmp(&values[y as usize])
                        .then_with(|| x.cmp(&y))
                });
                self.sorted[a] = Some(idx);
            }
        }
    }

    /// Transpose + presort in one call.
    pub fn from_records(schema: &Schema, records: &[Record]) -> Self {
        let mut cs = Self::transpose(schema, records);
        cs.presort();
        cs
    }

    /// The sample's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of sample rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The label column.
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// The label of one row.
    #[inline]
    pub fn label(&self, row: u32) -> u16 {
        self.labels[row as usize]
    }

    /// The dense numeric column of attribute `attr`. Panics if categorical.
    #[inline]
    pub fn num_column(&self, attr: usize) -> &[f64] {
        match &self.columns[attr] {
            Column::Num(v) => v,
            Column::Cat(_) => panic!("attribute {attr} is categorical"),
        }
    }

    /// The dense categorical column of attribute `attr`. Panics if numeric.
    #[inline]
    pub fn cat_column(&self, attr: usize) -> &[u32] {
        match &self.columns[attr] {
            Column::Cat(v) => v,
            Column::Num(_) => panic!("attribute {attr} is numeric"),
        }
    }

    /// The presorted row-id index of numeric attribute `attr`, if built.
    pub fn presorted(&self, attr: usize) -> Option<&[u32]> {
        self.sorted[attr].as_deref()
    }

    /// Approximate heap bytes of one row-oriented [`Record`] of this
    /// schema — what each *draw* of a materialized bootstrap resample
    /// would clone. Used for the `boat.sample.clone_bytes_avoided` metric.
    pub fn record_bytes(&self) -> usize {
        std::mem::size_of::<Record>() + self.schema.n_attributes() * std::mem::size_of::<Field>()
    }

    /// Whether `row` routes left under `split` (same predicate semantics as
    /// [`Split::goes_left`] on the row's record).
    #[inline]
    pub fn goes_left(&self, split: &Split, row: u32) -> bool {
        match &split.predicate {
            Predicate::NumLe(x) => self.num_column(split.attr)[row as usize] <= *x,
            Predicate::CatIn(set) => set.contains(self.cat_column(split.attr)[row as usize]),
        }
    }
}

/// A node's view of the sample during columnar growth.
#[derive(Debug, Clone)]
pub struct NodeRows {
    /// The node's member rows in ascending row-id order (drives categorical
    /// accumulation and the partition).
    pub rows: Vec<u32>,
    /// Per attribute: the node's member rows in the attribute's presorted
    /// order (numeric attributes only; `None` for categorical).
    pub sorted: Vec<Option<Vec<u32>>>,
}

impl NodeRows {
    /// The root view: every row with non-zero weight, in row-id order plus
    /// each numeric attribute's presorted order (both derived by filtering,
    /// so the rank order is inherited from the global presort).
    pub fn root(cs: &ColumnarSample, weights: &[u32]) -> Self {
        assert_eq!(weights.len(), cs.n_rows(), "one weight per sample row");
        let rows: Vec<u32> = (0..cs.n_rows() as u32)
            .filter(|&r| weights[r as usize] > 0)
            .collect();
        let sorted = (0..cs.schema.n_attributes())
            .map(|a| {
                cs.presorted(a).map(|idx| {
                    idx.iter()
                        .copied()
                        .filter(|&r| weights[r as usize] > 0)
                        .collect()
                })
            })
            .collect();
        NodeRows { rows, sorted }
    }

    /// Number of member rows (not weighted).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the node has no member rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rank-preserving partition: split every list into (left, right) by
    /// the membership bitmap `in_left`, preserving relative order — the
    /// children's sorted lists stay sorted without re-sorting (stable
    /// filter, O(node) total).
    fn partition(&self, in_left: &[bool]) -> (NodeRows, NodeRows) {
        let split_list = |list: &[u32]| {
            let mut l = Vec::new();
            let mut r = Vec::new();
            for &row in list {
                if in_left[row as usize] {
                    l.push(row);
                } else {
                    r.push(row);
                }
            }
            (l, r)
        };
        let (rows_l, rows_r) = split_list(&self.rows);
        let mut sorted_l = Vec::with_capacity(self.sorted.len());
        let mut sorted_r = Vec::with_capacity(self.sorted.len());
        for slot in &self.sorted {
            match slot {
                Some(list) => {
                    let (l, r) = split_list(list);
                    sorted_l.push(Some(l));
                    sorted_r.push(Some(r));
                }
                None => {
                    sorted_l.push(None);
                    sorted_r.push(None);
                }
            }
        }
        (
            NodeRows {
                rows: rows_l,
                sorted: sorted_l,
            },
            NodeRows {
                rows: rows_r,
                sorted: sorted_r,
            },
        )
    }
}

/// Grow the decision tree for the weighted sample `(cs, weights)` —
/// bit-identical to [`crate::TdTreeBuilder::fit`] on the materialized
/// multiset (row `r` repeated `weights[r]` times), per the module-level
/// determinism contract.
///
/// The selector must support the columnar path
/// ([`SplitSelector::supports_columnar`]); panics otherwise. `cs` must be
/// presorted.
pub fn grow_weighted<S: SplitSelector + ?Sized>(
    cs: &ColumnarSample,
    weights: &[u32],
    selector: &S,
    limits: GrowthLimits,
) -> Tree {
    grow_weighted_gated(cs, weights, selector, limits, None)
}

/// [`grow_weighted`] with an optional subsample gate (see
/// [`crate::subsample`]): every node's split selection goes through
/// [`SplitSelector::select_columnar_ctx`] with a stable preorder node index
/// and depth, so gated selectors can derive per-node seeds. The gate never
/// changes the output tree — only how many split points are evaluated —
/// so this carries the exact same determinism contract as
/// [`grow_weighted`] (which is this function with `gate = None`).
pub fn grow_weighted_gated<S: SplitSelector + ?Sized>(
    cs: &ColumnarSample,
    weights: &[u32],
    selector: &S,
    limits: GrowthLimits,
    gate: Option<&crate::subsample::SubsampleRuntime<'_>>,
) -> Tree {
    assert!(
        selector.supports_columnar(),
        "selector does not support the columnar sample engine"
    );
    let k = cs.schema.n_classes();
    let mut counts = vec![0u64; k];
    for (r, &w) in weights.iter().enumerate() {
        counts[cs.labels[r] as usize] += w as u64;
    }
    let mut tree = Tree::leaf(counts);
    let root = tree.root();
    let rows = NodeRows::root(cs, weights);
    let mut in_left = vec![false; cs.n_rows()];
    let mut next_node = 0u64;
    grow(
        cs,
        weights,
        selector,
        limits,
        &mut tree,
        root,
        rows,
        0,
        &mut in_left,
        &mut next_node,
        gate,
    );
    tree
}

#[allow(clippy::too_many_arguments)] // internal recursion mirrors TdTreeBuilder::grow
fn grow<S: SplitSelector + ?Sized>(
    cs: &ColumnarSample,
    weights: &[u32],
    selector: &S,
    limits: GrowthLimits,
    tree: &mut Tree,
    node: NodeId,
    rows: NodeRows,
    depth: u32,
    in_left: &mut [bool],
    next_node: &mut u64,
    gate: Option<&crate::subsample::SubsampleRuntime<'_>>,
) {
    let node_index = *next_node;
    *next_node += 1;
    if limits.must_stop(&tree.node(node).class_counts, depth) {
        return;
    }
    let totals = tree.node(node).class_counts.clone();
    let ctx = crate::subsample::ColumnarCtx {
        node_index,
        depth,
        gate,
    };
    let Some(eval) = selector.select_columnar_ctx(cs, &rows, weights, &totals, &ctx) else {
        return;
    };
    for &row in &rows.rows {
        in_left[row as usize] = cs.goes_left(&eval.split, row);
    }
    let (left_rows, right_rows) = rows.partition(in_left);
    for &row in &left_rows.rows {
        in_left[row as usize] = false; // restore the scratch bitmap
    }
    drop(rows);
    debug_assert_eq!(
        left_rows
            .rows
            .iter()
            .map(|&r| weights[r as usize] as u64)
            .sum::<u64>(),
        eval.left_counts.iter().sum::<u64>(),
        "weighted left family must match the evaluated split"
    );
    debug_assert_eq!(
        right_rows
            .rows
            .iter()
            .map(|&r| weights[r as usize] as u64)
            .sum::<u64>(),
        eval.right_counts.iter().sum::<u64>(),
        "weighted right family must match the evaluated split"
    );
    let (left, right) = tree.split_node(node, eval.split, eval.left_counts, eval.right_counts);
    grow(
        cs,
        weights,
        selector,
        limits,
        tree,
        left,
        left_rows,
        depth + 1,
        in_left,
        next_node,
        gate,
    );
    grow(
        cs,
        weights,
        selector,
        limits,
        tree,
        right,
        right_rows,
        depth + 1,
        in_left,
        next_node,
        gate,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{ImpuritySelector, TdTreeBuilder};
    use crate::impurity::Gini;
    use boat_data::{Attribute, Field};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn selector() -> ImpuritySelector<Gini> {
        ImpuritySelector::new(Gini)
    }

    fn mixed_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::numeric("x"),
                Attribute::categorical("c", 5),
                Attribute::numeric("y"),
            ],
            3,
        )
        .unwrap()
    }

    fn random_records(schema: &Schema, n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let fields: Vec<Field> = schema
                    .attributes()
                    .iter()
                    .map(|a| match a.ty() {
                        // A coarse value grid makes duplicate values (and
                        // hence grouping/tie paths) common.
                        AttrType::Numeric => Field::Num(rng.random_range(0..25u32) as f64 * 0.5),
                        AttrType::Categorical { cardinality } => {
                            Field::Cat(rng.random_range(0..cardinality))
                        }
                    })
                    .collect();
                let label = rng.random_range(0..schema.n_classes() as u32) as u16;
                Record::new(fields, label)
            })
            .collect()
    }

    /// Materialize the multiset a weight vector denotes, in row order.
    fn materialize(records: &[Record], weights: &[u32]) -> Vec<Record> {
        let mut out = Vec::new();
        for (r, &w) in weights.iter().enumerate() {
            for _ in 0..w {
                out.push(records[r].clone());
            }
        }
        out
    }

    #[test]
    fn presorted_index_orders_by_total_cmp_with_rowid_ties() {
        let schema = Schema::new(vec![Attribute::numeric("x")], 2).unwrap();
        let vals = [3.0, 1.0, 3.0, -0.0, 0.0, 1.0];
        let records: Vec<Record> = vals
            .iter()
            .map(|&v| Record::new(vec![Field::Num(v)], 0))
            .collect();
        let cs = ColumnarSample::from_records(&schema, &records);
        // total_cmp: -0.0 < 0.0; equal values tie-break by row id.
        assert_eq!(cs.presorted(0).unwrap(), &[3, 4, 1, 5, 0, 2]);
    }

    #[test]
    fn unit_weights_match_reference_builder() {
        let schema = mixed_schema();
        let records = random_records(&schema, 300, 11);
        let sel = selector();
        let reference = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        let cs = ColumnarSample::from_records(&schema, &records);
        let weights = vec![1u32; records.len()];
        let columnar = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
        assert_eq!(columnar, reference);
    }

    #[test]
    fn bootstrap_weights_match_reference_on_materialized_resample() {
        let schema = mixed_schema();
        let records = random_records(&schema, 200, 23);
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let weights = boat_data::sample::bootstrap_multiplicities(records.len(), 150, &mut rng);
            let expanded = materialize(&records, &weights);
            let reference =
                TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &expanded);
            let columnar = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
            assert_eq!(columnar, reference, "seed {seed}");
        }
    }

    #[test]
    fn limits_respected_identically() {
        let schema = mixed_schema();
        let records = random_records(&schema, 250, 7);
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        let weights = vec![1u32; records.len()];
        for limits in [
            GrowthLimits {
                max_depth: Some(2),
                ..GrowthLimits::default()
            },
            GrowthLimits {
                min_split: 40,
                ..GrowthLimits::default()
            },
            GrowthLimits {
                stop_family_size: Some(60),
                ..GrowthLimits::default()
            },
        ] {
            let reference = TdTreeBuilder::new(&sel, limits).fit(&schema, &records);
            let columnar = grow_weighted(&cs, &weights, &sel, limits);
            assert_eq!(columnar, reference, "{limits:?}");
        }
    }

    #[test]
    fn all_equal_column_yields_no_split_on_it() {
        // Attribute 0 is constant; attribute 1 separates. The constant
        // column exercises the single-distinct-value sweep path (no valid
        // candidate) in both engines.
        let schema =
            Schema::new(vec![Attribute::numeric("k"), Attribute::numeric("x")], 2).unwrap();
        let records: Vec<Record> = (0..40)
            .map(|i| {
                Record::new(
                    vec![Field::Num(7.25), Field::Num(i as f64)],
                    u16::from(i >= 20),
                )
            })
            .collect();
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        let weights = vec![1u32; records.len()];
        let tree = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
        let reference = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree, reference);
        assert_eq!(tree.node(tree.root()).split().unwrap().attr, 1);
        // Fully constant data: a single leaf.
        let constant: Vec<Record> = (0..10)
            .map(|i| Record::new(vec![Field::Num(1.0), Field::Num(1.0)], (i % 2) as u16))
            .collect();
        let cs2 = ColumnarSample::from_records(&schema, &constant);
        let t2 = grow_weighted(&cs2, &[1; 10], &sel, GrowthLimits::default());
        assert_eq!(t2.n_nodes(), 1);
    }

    #[test]
    fn rank_preserving_partition_keeps_child_lists_sorted() {
        // NaN-free ties: many duplicate values, so children inherit runs of
        // equal values whose internal order must stay by row id.
        let schema =
            Schema::new(vec![Attribute::numeric("x"), Attribute::numeric("y")], 2).unwrap();
        let records: Vec<Record> = (0..60)
            .map(|i| {
                Record::new(
                    vec![Field::Num((i % 4) as f64), Field::Num((i % 3) as f64)],
                    (i % 2) as u16,
                )
            })
            .collect();
        let cs = ColumnarSample::from_records(&schema, &records);
        let weights = vec![1u32; records.len()];
        let rows = NodeRows::root(&cs, &weights);
        let mut in_left = vec![false; cs.n_rows()];
        let split = Split {
            attr: 0,
            predicate: Predicate::NumLe(1.0),
        };
        for &row in &rows.rows {
            in_left[row as usize] = cs.goes_left(&split, row);
        }
        let (l, r) = rows.partition(&in_left);
        assert_eq!(l.len() + r.len(), 60);
        for node in [&l, &r] {
            for a in [0usize, 1] {
                let list = node.sorted[a].as_ref().unwrap();
                let col = cs.num_column(a);
                for w in list.windows(2) {
                    let (i, j) = (w[0], w[1]);
                    let ord = col[i as usize]
                        .total_cmp(&col[j as usize])
                        .then_with(|| i.cmp(&j));
                    assert_eq!(
                        ord,
                        std::cmp::Ordering::Less,
                        "child list must stay strictly ordered by (value, row id)"
                    );
                }
            }
        }
        // And membership is the predicate, order-preserved.
        assert!(l
            .rows
            .iter()
            .all(|&row| cs.num_column(0)[row as usize] <= 1.0));
        assert!(r
            .rows
            .iter()
            .all(|&row| cs.num_column(0)[row as usize] > 1.0));
        assert!(l.rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn signed_zero_values_match_reference() {
        // -0.0 and 0.0 are distinct runs under total_cmp/to_bits in both
        // engines; the sweep walks through the pair identically. (The
        // winning split sits elsewhere: a `NumLe(-0.0)` *winner* would be
        // unrealizable by the `<=` predicate — pre-existing semantics
        // shared, bit for bit, by both engines.)
        let schema = Schema::new(vec![Attribute::numeric("x")], 2).unwrap();
        let records: Vec<Record> = [(-1.0, 0u16), (-0.0, 1), (0.0, 1), (1.0, 1)]
            .iter()
            .map(|&(v, l)| Record::new(vec![Field::Num(v)], l))
            .collect();
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        let tree = grow_weighted(&cs, &[1; 4], &sel, GrowthLimits::default());
        let reference = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &records);
        assert_eq!(tree, reference);
        assert_eq!(
            tree.node(tree.root()).split().unwrap().predicate,
            Predicate::NumLe(-1.0)
        );
    }

    #[test]
    fn zero_weight_rows_are_invisible() {
        let schema = mixed_schema();
        let records = random_records(&schema, 120, 31);
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        // Weight 0 for every odd row == fitting the even-row subset.
        let weights: Vec<u32> = (0..records.len()).map(|r| (r % 2 == 0) as u32).collect();
        let subset: Vec<Record> = records.iter().step_by(2).cloned().collect();
        let reference = TdTreeBuilder::new(&sel, GrowthLimits::default()).fit(&schema, &subset);
        let columnar = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
        assert_eq!(columnar, reference);
    }

    #[test]
    fn empty_weights_grow_a_single_leaf() {
        let schema = mixed_schema();
        let records = random_records(&schema, 10, 3);
        let sel = selector();
        let cs = ColumnarSample::from_records(&schema, &records);
        let tree = grow_weighted(&cs, &[0; 10], &sel, GrowthLimits::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.node(tree.root()).n_records(), 0);
    }
}
