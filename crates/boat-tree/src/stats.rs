//! Minimal special-function toolbox for the QUEST-style selector: log-gamma
//! and the regularized incomplete gamma/beta functions, which give
//! chi-square and F-distribution tail probabilities. Implementations follow
//! the classic series/continued-fraction recipes (Numerical Recipes style)
//! and are accurate to ~1e-10 over the ranges the selector uses.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Continued-fraction evaluation of `Q(a, x)` for `x >= a + 1` (modified
/// Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta `I_x(a, b)` (continued fraction).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain: a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc domain: 0 <= x <= 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (front * beta_cf(b, a, 1.0 - x) / b)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Chi-square survival function `P(X > x)` with `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_sf needs k > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// F-distribution survival function `P(F > f)` with `(d1, d2)` degrees of
/// freedom.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_sf needs positive dof");
    if f <= 0.0 {
        return 1.0;
    }
    beta_inc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_are_complements() {
        for (a, x) in [(0.5, 0.2), (1.0, 1.0), (3.0, 2.5), (10.0, 14.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "P+Q != 1 at a={a}, x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn chi2_sf_matches_tables() {
        // Classic table values.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(5.991, 2.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(9.488, 4.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(0.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_sf_matches_tables() {
        // F(0.95; 1, 10) = 4.965, F(0.95; 5, 20) = 2.711
        assert!((f_sf(4.965, 1.0, 10.0) - 0.05).abs() < 1e-3);
        assert!((f_sf(2.711, 5.0, 20.0) - 0.05).abs() < 1e-3);
        assert!((f_sf(0.0, 3.0, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_is_monotone_and_bounded() {
        let mut last = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = beta_inc(2.0, 3.0, x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= last - 1e-12, "I_x must be nondecreasing");
            last = v;
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = beta_inc(2.5, 4.0, 0.3);
        let w = 1.0 - beta_inc(4.0, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }
}
