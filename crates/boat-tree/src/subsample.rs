//! Confidence-gated subsampled split search for the columnar sample phase.
//!
//! The columnar engine (see [`crate::columnar`]) already evaluates split
//! points *faster* than the row engine; this module makes it evaluate
//! *fewer* of them while keeping the selected [`SplitEval`] byte-identical
//! to the full exact sweep. The device is the same one BOAT's cleanup-phase
//! verification uses (paper Lemma 3.1), applied one level earlier, inside
//! the bootstrap builds themselves:
//!
//! 1. **Sub-sample.** Pick `⌈fraction · m⌉` *boundary* positions in the
//!    node's presorted attribute list — a deterministic quantile sketch of
//!    the node's value distribution, stride-spaced with a per-node seeded
//!    offset so no fixed stratum is systematically favored. Each raw pick
//!    is snapped forward to the nearest distinct-value run boundary, so
//!    every boundary is itself a legal split candidate.
//! 2. **Score with certainty, not estimates.** The weighted prefix class
//!    counts at the boundaries are computed *exactly* in one lean counting
//!    pass (labels and weights only — no value loads). Every candidate
//!    strictly between two boundaries has a left-count vector confined to
//!    the axis-aligned box spanned by the two prefix vectors (class counts
//!    are monotone along the sorted order, and node rows all carry weight
//!    ≥ 1). Concavity puts the minimum of the weighted split impurity over
//!    that box at one of its `2^k` corners ([`corner_lower_bound`]) — a
//!    hard lower bound, not a statistical interval.
//! 3. **Prune what cannot win.** A gap whose corner bound is strictly
//!    worse than the best exactly-evaluated candidate so far (a boundary
//!    candidate or an earlier attribute's winner) cannot contain the
//!    overall winner under [`cmp_splits`]; equal bounds prune only when
//!    the reference comes from a smaller attribute index (which wins the
//!    tie anyway). Everything else **falls back to the exact sweep** over
//!    just the surviving windows, seeded with the boundary prefix counts —
//!    the same [`sweep_numeric`] reuse BOAT's in-interval cleanup search
//!    relies on.
//!
//! Because candidates are only ever discarded when an exactly-computed
//! bound proves they lose (ties included), and every surviving candidate
//! is evaluated by the shared sweep over identical integer counts, the
//! returned split is bit-for-bit the one the ungated engine returns — the
//! differential oracles (`boat-core/tests/subsample_exactness.rs`) assert
//! this on every input. The knobs ([`SubsampleParams`]) are therefore pure
//! performance tuning, exactly like the engine choice itself.
//!
//! [`cmp_splits`]: crate::split::cmp_splits
//! [`sweep_numeric`]: crate::split::sweep_numeric
//! [`SplitEval`]: crate::split::SplitEval

use crate::impurity::{split_impurity, Impurity};
use crate::model::{Predicate, Split};
use crate::split::{cmp_splits, sweep_numeric, SplitEval};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Never gate with fewer boundary picks than this — too few boxes make the
/// bounds vacuous and the counting pass pure overhead.
const MIN_PICKS: usize = 8;

/// Corner enumeration is `2^k`; past this many classes the gate falls back
/// to the exact sweep rather than pay exponential bound evaluations.
const MAX_GATE_CLASSES: usize = 8;

/// Lemma 3.1: lower bound for the weighted split impurity of any candidate
/// whose left-count vector lies in the hyper-rectangle
/// `[stamp_lo, stamp_hi]` (componentwise), at a node with class `totals`.
///
/// Evaluates the impurity at all `2^k` corners and returns the minimum —
/// valid because the weighted split impurity is concave in the left-count
/// vector (see [`crate::impurity`]), and a concave function over a box
/// attains its minimum at a vertex. Shared by the subsampled split search
/// here and BOAT's cleanup-phase verification (`boat-core`). Panics if
/// `k > 20` (exponential in the class count by construction).
pub fn corner_lower_bound(
    imp: &dyn Impurity,
    stamp_lo: &[u64],
    stamp_hi: &[u64],
    totals: &[u64],
) -> f64 {
    let k = totals.len();
    assert!(
        k <= 20,
        "corner bound is exponential in class count; got k={k}"
    );
    debug_assert_eq!(stamp_lo.len(), k);
    debug_assert_eq!(stamp_hi.len(), k);
    debug_assert!(stamp_lo.iter().zip(stamp_hi).all(|(l, h)| l <= h));
    debug_assert!(stamp_hi.iter().zip(totals).all(|(h, t)| h <= t));

    let mut best = f64::INFINITY;
    let mut left = vec![0u64; k];
    let mut right = vec![0u64; k];
    for mask in 0u32..(1u32 << k) {
        for i in 0..k {
            left[i] = if mask & (1 << i) != 0 {
                stamp_hi[i]
            } else {
                stamp_lo[i]
            };
            right[i] = totals[i] - left[i];
        }
        let v = split_impurity(imp, &left, &right);
        if v < best {
            best = v;
        }
    }
    best
}

/// SplitMix64 finalizer: the deterministic hash behind per-node pick
/// offsets. Any offset is *correct* (the gate's output never depends on
/// it); seeding only decorrelates which strata get picked across nodes,
/// repetitions and attributes.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tuning knobs of the gated search (mirrors `BoatConfig::split_subsample`
/// in `boat-core`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsampleParams {
    /// Fraction of a node's rows picked as sub-sample boundaries. `0`
    /// disables the gate entirely.
    pub fraction: f64,
    /// Nodes with fewer member rows than this skip the gate and run the
    /// exact sweep directly (small nodes are cheap; the counting pass
    /// would be pure overhead).
    pub min_node: usize,
}

impl Default for SubsampleParams {
    fn default() -> Self {
        SubsampleParams {
            fraction: 1.0 / 16.0,
            min_node: 256,
        }
    }
}

impl SubsampleParams {
    /// Whether the gate is enabled at all.
    pub fn enabled(&self) -> bool {
        self.fraction > 0.0
    }
}

/// Counters of the gated search, shared across the parallel bootstrap
/// builds (relaxed atomics — the counts are diagnostics, never inputs to
/// the search itself). Mirrored into the `boat.sample.subsample.*`
/// boat-obs counters by `boat-core`.
#[derive(Debug, Default)]
pub struct SubsampleStats {
    /// Sub-sample boundary candidates scored exactly.
    pub swept: AtomicU64,
    /// Inter-boundary gaps pruned by the corner bound.
    pub pruned: AtomicU64,
    /// Gate entries that fell back to the full exact sweep (too few
    /// distinct boundaries, heavy ties, too many classes).
    pub fallbacks: AtomicU64,
    /// Distinct points evaluated by the exact sweeps over surviving
    /// windows.
    pub exact_points: AtomicU64,
}

/// A plain-integer snapshot of [`SubsampleStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsampleSnapshot {
    /// See [`SubsampleStats::swept`].
    pub swept: u64,
    /// See [`SubsampleStats::pruned`].
    pub pruned: u64,
    /// See [`SubsampleStats::fallbacks`].
    pub fallbacks: u64,
    /// See [`SubsampleStats::exact_points`].
    pub exact_points: u64,
}

impl SubsampleStats {
    /// Read every counter (relaxed; exact once the builds have joined).
    pub fn snapshot(&self) -> SubsampleSnapshot {
        SubsampleSnapshot {
            swept: self.swept.load(AtomicOrdering::Relaxed),
            pruned: self.pruned.load(AtomicOrdering::Relaxed),
            fallbacks: self.fallbacks.load(AtomicOrdering::Relaxed),
            exact_points: self.exact_points.load(AtomicOrdering::Relaxed),
        }
    }

    #[inline]
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, AtomicOrdering::Relaxed);
    }
}

/// Everything one tree build needs to run the gate: the knobs, a seed
/// (already mixed with the bootstrap repetition index by the caller), and
/// the shared counters.
#[derive(Debug, Clone, Copy)]
pub struct SubsampleRuntime<'s> {
    /// Tuning knobs.
    pub params: SubsampleParams,
    /// Per-build seed; combined with node index, depth and attribute for
    /// the pick offset.
    pub seed: u64,
    /// Shared counters.
    pub stats: &'s SubsampleStats,
}

impl<'s> SubsampleRuntime<'s> {
    /// Runtime for one build of a multi-build run (e.g. bootstrap
    /// repetition `rep`): same knobs and counters, decorrelated seed.
    pub fn for_rep(&self, rep: u64) -> SubsampleRuntime<'s> {
        SubsampleRuntime {
            params: self.params,
            seed: splitmix64(self.seed ^ splitmix64(rep.wrapping_add(0x5EED))),
            stats: self.stats,
        }
    }
}

/// Per-node context the columnar engine hands to
/// [`SplitSelector::select_columnar_ctx`]: a stable node identity for seed
/// derivation plus the (optional) gate runtime.
///
/// [`SplitSelector::select_columnar_ctx`]: crate::grow::SplitSelector::select_columnar_ctx
#[derive(Debug, Clone, Copy)]
pub struct ColumnarCtx<'a> {
    /// Preorder index of the node within its tree build (root = 0).
    pub node_index: u64,
    /// Node depth (root = 0).
    pub depth: u32,
    /// The gate runtime, or `None` for the ungated exact engine.
    pub gate: Option<&'a SubsampleRuntime<'a>>,
}

impl ColumnarCtx<'static> {
    /// The ungated context (what plain `select_columnar` uses).
    pub fn ungated() -> Self {
        ColumnarCtx {
            node_index: 0,
            depth: 0,
            gate: None,
        }
    }
}

/// What the gate decided for one numeric attribute.
pub enum GateOutcome {
    /// The gated search ran; this is the attribute's surviving best (it
    /// may be `None`, or worse than `best_so_far` — only the *overall*
    /// winner is guaranteed identical to the ungated engine's).
    Gated(Option<SplitEval>),
    /// The gate declined (degenerate column, heavy ties, too many
    /// classes): the caller must run the full exact sweep.
    Fallback,
}

/// One snapped boundary of the sub-sample: `pos` rows form the prefix, the
/// last of them carrying `value` (a run end, hence a legal candidate).
struct Boundary {
    pos: usize,
    value: f64,
}

/// The confidence-gated subsampled split search over one numeric attribute
/// of one node. See the module docs for the algorithm and the exactness
/// argument.
///
/// * `col` — the attribute's dense column; `list` — the node's member rows
///   in the attribute's presorted order; `labels`/`weights` — per sample
///   row; `totals` — the node's weighted class counts.
/// * `best_so_far` — the best candidate of the attributes already swept
///   (smaller indices), used to prune gaps that lose cross-attribute ties.
///
/// Returns [`GateOutcome::Fallback`] (and counts it) whenever subsampling
/// cannot pay for itself; never returns a wrong winner.
#[allow(clippy::too_many_arguments)] // mirrors the selector's per-attribute sweep context
pub fn gated_numeric_split(
    attr: usize,
    col: &[f64],
    list: &[u32],
    labels: &[u16],
    weights: &[u32],
    totals: &[u64],
    imp: &dyn Impurity,
    rt: &SubsampleRuntime<'_>,
    node_index: u64,
    depth: u32,
    best_so_far: Option<&SplitEval>,
) -> GateOutcome {
    let m = list.len();
    let k = totals.len();
    let fallback = || {
        SubsampleStats::add(&rt.stats.fallbacks, 1);
        GateOutcome::Fallback
    };
    if k > MAX_GATE_CLASSES {
        return fallback();
    }
    let picks = (m as f64 * rt.params.fraction).ceil().max(MIN_PICKS as f64) as usize;
    if picks.saturating_mul(4) >= m {
        // The sub-sample would not be a sub-sample: the exact sweep is at
        // most a constant factor away, so skip the bound machinery.
        return fallback();
    }
    let stride = m / picks; // >= 4 by the check above

    // --- 1. Pick raw positions and snap each forward to a run boundary.
    let mix = splitmix64(
        rt.seed ^ splitmix64(node_index) ^ splitmix64(((depth as u64) << 32) | attr as u64),
    );
    let offset = (mix % stride as u64) as usize;
    let mut boundaries: Vec<Boundary> = Vec::with_capacity(picks + 1);
    let mut snap_budget = m / 2; // heavy ties blow this; fall back then
    let mut raw = offset.max(1); // a boundary needs a non-empty prefix
    while raw < m {
        // Snap forward: the smallest e >= raw with a bit-pattern change
        // between positions e-1 and e (so "prefix of e rows" is a union of
        // complete runs and col[list[e-1]] is a candidate value).
        let mut e = raw;
        let mut prev_bits = col[list[e - 1] as usize].to_bits();
        loop {
            if e >= m {
                break;
            }
            let bits = col[list[e] as usize].to_bits();
            if bits != prev_bits {
                break;
            }
            prev_bits = bits;
            e += 1;
            if snap_budget == 0 {
                return fallback();
            }
            snap_budget -= 1;
        }
        if e >= m {
            break; // ran off the tail: no further boundaries exist
        }
        if boundaries.last().is_none_or(|b| b.pos < e) {
            boundaries.push(Boundary {
                pos: e,
                value: col[list[e - 1] as usize],
            });
        }
        raw = (e + 1).max(raw + stride);
    }
    if boundaries.len() < 2 {
        // Degenerate column (all-equal, or one giant run): nothing to
        // bound — degrade to the exact sweep.
        return fallback();
    }

    // --- 2. Exact weighted prefix counts at every boundary, one lean pass
    // (labels and weights only; no value loads).
    let nb = boundaries.len();
    let mut prefix = vec![0u64; nb * k]; // cumulative counts at boundary j
    {
        let mut acc = vec![0u64; k];
        let mut j = 0usize;
        for (i, &row) in list.iter().enumerate() {
            while j < nb && boundaries[j].pos == i {
                prefix[j * k..(j + 1) * k].copy_from_slice(&acc);
                j += 1;
            }
            debug_assert!(weights[row as usize] > 0, "node rows carry weight >= 1");
            acc[labels[row as usize] as usize] += weights[row as usize] as u64;
        }
        while j < nb {
            prefix[j * k..(j + 1) * k].copy_from_slice(&acc);
            j += 1;
        }
    }

    // --- 3. Score every boundary candidate exactly; track the leader.
    SubsampleStats::add(&rt.stats.swept, nb as u64);
    let mut right = vec![0u64; k];
    let mut leader: Option<(f64, usize)> = None; // (impurity, boundary idx)
    for j in 0..nb {
        let left = &prefix[j * k..(j + 1) * k];
        for (r, (t, l)) in right.iter_mut().zip(totals.iter().zip(left)) {
            *r = t - l;
        }
        let v = split_impurity(imp, left, &right);
        // Boundary values strictly ascend, so keeping the first strict
        // minimum reproduces the sweep's smaller-value tie-break.
        if leader.is_none_or(|(best, _)| v.total_cmp(&best) == Ordering::Less) {
            leader = Some((v, j));
        }
    }
    let (leader_imp, leader_j) = leader.expect("nb >= 2 boundaries scored");

    // The pruning reference: the better of the in-attribute leader and the
    // cross-attribute best. A gap whose bound *ties* the reference may be
    // pruned only if the reference wins the tie outright — i.e. it comes
    // from a smaller attribute index ([`cmp_splits`] order). In-attribute
    // ties must survive to the exact sweep (a smaller split value in the
    // gap would win them).
    let (ref_imp, tie_prunes) = match best_so_far {
        Some(b) if b.impurity.total_cmp(&leader_imp) != Ordering::Greater => (b.impurity, true),
        _ => (leader_imp, false),
    };

    // --- 4. Corner-bound every gap; collect surviving windows.
    // Gap g spans positions (start_pos, end_pos): g=0 is [0, b_0), g=j is
    // (b_{j-1}, b_j), g=nb is (b_{nb-1}, m). Its candidates' left-count
    // vectors lie in the box [prefix start, prefix end].
    let zero = vec![0u64; k];
    let gap_box = |g: usize| -> (&[u64], &[u64]) {
        let lo = if g == 0 {
            &zero[..]
        } else {
            &prefix[(g - 1) * k..g * k]
        };
        let hi = if g == nb {
            totals
        } else {
            &prefix[g * k..(g + 1) * k]
        };
        (lo, hi)
    };
    let gap_span = |g: usize| -> (usize, usize) {
        let start = if g == 0 { 0 } else { boundaries[g - 1].pos };
        let end = if g == nb { m } else { boundaries[g].pos };
        (start, end)
    };
    let mut survives = vec![false; nb + 1];
    let mut pruned_gaps = 0u64;
    for (g, alive) in survives.iter_mut().enumerate() {
        let (start, end) = gap_span(g);
        if end - start <= 1 {
            continue; // no interior run end can exist in a 1-row gap
        }
        let (lo, hi) = gap_box(g);
        let bound = corner_lower_bound(imp, lo, hi, totals);
        let beaten = match bound.total_cmp(&ref_imp) {
            Ordering::Greater => true,
            Ordering::Equal => tie_prunes,
            Ordering::Less => false,
        };
        if beaten {
            pruned_gaps += 1;
        } else {
            *alive = true;
        }
    }
    SubsampleStats::add(&rt.stats.pruned, pruned_gaps);

    // --- 5. Exact sweep over each maximal run of surviving gaps, seeded
    // with the prefix counts at the window's left edge (the same
    // `sweep_numeric` base-seeding BOAT's in-interval search uses).
    let mut best: Option<SplitEval> = None;
    let consider = |cand: SplitEval, best: &mut Option<SplitEval>| {
        if best
            .as_ref()
            .is_none_or(|b| cmp_splits(&cand, b) == Ordering::Less)
        {
            *best = Some(cand);
        }
    };
    let mut exact_points = 0u64;
    let mut values: Vec<f64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut g = 0usize;
    while g <= nb {
        if !survives[g] {
            g += 1;
            continue;
        }
        let first = g;
        while g < nb && survives[g + 1] {
            g += 1;
        }
        let last = g;
        g += 1;
        let (start, _) = gap_span(first);
        let (_, end) = gap_span(last);
        // Group the window's rows into distinct-value runs (windows start
        // and end on run boundaries by construction, so runs never split).
        values.clear();
        counts.clear();
        for &row in &list[start..end] {
            let v = col[row as usize];
            let new_run = values
                .last()
                .is_none_or(|&last| last.to_bits() != v.to_bits());
            if new_run {
                values.push(v);
                counts.extend(std::iter::repeat_n(0, k));
            }
            let base = counts.len() - k;
            counts[base + labels[row as usize] as usize] += weights[row as usize] as u64;
        }
        exact_points += values.len() as u64;
        let (init_left, init_candidate) = if first == 0 {
            (None, None)
        } else {
            let b = &boundaries[first - 1];
            (Some(&prefix[(first - 1) * k..first * k]), Some(b.value))
        };
        if let Some(cand) = sweep_numeric(
            attr,
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, &counts[i * k..(i + 1) * k])),
            init_left,
            init_candidate,
            totals,
            imp,
        ) {
            consider(cand, &mut best);
        }
    }
    SubsampleStats::add(&rt.stats.exact_points, exact_points);

    // --- 6. Merge in the boundary leader (its gap neighbors may both be
    // pruned, in which case no window swept it). Identical integer counts
    // through the identical impurity code give the identical float.
    {
        let left = prefix[leader_j * k..(leader_j + 1) * k].to_vec();
        let right: Vec<u64> = totals.iter().zip(&left).map(|(t, l)| t - l).collect();
        consider(
            SplitEval {
                split: Split {
                    attr,
                    predicate: Predicate::NumLe(boundaries[leader_j].value),
                },
                impurity: leader_imp,
                left_counts: left,
                right_counts: right,
            },
            &mut best,
        );
    }
    GateOutcome::Gated(best)
}

/// A mergeable approximate-quantile sketch over a sorted numeric stream.
///
/// Stores `(value, rank)` pairs where `rank` is the exact 1-based prefix
/// count of the entry in its own stream; entries are stride-spaced, so a
/// sketch of capacity `c` answers any rank query within `⌈total / c⌉` and
/// any quantile query within that many ranks. [`QuantileSketch::merge`]
/// combines sketches of disjoint sorted streams (e.g. the per-shard scans
/// of the partitioned fit) with rank errors adding — the standard
/// mergeability bound — which is what lets wide-column candidate
/// generation run per shard and combine at the coordinator.
///
/// The gated split search uses the same stride-picking scheme directly on
/// node row positions (it needs positions, not just values); this type is
/// the value-space form of that sub-sample.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    total: u64,
    /// `(value, rank)` in ascending value order; `rank` counts stream
    /// elements `<=` the entry (under `total_cmp`).
    entries: Vec<(f64, u64)>,
}

impl QuantileSketch {
    /// Build from an ascending (`total_cmp`) stream of `total` values,
    /// keeping at most `capacity` stride-spaced entries (always including
    /// the last element, so the maximum is exact). `offset` rotates which
    /// stratum representatives are kept — any value is correct.
    pub fn from_sorted(
        values: impl IntoIterator<Item = f64>,
        total: u64,
        capacity: usize,
        offset: u64,
    ) -> Self {
        assert!(capacity >= 2, "a sketch needs at least 2 entries");
        let stride = (total / capacity as u64).max(1);
        let offset = offset % stride;
        let mut entries = Vec::with_capacity(capacity + 1);
        let mut rank = 0u64;
        let mut last: Option<f64> = None;
        for v in values {
            rank += 1;
            debug_assert!(
                last.is_none_or(|p| p.total_cmp(&v) != Ordering::Greater),
                "from_sorted requires ascending input"
            );
            last = Some(v);
            if rank % stride == (offset + 1) % stride {
                entries.push((v, rank));
            }
        }
        debug_assert_eq!(rank, total, "total must match the stream length");
        if let Some(v) = last {
            if entries.last().is_none_or(|&(_, r)| r < total) {
                entries.push((v, total));
            }
        }
        QuantileSketch { total, entries }
    }

    /// Number of stream elements summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained `(value, rank)` entries, ascending.
    pub fn entries(&self) -> &[(f64, u64)] {
        &self.entries
    }

    /// Worst-case rank error of [`QuantileSketch::rank`] queries.
    pub fn rank_error(&self) -> u64 {
        // Largest gap between consecutive retained ranks.
        let mut prev = 0u64;
        let mut worst = 0u64;
        for &(_, r) in &self.entries {
            worst = worst.max(r - prev - 1);
            prev = r;
        }
        worst.max(self.total.saturating_sub(prev))
    }

    /// Approximate rank of `v`: the number of stream elements `<= v`, off
    /// by at most [`QuantileSketch::rank_error`].
    pub fn rank(&self, v: f64) -> u64 {
        match self
            .entries
            .partition_point(|&(x, _)| x.total_cmp(&v) != Ordering::Greater)
        {
            0 => 0,
            i => self.entries[i - 1].1,
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`): the retained value
    /// whose rank first reaches `q · total`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let i = self.entries.partition_point(|&(_, r)| r < target);
        Some(self.entries[i.min(self.entries.len() - 1)].0)
    }

    /// Merge with a sketch of a *disjoint* stream (e.g. another shard's
    /// column scan): merged ranks are each entry's own rank plus the other
    /// sketch's approximate rank at that value, so rank errors add. The
    /// result is re-compressed to `capacity` entries.
    pub fn merge(&self, other: &QuantileSketch, capacity: usize) -> QuantileSketch {
        assert!(capacity >= 2, "a sketch needs at least 2 entries");
        let mut merged: Vec<(f64, u64)> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        for &(v, r) in &self.entries {
            merged.push((v, r + other.rank(v)));
        }
        for &(v, r) in &other.entries {
            merged.push((v, r + self.rank(v)));
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        merged.dedup_by(|a, b| a.0.total_cmp(&b.0) == Ordering::Equal && a.1 <= b.1);
        let total = self.total + other.total;
        let keep_every = merged.len().div_ceil(capacity).max(1);
        let n = merged.len();
        let entries: Vec<(f64, u64)> = merged
            .into_iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) % keep_every == 0 || *i + 1 == n)
            .map(|(_, e)| e)
            .collect();
        QuantileSketch { total, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impurity::{Entropy, Gini};

    #[test]
    fn corner_bound_degenerate_box_is_exact() {
        let stamp = [30u64, 10];
        let totals = [50u64, 50];
        let bound = corner_lower_bound(&Gini, &stamp, &stamp, &totals);
        let right = [20u64, 40];
        assert_eq!(bound, split_impurity(&Gini, &stamp, &right));
    }

    #[test]
    fn corner_bound_lower_bounds_interior_points() {
        // Every integer point inside the box scores >= the bound.
        let lo = [5u64, 2, 1];
        let hi = [12u64, 9, 4];
        let totals = [20u64, 15, 10];
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let bound = corner_lower_bound(imp, &lo, &hi, &totals);
            for a in lo[0]..=hi[0] {
                for b in lo[1]..=hi[1] {
                    for c in lo[2]..=hi[2] {
                        let left = [a, b, c];
                        let right = [totals[0] - a, totals[1] - b, totals[2] - c];
                        let v = split_impurity(imp, &left, &right);
                        assert!(
                            v >= bound,
                            "{}: interior {left:?} scored {v} < bound {bound}",
                            imp.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Offsets land in every residue class over a small modulus.
        let mut seen = [false; 8];
        for i in 0..64u64 {
            seen[(splitmix64(i) % 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sketch_rank_error_is_bounded_by_stride() {
        let n = 1000u64;
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let sketch = QuantileSketch::from_sorted(values.iter().copied(), n, 50, 7);
        assert!(sketch.entries().len() <= 52);
        assert!(sketch.rank_error() <= n / 50 + 1);
        for (i, &v) in values.iter().enumerate() {
            let true_rank = i as u64 + 1;
            let got = sketch.rank(v);
            assert!(
                got.abs_diff(true_rank) <= sketch.rank_error(),
                "rank({v}) = {got}, true {true_rank}"
            );
        }
    }

    #[test]
    fn sketch_quantiles_track_the_distribution() {
        let n = 2000u64;
        let values: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let sketch = QuantileSketch::from_sorted(values.iter().copied(), n, 100, 0);
        for q in [0.1, 0.25, 0.5, 0.9] {
            let got = sketch.quantile(q).unwrap();
            let true_idx = ((n as f64 * q).ceil() as usize).clamp(1, n as usize) - 1;
            let true_v = values[true_idx];
            // Within the rank-error band of the true quantile.
            let err = sketch.rank_error() as usize + 1;
            let lo = values[true_idx.saturating_sub(err)];
            let hi = values[(true_idx + err).min(n as usize - 1)];
            assert!(
                (lo..=hi).contains(&got),
                "q={q}: got {got}, true {true_v}, band [{lo}, {hi}]"
            );
        }
        assert_eq!(sketch.quantile(1.0), Some(values[n as usize - 1]));
    }

    #[test]
    fn sketch_merge_errors_add() {
        // Two disjoint shards of one interleaved stream.
        let a: Vec<f64> = (0..500).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| (2 * i + 1) as f64).collect();
        let sa = QuantileSketch::from_sorted(a.iter().copied(), 500, 40, 1);
        let sb = QuantileSketch::from_sorted(b.iter().copied(), 500, 40, 2);
        let merged = sa.merge(&sb, 40);
        assert_eq!(merged.total(), 1000);
        assert!(merged.entries().len() <= 42);
        // Each input has rank error <= ceil(500/40)+1; merged queries stay
        // within the sum plus compression loss.
        let budget = (sa.rank_error() + sb.rank_error() + merged.rank_error()) as i64;
        for v in [0.0f64, 123.0, 499.0, 700.0, 999.0] {
            let true_rank = (v.floor() as i64 + 1).clamp(0, 1000);
            let got = merged.rank(v) as i64;
            assert!(
                (got - true_rank).abs() <= budget,
                "rank({v}) = {got}, true {true_rank}, budget {budget}"
            );
        }
    }

    #[test]
    fn sketch_of_constant_stream_collapses() {
        let sketch = QuantileSketch::from_sorted(std::iter::repeat_n(3.5, 100), 100, 10, 0);
        assert_eq!(sketch.quantile(0.5), Some(3.5));
        assert_eq!(sketch.rank(3.5), 100);
        assert_eq!(sketch.rank(3.4), 0);
    }
}
