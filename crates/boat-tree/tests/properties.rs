//! Property-based tests for the decision-tree substrate: impurity
//! concavity, optimality of the categorical ordering sweep, equivalence of
//! the numeric split fast path, determinism of the builder, and prediction
//! consistency.

use boat_data::{Attribute, Field, Record, Schema};
use boat_tree::split::{best_categorical_split, best_numeric_split, best_numeric_split_from_pairs};
use boat_tree::{
    split_impurity, CatAvc, Entropy, Gini, GrowthLimits, Impurity, ImpuritySelector, NumAvc,
    TdTreeBuilder,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Concavity on the count lattice: for equal-total vectors a, b with
    /// even component sums, imp((a+b)/2) >= (imp(a)+imp(b))/2.
    #[test]
    fn impurities_are_concave(
        a in prop::collection::vec(0u64..500, 2..5),
        b_seed in prop::collection::vec(0u64..500, 2..5),
    ) {
        let k = a.len().min(b_seed.len());
        let a = &a[..k];
        // Force equal totals: scale b to a's total by construction.
        let total_a: u64 = a.iter().sum();
        let total_b: u64 = b_seed[..k].iter().sum();
        prop_assume!(total_a > 0 && total_b > 0);
        // Use 2a and a+b' where b' has the same total as a (via remainder
        // spreading); then midpoint of 2a and 2b' is exact.
        let b: Vec<u64> = {
            let mut b: Vec<u64> =
                b_seed[..k].iter().map(|&x| x * total_a / total_b).collect();
            let diff = total_a as i64 - b.iter().sum::<u64>() as i64;
            b[0] = (b[0] as i64 + diff).max(0) as u64;
            b
        };
        prop_assume!(b.iter().sum::<u64>() == total_a);
        let a2: Vec<u64> = a.iter().map(|&x| 2 * x).collect();
        let b2: Vec<u64> = b.iter().map(|&x| 2 * x).collect();
        let mid: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let lhs = imp.node_impurity(&mid);
            let rhs = 0.5 * imp.node_impurity(&a2) + 0.5 * imp.node_impurity(&b2);
            prop_assert!(
                lhs >= rhs - 1e-9,
                "{} not concave: imp({mid:?})={lhs} < avg(imp({a2:?}), imp({b2:?}))={rhs}",
                imp.name()
            );
        }
    }

    /// The 2-class categorical prefix sweep must match exhaustive search.
    #[test]
    fn categorical_ordering_sweep_is_optimal_for_two_classes(
        counts in prop::collection::vec((0u64..30, 0u64..30), 2..=8),
    ) {
        let card = counts.len() as u32;
        let mut avc = CatAvc::new(card, 2);
        for (cat, &(c0, c1)) in counts.iter().enumerate() {
            for _ in 0..c0 {
                avc.add(cat as u32, 0);
            }
            for _ in 0..c1 {
                avc.add(cat as u32, 1);
            }
        }
        let observed: Vec<u32> = avc.observed().iter().collect();
        prop_assume!(observed.len() >= 2);
        let fast = best_categorical_split(0, &avc, &Gini).unwrap();

        // Exhaustive minimum over all proper subsets of the observed set.
        let totals: Vec<u64> = {
            let mut t = vec![0u64; 2];
            for &c in &observed {
                for (ti, x) in t.iter_mut().zip(avc.counts_for(c)) {
                    *ti += x;
                }
            }
            t
        };
        let n: u64 = totals.iter().sum();
        let mut best = f64::INFINITY;
        for bits in 1..(1u64 << observed.len()) - 1 {
            let mut left = vec![0u64; 2];
            for (i, &c) in observed.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    for (l, x) in left.iter_mut().zip(avc.counts_for(c)) {
                        *l += x;
                    }
                }
            }
            let ln: u64 = left.iter().sum();
            if ln == 0 || ln == n {
                continue;
            }
            let right: Vec<u64> = totals.iter().zip(&left).map(|(t, l)| t - l).collect();
            best = best.min(split_impurity(&Gini, &left, &right));
        }
        prop_assert!(
            (fast.impurity - best).abs() < 1e-12,
            "prefix sweep {} vs exhaustive {best}",
            fast.impurity
        );
    }

    /// The sorted-pairs fast path is bit-identical to the AVC sweep.
    #[test]
    fn numeric_fast_path_equals_avc_path(
        pairs in prop::collection::vec((-100i64..100, 0u16..3), 1..200),
    ) {
        let pairs: Vec<(f64, u16)> = pairs.into_iter().map(|(v, l)| (v as f64, l)).collect();
        let mut avc = NumAvc::new(3);
        let mut totals = vec![0u64; 3];
        for &(v, l) in &pairs {
            avc.add(v, l);
            totals[l as usize] += 1;
        }
        let slow = best_numeric_split(0, &avc, &totals, &Gini);
        let mut p = pairs.clone();
        let fast = best_numeric_split_from_pairs(0, &mut p, &totals, &Gini);
        match (slow, fast) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.split, b.split);
                prop_assert_eq!(a.impurity.to_bits(), b.impurity.to_bits());
                prop_assert_eq!(a.left_counts, b.left_counts);
                prop_assert_eq!(a.right_counts, b.right_counts);
            }
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// The split chosen by the sweep truly minimizes among all candidates
    /// (cross-check against a brute-force evaluation).
    #[test]
    fn numeric_sweep_minimizes(
        pairs in prop::collection::vec((-50i64..50, 0u16..2), 2..120),
    ) {
        let pairs: Vec<(f64, u16)> = pairs.into_iter().map(|(v, l)| (v as f64, l)).collect();
        let mut totals = vec![0u64; 2];
        for &(_, l) in &pairs {
            totals[l as usize] += 1;
        }
        let mut p = pairs.clone();
        let Some(chosen) = best_numeric_split_from_pairs(0, &mut p, &totals, &Gini) else {
            return Ok(());
        };
        let n = pairs.len() as u64;
        let mut values: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        for &x in &values {
            let mut left = vec![0u64; 2];
            for &(v, l) in &pairs {
                if v <= x {
                    left[l as usize] += 1;
                }
            }
            let ln: u64 = left.iter().sum();
            if ln == 0 || ln == n {
                continue;
            }
            let right: Vec<u64> = totals.iter().zip(&left).map(|(t, l)| t - l).collect();
            let imp = split_impurity(&Gini, &left, &right);
            prop_assert!(
                chosen.impurity <= imp + 1e-12,
                "candidate at {x} ({imp}) beats chosen {} ({})",
                match chosen.split.predicate {
                    boat_tree::Predicate::NumLe(v) => v,
                    _ => f64::NAN,
                },
                chosen.impurity
            );
        }
    }

    /// The builder's tree routes every training record to a leaf whose
    /// class counts include it, and the tree is invariant to input order.
    #[test]
    fn builder_is_order_invariant_and_consistent(
        raw in prop::collection::vec((0i64..40, 0u32..3, 0u16..2), 2..150),
        seed in 0u64..50,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let schema =
            Schema::new(vec![Attribute::numeric("x"), Attribute::categorical("c", 3)], 2)
                .unwrap();
        let records: Vec<Record> = raw
            .iter()
            .map(|&(x, c, l)| Record::new(vec![Field::Num(x as f64), Field::Cat(c)], l))
            .collect();
        let selector = ImpuritySelector::new(Gini);
        let builder = TdTreeBuilder::new(&selector, GrowthLimits::default());
        let tree = builder.fit(&schema, &records);

        let mut shuffled = records.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(&builder.fit(&schema, &shuffled), &tree, "order dependence");

        // Leaf counts partition the training set.
        let total_at_leaves: u64 = tree
            .preorder_ids()
            .iter()
            .filter(|&&id| tree.node(id).is_leaf())
            .map(|&id| tree.node(id).n_records())
            .sum();
        prop_assert_eq!(total_at_leaves, records.len() as u64);
        // Every record lands in a leaf that counted its class.
        for r in &records {
            let leaf = tree.node(tree.leaf_for(r));
            prop_assert!(leaf.class_counts[r.label() as usize] > 0);
        }
    }
}
