//! Property tests for the subsample gate's bound math (ISSUE 8 satellite):
//! the corner bound must contain the exact impurity of every candidate it
//! vouches for, and the gate must degrade to the exact sweep on degenerate
//! inputs instead of guessing.

use boat_data::{Attribute, Field, Record, Schema};
use boat_tree::subsample::{
    corner_lower_bound, gated_numeric_split, GateOutcome, SubsampleParams, SubsampleRuntime,
    SubsampleStats,
};
use boat_tree::{
    grow_weighted, grow_weighted_gated, split_impurity, ColumnarSample, Entropy, Gini,
    GrowthLimits, Impurity, ImpuritySelector,
};
use proptest::prelude::*;

fn runtime(
    stats: &SubsampleStats,
    fraction: f64,
    min_node: usize,
    seed: u64,
) -> SubsampleRuntime<'_> {
    SubsampleRuntime {
        params: SubsampleParams { fraction, min_node },
        seed,
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Lemma 3.1 corner bound really is a lower bound: for random
    /// weighted samples, every prefix of the sorted order whose count
    /// vector falls inside a random box scores >= the box's bound.
    #[test]
    fn corner_bound_contains_exact_impurity(
        labeled in prop::collection::vec((0u64..40, 0usize..3, 1u32..4), 20..200),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let k = 3;
        // Sort by value (the sweep order) and build weighted prefixes.
        let mut rows = labeled;
        rows.sort_by_key(|&(v, _, _)| v);
        let mut totals = vec![0u64; k];
        for &(_, label, w) in &rows {
            totals[label] += w as u64;
        }
        let mut prefixes: Vec<Vec<u64>> = Vec::new();
        let mut acc = vec![0u64; k];
        for &(_, label, w) in &rows {
            acc[label] += w as u64;
            prefixes.push(acc.clone());
        }
        // A box spanned by two random prefixes (the gate's gap boxes are
        // exactly this shape: prefix counts at two boundaries).
        let i = ((rows.len() - 1) as f64 * cut_a) as usize;
        let j = ((rows.len() - 1) as f64 * cut_b) as usize;
        let (lo_i, hi_i) = (i.min(j), i.max(j));
        let lo = &prefixes[lo_i];
        let hi = &prefixes[hi_i];
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let bound = corner_lower_bound(imp, lo, hi, &totals);
            for p in &prefixes[lo_i..=hi_i] {
                let right: Vec<u64> = totals.iter().zip(p).map(|(t, l)| t - l).collect();
                let exact = split_impurity(imp, p, &right);
                prop_assert!(
                    exact >= bound,
                    "{}: prefix {p:?} scored {exact} below bound {bound}",
                    imp.name()
                );
            }
        }
    }

    /// End to end: gated growth is identical to ungated growth on random
    /// weighted samples, across fractions (including sub-sample == full
    /// sample, where every pick is a boundary).
    #[test]
    fn gated_tree_equals_exact_tree(
        seed in 0u64..1000,
        fraction_idx in 0usize..4,
        min_node_idx in 0usize..3,
    ) {
        let fraction = [0.01, 0.0625, 0.25, 1.0][fraction_idx];
        let min_node = [2usize, 64, 256][min_node_idx];
        let schema = Schema::new(
            vec![
                Attribute::numeric("x"),
                Attribute::numeric("y"),
                Attribute::categorical("c", 4),
            ],
            2,
        )
        .unwrap();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let records: Vec<Record> = (0..600)
            .map(|_| {
                let x = (next() % 50) as f64 * 0.5;
                let y = (next() % 200) as f64 * 0.25;
                let c = next() % 4;
                let noisy = next() % 10 == 0;
                let label = u16::from((x + 0.3 * y >= 18.0) ^ noisy);
                Record::new(vec![Field::Num(x), Field::Num(y), Field::Cat(c)], label)
            })
            .collect();
        let weights: Vec<u32> = (0..records.len()).map(|_| next() % 3).collect();
        let cs = ColumnarSample::from_records(&schema, &records);
        let sel = ImpuritySelector::new(Gini);
        let exact = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
        let stats = SubsampleStats::default();
        let rt = runtime(&stats, fraction, min_node, seed);
        let gated = grow_weighted_gated(&cs, &weights, &sel, GrowthLimits::default(), Some(&rt));
        prop_assert_eq!(&gated, &exact, "fraction {} min_node {}", fraction, min_node);
        // Debug formatting covers every float bit (counts, impurities live
        // in the nodes) — the trees must be byte-identical, not just Eq.
        prop_assert_eq!(format!("{gated:?}"), format!("{exact:?}"));
    }
}

fn node_inputs(values: &[f64], labels: &[u16], weights: &[u32], k: usize) -> (Vec<u32>, Vec<u64>) {
    let mut list: Vec<u32> = (0..values.len() as u32)
        .filter(|&r| weights[r as usize] > 0)
        .collect();
    list.sort_by(|&a, &b| {
        values[a as usize]
            .total_cmp(&values[b as usize])
            .then_with(|| a.cmp(&b))
    });
    let mut totals = vec![0u64; k];
    for &r in &list {
        totals[labels[r as usize] as usize] += weights[r as usize] as u64;
    }
    (list, totals)
}

#[test]
fn all_equal_column_degrades_to_exact_sweep() {
    // One giant run: fewer than 2 boundaries exist, so the gate must refuse
    // (Fallback) rather than return a bogus candidate.
    let n = 4000;
    let values = vec![7.25f64; n];
    let labels: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
    let weights = vec![1u32; n];
    let (list, totals) = node_inputs(&values, &labels, &weights, 2);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 0.0625, 2, 42);
    let out = gated_numeric_split(
        0, &values, &list, &labels, &weights, &totals, &Gini, &rt, 0, 0, None,
    );
    assert!(matches!(out, GateOutcome::Fallback));
    assert_eq!(stats.snapshot().fallbacks, 1);
    assert_eq!(stats.snapshot().swept, 0);
}

#[test]
fn heavy_ties_blow_the_snap_budget_and_fall_back() {
    // Two giant runs: snapping picks forward crosses half the list, which
    // exhausts the budget — exact sweep territory.
    let n = 4000;
    let values: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 2.0 }).collect();
    let labels: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
    let weights = vec![1u32; n];
    let (list, totals) = node_inputs(&values, &labels, &weights, 2);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 0.0625, 2, 7);
    let out = gated_numeric_split(
        0, &values, &list, &labels, &weights, &totals, &Gini, &rt, 0, 0, None,
    );
    assert!(matches!(out, GateOutcome::Fallback));
    assert_eq!(stats.snapshot().fallbacks, 1);
}

#[test]
fn single_class_node_never_reaches_the_gate() {
    // A pure node is a leaf by `GrowthLimits::must_stop` before selection:
    // the gate never runs, so its counters stay zero.
    let schema = Schema::new(vec![Attribute::numeric("x")], 2).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| Record::new(vec![Field::Num(i as f64)], 1))
        .collect();
    let cs = ColumnarSample::from_records(&schema, &records);
    let sel = ImpuritySelector::new(Gini);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 0.0625, 2, 3);
    let weights = vec![1u32; records.len()];
    let tree = grow_weighted_gated(&cs, &weights, &sel, GrowthLimits::default(), Some(&rt));
    assert_eq!(tree.n_nodes(), 1);
    assert_eq!(stats.snapshot(), Default::default());
}

#[test]
fn tiny_nodes_skip_the_gate_via_min_node() {
    let schema = Schema::new(vec![Attribute::numeric("x")], 2).unwrap();
    let records: Vec<Record> = (0..100)
        .map(|i| Record::new(vec![Field::Num(i as f64)], u16::from(i >= 50)))
        .collect();
    let cs = ColumnarSample::from_records(&schema, &records);
    let sel = ImpuritySelector::new(Gini);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 0.0625, 256, 3);
    let weights = vec![1u32; records.len()];
    let gated = grow_weighted_gated(&cs, &weights, &sel, GrowthLimits::default(), Some(&rt));
    let exact = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
    assert_eq!(gated, exact);
    let snap = stats.snapshot();
    assert_eq!(
        (snap.swept, snap.pruned, snap.fallbacks, snap.exact_points),
        (0, 0, 0, 0),
        "nodes under min_node must not touch the gate"
    );
}

#[test]
fn subsample_equal_to_full_sample_is_exact() {
    // fraction 1.0 forces picks > m/4: the gate refuses every node, the
    // tree is still exact, and every gate entry counts as a fallback.
    let schema = Schema::new(vec![Attribute::numeric("x")], 2).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| Record::new(vec![Field::Num((i % 37) as f64)], u16::from(i % 37 >= 18)))
        .collect();
    let cs = ColumnarSample::from_records(&schema, &records);
    let sel = ImpuritySelector::new(Gini);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 1.0, 2, 9);
    let weights = vec![1u32; records.len()];
    let gated = grow_weighted_gated(&cs, &weights, &sel, GrowthLimits::default(), Some(&rt));
    let exact = grow_weighted(&cs, &weights, &sel, GrowthLimits::default());
    assert_eq!(gated, exact);
    let snap = stats.snapshot();
    assert!(snap.fallbacks > 0);
    assert_eq!(snap.swept, 0);
}

#[test]
fn large_node_actually_prunes() {
    // Sanity that the machinery pays for itself on the shape it targets: a
    // large node with near-unique values and a clear separator must prune
    // most gaps and sweep far fewer points than the full sweep.
    let n = 8000usize;
    let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let labels: Vec<u16> = (0..n).map(|i| u16::from(i >= 4000)).collect();
    let weights = vec![1u32; n];
    let (list, totals) = node_inputs(&values, &labels, &weights, 2);
    let stats = SubsampleStats::default();
    let rt = runtime(&stats, 0.0625, 2, 11);
    let out = gated_numeric_split(
        0, &values, &list, &labels, &weights, &totals, &Gini, &rt, 0, 0, None,
    );
    let GateOutcome::Gated(Some(eval)) = out else {
        panic!("gate must run and find a split");
    };
    // Exact reference over the full sweep.
    let mut pairs: Vec<(f64, u16)> = list
        .iter()
        .map(|&r| (values[r as usize], labels[r as usize]))
        .collect();
    let exact =
        boat_tree::split::best_numeric_split_from_pairs(0, &mut pairs, &totals, &Gini).unwrap();
    assert_eq!(eval.split, exact.split);
    assert_eq!(eval.impurity.to_bits(), exact.impurity.to_bits());
    assert_eq!(eval.left_counts, exact.left_counts);
    let snap = stats.snapshot();
    assert!(
        snap.pruned > 400,
        "clear separator must prune most gaps: {snap:?}"
    );
    assert!(
        snap.swept + snap.exact_points < n as u64 / 4,
        "should evaluate far fewer than the {n} distinct values: {snap:?}"
    );
}
