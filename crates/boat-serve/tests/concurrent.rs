//! Maintain-while-serving: the serving invariant under real concurrency.
//!
//! While `BoatModel::maintain` runs on one thread and publishes through a
//! [`ModelHandle`], reader threads must only ever observe the
//! **pre-maintenance** or the **post-maintenance** compiled tree — never a
//! torn mix — and the post-swap tree must equal a fresh single-threaded
//! rebuild on the net training data.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::{MemoryDataset, Record, Schema};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_serve::{
    compile, publish_on_maintain, ModelHandle, RecordBlock, ServeConfig, ServeEngine,
};
use boat_tree::{Gini, GrowthLimits};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config(seed: u64) -> BoatConfig {
    BoatConfig {
        sample_size: 1_000,
        bootstrap_reps: 8,
        bootstrap_sample_size: 400,
        in_memory_threshold: 300,
        spill_budget: 32,
        seed,
        ..BoatConfig::default()
    }
}

fn mem(schema: &Arc<Schema>, records: Vec<Record>) -> MemoryDataset {
    MemoryDataset::new(schema.clone(), records)
}

/// Predict every probe against one snapshot; the resulting vector is the
/// snapshot's "fingerprint" for torn-state detection.
fn fingerprint(tree: &boat_serve::CompiledTree, schema: &Schema, probes: &[Record]) -> Vec<u16> {
    tree.predict_batch(&RecordBlock::from_records(schema, probes))
}

/// Readers hammering `snapshot_with_epoch` while maintenance publishes:
/// every `(epoch, fingerprint)` pair a reader observes must be exactly
/// the pre- or the post-maintenance pair — epochs and predictions must
/// never cross.
#[test]
fn readers_observe_only_pre_or_post_maintenance_trees() {
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(91);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let probes = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(92)
        .generate_vec(512);

    let algo = Boat::new(config(9100));
    let (mut model, _) = algo
        .fit_model(&mem(&schema, all[..5_000].to_vec()))
        .unwrap();
    let handle = ModelHandle::new(compile(&boat_tree::Tree::leaf(vec![1, 0])));
    let epoch0 = publish_on_maintain(&mut model, &handle).unwrap();
    // publish_on_maintain publishes the initial tree on top of the
    // placeholder, so readers start at epoch 1.
    assert_eq!(epoch0, 1);

    let pre = fingerprint(&handle.snapshot(), &schema, &probes);

    // Stream the update in *before* starting readers (absorption mutates
    // the model single-threadedly); maintenance — the phase the paper
    // overlaps with serving — runs while readers spin.
    model.insert(&mem(&schema, all[5_000..].to_vec())).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut observations: Vec<Vec<(u64, Vec<u16>)>> = Vec::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let schema = &schema;
            let probes = &probes;
            joins.push(s.spawn(move || {
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let (snap, epoch) = handle.snapshot_with_epoch();
                    seen.push((epoch, fingerprint(&snap, schema, probes)));
                }
                seen
            }));
        }
        model.maintain().unwrap();
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            observations.push(j.join().unwrap());
        }
    });

    assert_eq!(handle.epoch(), 2, "maintain must have published once");
    let post = fingerprint(&handle.snapshot(), &schema, &probes);
    let mut n_obs = 0usize;
    for (epoch, fp) in observations.into_iter().flatten() {
        n_obs += 1;
        match epoch {
            1 => assert_eq!(fp, pre, "epoch-1 reader saw non-pre predictions"),
            2 => assert_eq!(fp, post, "epoch-2 reader saw non-post predictions"),
            e => panic!("reader observed impossible epoch {e}"),
        }
    }
    assert!(n_obs > 0, "readers never observed a snapshot");
}

/// The post-swap snapshot equals a fresh single-threaded rebuild on the
/// net data, bit-for-bit (compiled tables compared byte-wise).
#[test]
fn post_swap_snapshot_equals_fresh_rebuild() {
    let gen = GeneratorConfig::new(LabelFunction::F6).with_seed(93);
    let schema = gen.schema();
    let all = gen.generate_vec(7_000);

    let algo = Boat::new(config(9300));
    let (mut model, _) = algo
        .fit_model(&mem(&schema, all[..4_000].to_vec()))
        .unwrap();
    let handle = ModelHandle::new(compile(&boat_tree::Tree::leaf(vec![1, 0])));
    publish_on_maintain(&mut model, &handle).unwrap();

    model.insert(&mem(&schema, all[4_000..].to_vec())).unwrap();
    model.delete(&mem(&schema, all[..1_500].to_vec())).unwrap();
    model.maintain().unwrap();

    let rebuilt = reference_tree(
        &mem(&schema, all[1_500..].to_vec()),
        Gini,
        GrowthLimits::default(),
    )
    .unwrap();
    assert_eq!(
        handle.snapshot().table_bytes(),
        compile(&rebuilt).table_bytes(),
        "published snapshot diverges from a fresh rebuild"
    );
}

/// End-to-end through the [`ServeEngine`]: score batches from several
/// producer threads while maintenance swaps the model underneath. Every
/// returned batch must match the pre- or the post-maintenance tree *in
/// its entirety*, as identified by the epoch the worker scored under.
#[test]
fn serve_engine_batches_are_never_torn_across_a_swap() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(94);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);

    let algo = Boat::new(config(9400));
    let (mut model, _) = algo
        .fit_model(&mem(&schema, all[..5_000].to_vec()))
        .unwrap();
    let handle = ModelHandle::new(compile(&boat_tree::Tree::leaf(vec![1, 0])));
    publish_on_maintain(&mut model, &handle).unwrap();

    let probes = GeneratorConfig::new(LabelFunction::F2)
        .with_seed(95)
        .generate_vec(2_048);
    let pre_tree = handle.snapshot();

    model.insert(&mem(&schema, all[5_000..].to_vec())).unwrap();

    let engine = ServeEngine::start(
        handle.clone(),
        schema.clone(),
        ServeConfig {
            workers: 3,
            queue_depth: 8,
        },
    );

    // Producers submit micro-batches while the maintainer publishes.
    let mut results: Vec<(Vec<Record>, Vec<u16>, u64)> = Vec::new();
    std::thread::scope(|s| {
        let maintainer = s.spawn(|| {
            model.maintain().unwrap();
            model
        });
        for round in 0..40 {
            let batch: Vec<Record> = probes[(round * 32) % 1024..][..64].to_vec();
            let ticket = engine.submit(batch.clone()).unwrap();
            let (preds, epoch) = ticket.wait_with_epoch();
            results.push((batch, preds, epoch));
        }
        maintainer.join().unwrap()
    });
    engine.shutdown();

    assert_eq!(handle.epoch(), 2);
    let post_tree = handle.snapshot();
    for (batch, preds, epoch) in results {
        let expect_tree = match epoch {
            1 => &pre_tree,
            2 => &post_tree,
            e => panic!("batch scored under impossible epoch {e}"),
        };
        let expected = fingerprint(expect_tree, &schema, &batch);
        assert_eq!(preds, expected, "batch scored under epoch {epoch} is torn");
    }
}
