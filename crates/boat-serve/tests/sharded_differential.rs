//! Differential oracle for the **sharded serve engine**: predictions
//! that flow through submit → shard ring → worker → snapshot reader →
//! columnar batch scorer must be byte-identical to compiled scalar
//! `CompiledTree::predict` and to interpreted `Tree::predict`, for
//! random schemas (NaN/±inf numerics, unseen category codes), random
//! batch shapes, and every worker count the battery exercises.

use boat_core::reference_tree;
use boat_data::{AttrType, Attribute, Field, MemoryDataset, Record, Schema};
use boat_serve::{compile, ModelHandle, ServeConfig, ServeEngine, Ticket};
use boat_tree::{Gini, GrowthLimits};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a record conforming to `schema` from one numeric value, one raw
/// category code, and a label; `cat_mod` bounds the codes actually used.
fn record_for(schema: &Schema, x: f64, c: u32, label: u16, cat_mod: u32) -> Record {
    let fields: Vec<Field> = schema
        .attributes()
        .iter()
        .map(|a| match a.ty() {
            AttrType::Numeric => Field::Num(x),
            AttrType::Categorical { cardinality } => Field::Cat(c % cat_mod.min(cardinality)),
        })
        .collect();
    Record::new(fields, label)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random schema, training data, probes, batch shapes, and worker
    /// count: engine output == compiled scalar == interpreted tree.
    #[test]
    fn engine_matches_scalar_and_interpreted(
        kinds in prop::collection::vec(
            prop_oneof![Just(None), (3u32..=8).prop_map(Some)],
            1..=4,
        ),
        classes in 2u16..=4,
        seen in 2u32..=3,
        train in prop::collection::vec((0i64..24, 0u32..8, 0u16..4), 20..200),
        probes in prop::collection::vec((-40i64..40, 0u32..8, 0u8..4), 1..160),
        sizes in prop::collection::vec(0usize..48, 1..6),
        workers in 1usize..=4,
        depth in 2u32..=6,
    ) {
        let attrs: Vec<Attribute> = kinds
            .iter()
            .enumerate()
            .map(|(i, card)| match card {
                None => Attribute::numeric(format!("n{i}")),
                Some(c) => Attribute::categorical(format!("c{i}"), *c),
            })
            .collect();
        let schema = Schema::shared(attrs, classes).unwrap();
        let records: Vec<Record> = train
            .iter()
            .map(|&(x, c, l)| record_for(&schema, x as f64, c, l % classes, seen))
            .collect();
        let ds = MemoryDataset::new(schema.clone(), records);
        let limits = GrowthLimits { max_depth: Some(depth), ..GrowthLimits::default() };
        let tree = reference_tree(&ds, Gini, limits).unwrap();
        let compiled = compile(&tree);

        // Probes range over the whole declared category universe
        // (training only saw codes mod `seen`) and cycle NaN/±inf
        // through the numerics.
        let probe_records: Arc<Vec<Record>> = Arc::new(
            probes
                .iter()
                .enumerate()
                .map(|(i, &(x, c, edge))| {
                    let v = match edge {
                        0 => x as f64 + 0.5,
                        1 => f64::NAN,
                        2 => f64::NEG_INFINITY,
                        _ => f64::INFINITY,
                    };
                    record_for(&schema, v, c, (i % classes as usize) as u16, u32::MAX)
                })
                .collect(),
        );

        let oracle: Vec<u16> = probe_records.iter().map(|r| tree.predict(r)).collect();
        let scalar: Vec<u16> = probe_records.iter().map(|r| compiled.predict(r)).collect();
        prop_assert_eq!(&scalar, &oracle, "compiled scalar diverges from interpreted");

        let engine = ServeEngine::start(
            ModelHandle::new(compiled),
            schema.clone(),
            ServeConfig { workers, queue_depth: 8 },
        );
        // Submit both owned batches and zero-copy shared ranges; the
        // concatenated ticket results must reproduce the oracle exactly.
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut start = 0usize;
        let mut i = 0usize;
        while start < probe_records.len() {
            let take = (1 + sizes[i % sizes.len()]).min(probe_records.len() - start);
            if i.is_multiple_of(2) {
                tickets.push(
                    engine
                        .submit_shared(Arc::clone(&probe_records), start..start + take)
                        .unwrap(),
                );
            } else {
                tickets.push(engine.submit(probe_records[start..start + take].to_vec()).unwrap());
            }
            start += take;
            i += 1;
        }
        let mut served: Vec<u16> = Vec::with_capacity(oracle.len());
        for t in tickets {
            served.extend(t.wait());
        }
        engine.shutdown();
        prop_assert_eq!(&served, &oracle, "sharded engine diverges from interpreted");
    }
}
