//! Stress battery: maintain-while-serving across worker counts, with a
//! randomized publish cadence driven by *completed batches* (no sleeps
//! anywhere — every wait in this file is a condvar ticket wait, an
//! epoch/counter observation, or a yield loop on one).
//!
//! The model family is constructed so the battery's assertions are
//! airtight: the tree published at epoch `e` labels `x <= 5` rows as
//! class `e % 8` and the rest as `(e + 3) % 8`, so a batch's reported
//! epoch fully determines every expected label. That turns the three
//! serving invariants into exact checks:
//!
//! * **(a) no torn batches** — every label in a batch must match the
//!   single epoch the ticket reports; one record scored against a
//!   different snapshot is an immediate mismatch.
//! * **(b) monotone epochs per ticket** — a producer that submits ticket
//!   B after ticket A resolved must never observe B's epoch below A's.
//! * **(c) publication exactness** — any `(snapshot, epoch)` pair read
//!   concurrently from the handle must be byte-identical
//!   ([`CompiledTree::table_bytes`]) to a fresh `compile` of that
//!   epoch's source tree.
//!
//! Scaled up by the `BOAT_SERVE_SOAK` env var for CI's multi-vCPU
//! soak job.

use boat_data::{Attribute, Field, Record, Schema};
use boat_serve::{compile, ModelHandle, ServeConfig, ServeEngine};
use boat_tree::{Predicate, Split, Tree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N_CLASSES: u16 = 8;

/// The epoch-`e` model: `x <= 5` → class `e % 8`, else `(e + 3) % 8`.
fn tree_for(e: u64) -> Tree {
    let left = (e % u64::from(N_CLASSES)) as usize;
    let right = ((e + 3) % u64::from(N_CLASSES)) as usize;
    let one_hot = |class: usize| {
        let mut counts = vec![0u64; N_CLASSES as usize];
        counts[class] = 1;
        counts
    };
    let mut root = vec![1u64; N_CLASSES as usize];
    root[left] += 1; // deterministic majority, irrelevant post-split
    let mut t = Tree::leaf(root);
    t.split_node(
        t.root(),
        Split {
            attr: 0,
            predicate: Predicate::NumLe(5.0),
        },
        one_hot(left),
        one_hot(right),
    );
    t
}

/// The label the epoch-`e` model must produce for `x` — same IEEE `<=`
/// as the tree itself (NaN and `+inf` fail the predicate and go right).
fn expected(e: u64, x: f64) -> u16 {
    if x <= 5.0 {
        (e % u64::from(N_CLASSES)) as u16
    } else {
        ((e + 3) % u64::from(N_CLASSES)) as u16
    }
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Attribute::numeric("x")], N_CLASSES).unwrap())
}

/// Deterministic split-mix style generator; no external crates, no
/// wall-clock seeding (runs must be reproducible).
fn rng_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51afd7ed558ccd);
    z ^ (z >> 33)
}

/// A probe value: mostly finite around the split point, with NaN and
/// ±inf mixed in so edge routing stays under concurrent fire.
fn probe_x(state: &mut u64) -> f64 {
    match rng_next(state) % 16 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        r => (r % 11) as f64,
    }
}

struct BatteryScale {
    publishes: u64,
    batches_per_producer: usize,
}

fn scale() -> BatteryScale {
    if std::env::var("BOAT_SERVE_SOAK").is_ok_and(|v| !v.is_empty() && v != "0") {
        BatteryScale {
            publishes: 300,
            batches_per_producer: 3_000,
        }
    } else {
        BatteryScale {
            publishes: 30,
            batches_per_producer: 200,
        }
    }
}

/// Run the battery at one worker count.
fn run_battery(workers: usize) {
    let BatteryScale {
        publishes,
        batches_per_producer,
    } = scale();
    const PRODUCERS: usize = 2;

    // Precompute every epoch's expected compiled bytes for check (c).
    let expected_bytes: Vec<Vec<u8>> = (0..=publishes)
        .map(|e| compile(&tree_for(e)).table_bytes())
        .collect();

    let handle = ModelHandle::new(compile(&tree_for(0)));
    let engine = ServeEngine::start(
        handle.clone(),
        schema(),
        ServeConfig {
            workers,
            queue_depth: 32,
        },
    );
    let batches_done = handle.metrics().counter("serve.batches");
    let producers_done = AtomicBool::new(false);
    let checker_stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Publisher: swap in epoch e after a pseudo-random number of
        // *completed* batches — cadence is event-driven, and once the
        // producers finish, the remaining epochs publish immediately so
        // every run ends at the same final epoch.
        let publisher = {
            let handle = handle.clone();
            let batches_done = batches_done.clone();
            let producers_done = &producers_done;
            s.spawn(move || {
                let mut rng = 0x5eed_0000 + workers as u64;
                let mut threshold = 0u64;
                for e in 1..=publishes {
                    threshold += 1 + rng_next(&mut rng) % 7;
                    while batches_done.get() < threshold && !producers_done.load(Ordering::Acquire)
                    {
                        std::thread::yield_now();
                    }
                    let published = handle.publish(compile(&tree_for(e)));
                    assert_eq!(published, e, "publisher epochs must be dense");
                }
            })
        };

        // Checker: any (snapshot, epoch) pair read mid-flight must be
        // byte-identical to a fresh compile of that epoch's tree.
        let checker = {
            let handle = handle.clone();
            let checker_stop = &checker_stop;
            let expected_bytes = &expected_bytes;
            s.spawn(move || {
                let mut observed = 0u64;
                while !checker_stop.load(Ordering::Acquire) {
                    let (snap, e) = handle.snapshot_with_epoch();
                    assert_eq!(
                        snap.table_bytes(),
                        expected_bytes[e as usize],
                        "epoch-{e} snapshot diverges from compile(fresh rebuild)"
                    );
                    observed += 1;
                }
                observed
            })
        };

        let mut producer_joins = Vec::new();
        for p in 0..PRODUCERS {
            let engine = &engine;
            producer_joins.push(s.spawn(move || {
                let mut rng = 0xabcd_ef00 + (workers * 31 + p) as u64;
                let mut last_epoch = 0u64;
                for _ in 0..batches_per_producer {
                    let size = 1 + (rng_next(&mut rng) % 40) as usize;
                    let xs: Vec<f64> = (0..size).map(|_| probe_x(&mut rng)).collect();
                    let records: Vec<Record> = xs
                        .iter()
                        .map(|&x| Record::new(vec![Field::Num(x)], 0))
                        .collect();
                    let (labels, epoch) = engine.submit(records).unwrap().wait_with_epoch();
                    // (b) Monotone epochs per ticket stream.
                    assert!(
                        epoch >= last_epoch,
                        "producer {p}: ticket epoch went backwards ({epoch} < {last_epoch})"
                    );
                    assert!(epoch <= publishes, "impossible epoch {epoch}");
                    last_epoch = epoch;
                    // (a) No torn batch: every label must agree with the
                    // single epoch the ticket reports.
                    assert_eq!(labels.len(), xs.len());
                    for (i, (&x, &label)) in xs.iter().zip(&labels).enumerate() {
                        assert_eq!(
                            label,
                            expected(epoch, x),
                            "torn batch: row {i} (x={x}) disagrees with epoch {epoch}"
                        );
                    }
                }
            }));
        }
        for j in producer_joins {
            j.join().unwrap();
        }
        producers_done.store(true, Ordering::Release);
        publisher.join().unwrap();
        checker_stop.store(true, Ordering::Release);
        let observed = checker.join().unwrap();
        assert!(observed > 0, "checker never observed a snapshot");
    });

    // Drain and verify the queue-depth gauges return to zero.
    engine.drain();
    assert_eq!(engine.queue_depth(), 0, "rings not empty after drain");
    let snap = handle.metrics().snapshot();
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
    assert_eq!(snap.gauge("serve.shard.depth_max"), Some(0));

    // Terminal state: the last published epoch, byte-exact.
    let (final_tree, final_epoch) = handle.snapshot_with_epoch();
    assert_eq!(final_epoch, publishes);
    assert_eq!(final_tree.table_bytes(), expected_bytes[publishes as usize]);
    engine.shutdown();
}

#[test]
fn battery_one_worker() {
    run_battery(1);
}

#[test]
fn battery_two_workers() {
    run_battery(2);
}

#[test]
fn battery_four_workers() {
    run_battery(4);
}

#[test]
fn battery_eight_workers() {
    run_battery(8);
}

/// Drain never drops an accepted ticket, even when shutdown races the
/// submissions: every ticket whose submit returned `Ok` must resolve.
#[test]
fn accepted_tickets_always_resolve_across_shutdown() {
    let handle = ModelHandle::new(compile(&tree_for(0)));
    let engine = Arc::new(ServeEngine::start(
        handle,
        schema(),
        ServeConfig {
            workers: 2,
            queue_depth: 4,
        },
    ));
    let accepted: Vec<_> = std::thread::scope(|s| {
        let submitter = {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..10_000u64 {
                    match engine.submit(vec![Record::new(vec![Field::Num((i % 9) as f64)], 0)]) {
                        Ok(t) => tickets.push((i, t)),
                        Err(_) => break, // engine closed underneath us
                    }
                }
                tickets
            })
        };
        // Shut down mid-stream: the submitter keeps going until it sees
        // the closed error; everything accepted before that must score.
        let engine2 = Arc::clone(&engine);
        s.spawn(move || engine2.shutdown());
        submitter.join().unwrap()
    });
    for (i, ticket) in accepted {
        let (labels, _) = ticket.wait_with_epoch();
        assert_eq!(
            labels,
            vec![expected(0, (i % 9) as f64)],
            "ticket {i} dropped or wrong"
        );
    }
    assert_eq!(engine.queue_depth(), 0);
}
