//! Differential oracle: `CompiledTree` must replicate `Tree::predict`
//! **exactly** — for every record, on every tree the workspace can grow,
//! including the pinned prediction-time contract's edge inputs (NaN and
//! ±infinity numerics, unseen category codes).
//!
//! Two layers of evidence:
//! 1. a property over randomized schemas / datasets / growth seeds, where
//!    probe records deliberately range over the *whole* declared category
//!    universe (training only ever sees a subset, so splits route codes
//!    they never observed) and inject NaN/±inf numerics;
//! 2. a deterministic grid over the paper's synthetic label functions at
//!    realistic tree sizes.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::{AttrType, Attribute, Field, MemoryDataset, Record, Schema};
use boat_serve::{compile, RecordBlock};
use boat_tree::{Gini, GrowthLimits};
use proptest::prelude::*;
use std::sync::Arc;

/// Assert compiled == interpreted on every probe, both per-record and
/// through the columnar batch path.
fn assert_exact(tree: &boat_tree::Tree, schema: &Schema, probes: &[Record]) {
    let compiled = compile(tree);
    let scalar: Vec<u16> = probes.iter().map(|r| compiled.predict(r)).collect();
    let oracle: Vec<u16> = probes.iter().map(|r| tree.predict(r)).collect();
    assert_eq!(scalar, oracle, "scalar compiled predictions diverge");
    let block = RecordBlock::from_records(schema, probes);
    assert_eq!(
        compiled.predict_batch(&block),
        oracle,
        "batched compiled predictions diverge"
    );
}

/// Build a record conforming to `schema` from one numeric value, one raw
/// category code, and a label; `cat_mod` bounds the codes actually used.
fn record_for(schema: &Schema, x: f64, c: u32, label: u16, cat_mod: u32) -> Record {
    let fields: Vec<Field> = schema
        .attributes()
        .iter()
        .map(|a| match a.ty() {
            AttrType::Numeric => Field::Num(x),
            AttrType::Categorical { cardinality } => Field::Cat(c % cat_mod.min(cardinality)),
        })
        .collect();
    Record::new(fields, label)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random schema, random training data, random probes — including
    /// probes whose category codes were *never observed during training*
    /// (training codes are reduced mod `seen`, probes range over the whole
    /// declared cardinality) and probes with NaN / ±inf numerics.
    #[test]
    fn compiled_matches_interpreted_on_random_trees(
        kinds in prop::collection::vec(
            prop_oneof![Just(None), (3u32..=8).prop_map(Some)],
            1..=4,
        ),
        classes in 2u16..=4,
        seen in 2u32..=3,
        train in prop::collection::vec((0i64..24, 0u32..8, 0u16..4), 20..300),
        probes in prop::collection::vec((-40i64..40, 0u32..8, 0u8..4), 1..120),
        depth in 2u32..=6,
    ) {
        let attrs: Vec<Attribute> = kinds
            .iter()
            .enumerate()
            .map(|(i, card)| match card {
                None => Attribute::numeric(format!("n{i}")),
                Some(c) => Attribute::categorical(format!("c{i}"), *c),
            })
            .collect();
        let schema = Schema::shared(attrs, classes).unwrap();
        let records: Vec<Record> = train
            .iter()
            .map(|&(x, c, l)| record_for(&schema, x as f64, c, l % classes, seen))
            .collect();
        let ds = MemoryDataset::new(schema.clone(), records);
        let limits = GrowthLimits { max_depth: Some(depth), ..GrowthLimits::default() };
        let tree = reference_tree(&ds, Gini, limits).unwrap();

        let probe_records: Vec<Record> = probes
            .iter()
            .enumerate()
            .map(|(i, &(x, c, edge))| {
                // Cycle NaN and ±inf through the numeric probes.
                let v = match edge {
                    0 => x as f64 + 0.5,
                    1 => f64::NAN,
                    2 => f64::NEG_INFINITY,
                    _ => f64::INFINITY,
                };
                record_for(&schema, v, c, (i % classes as usize) as u16, u32::MAX)
            })
            .collect();
        assert_exact(&tree, &schema, &probe_records);
    }
}

/// Deterministic grid over the paper's synthetic functions: realistic
/// trees (hundreds of nodes), fresh probe sets from a different seed.
#[test]
fn compiled_matches_interpreted_on_synthetic_grid() {
    use boat_datagen::{GeneratorConfig, LabelFunction};
    for (function, seed) in [
        (LabelFunction::F1, 71u64),
        (LabelFunction::F2, 72),
        (LabelFunction::F6, 76),
        (LabelFunction::F7, 77),
    ] {
        let gen = GeneratorConfig::new(function).with_seed(seed);
        let schema = gen.schema();
        let ds = MemoryDataset::new(schema.clone(), gen.generate_vec(3_000));
        let tree = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
        assert!(tree.n_nodes() > 1, "{function:?}: tree did not split");
        let probes = GeneratorConfig::new(function)
            .with_seed(seed + 1000)
            .generate_vec(2_000);
        assert_exact(&tree, &schema, &probes);
    }
}

/// The full BOAT pipeline (not just the in-memory reference builder)
/// feeds the compiler the same way `publish_on_maintain` does; compiled
/// output must match the interpreted tree it was lowered from.
#[test]
fn compiled_matches_interpreted_through_boat_fit_model() {
    use boat_datagen::{GeneratorConfig, LabelFunction};
    let gen = GeneratorConfig::new(LabelFunction::F1).with_seed(81);
    let schema = gen.schema();
    let ds = MemoryDataset::new(schema.clone(), gen.generate_vec(4_000));
    let algo = Boat::new(BoatConfig {
        sample_size: 1_000,
        bootstrap_reps: 8,
        bootstrap_sample_size: 400,
        in_memory_threshold: 300,
        spill_budget: 32,
        seed: 810,
        ..BoatConfig::default()
    });
    let (mut model, _) = algo.fit_model(&ds).unwrap();
    let tree = model.tree().unwrap().clone();
    let probes = GeneratorConfig::new(LabelFunction::F1)
        .with_seed(82)
        .generate_vec(2_000);
    assert_exact(&tree, &schema, &probes);
}

/// Batch scoring must agree with scalar scoring on pathological batch
/// shapes: empty, single-row, and a batch where every row reaches the
/// same leaf.
#[test]
fn batch_edge_shapes_match_scalar() {
    let schema: Arc<Schema> = Schema::shared(
        vec![Attribute::numeric("x"), Attribute::categorical("c", 8)],
        2,
    )
    .unwrap();
    let records: Vec<Record> = (0..200)
        .map(|i| {
            Record::new(
                vec![Field::Num((i % 17) as f64), Field::Cat(i % 3)],
                u16::from(i % 17 >= 8),
            )
        })
        .collect();
    let ds = MemoryDataset::new(schema.clone(), records);
    let tree = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    let compiled = compile(&tree);

    // Empty batch.
    let empty = RecordBlock::from_records(&schema, &[]);
    assert_eq!(compiled.predict_batch(&empty), Vec::<u16>::new());

    // Single row.
    let one = vec![Record::new(vec![Field::Num(3.0), Field::Cat(7)], 0)];
    assert_exact(&tree, &schema, &one);

    // Degenerate batch: all rows identical (one frontier partition side
    // is empty at every split).
    let same: Vec<Record> = (0..64)
        .map(|_| Record::new(vec![Field::Num(12.0), Field::Cat(1)], 0))
        .collect();
    assert_exact(&tree, &schema, &same);
}
