//! Model-IO regression for the compiler: a tree that takes a round trip
//! through the `BOATTREE` wire format must compile to **byte-identical**
//! node tables — and to the **same Merkle commitment**. This pins three
//! things at once — the serializer loses no information the compiler
//! consumes (split attributes, bit-exact thresholds, category subsets,
//! class counts), the compiler is a pure function of the logical tree,
//! not of incidental arena layout, and the model commitment is stable
//! across storage round trips (an auditor can recompute it from the
//! serialized model alone).

use boat_core::reference_tree;
use boat_data::{Attribute, Field, MemoryDataset, Record, Schema};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_serve::{compile, tree_commit};
use boat_tree::{Gini, GrowthLimits, Tree};
use proptest::prelude::*;

fn assert_roundtrip_compiles_identically(tree: &Tree) {
    let original = compile(tree);
    let revived = Tree::from_bytes(&tree.to_bytes()).expect("roundtrip");
    let recompiled = compile(&revived);
    assert_eq!(
        original.table_bytes(),
        recompiled.table_bytes(),
        "serialize → deserialize → compile changed the node tables"
    );
    assert_eq!(original.n_nodes(), recompiled.n_nodes());
    assert_eq!(
        tree_commit(&original).unwrap().root(),
        tree_commit(&recompiled).unwrap().root(),
        "serialize → deserialize → recompile changed the model commitment"
    );
}

/// Realistic trees from the paper's synthetic functions, including
/// NaN-free numeric splits with fractional midpoints and categorical
/// subset splits.
#[test]
fn synthetic_trees_compile_identically_after_roundtrip() {
    for (function, seed) in [
        (LabelFunction::F1, 61u64),
        (LabelFunction::F6, 66),
        (LabelFunction::F9, 69),
    ] {
        let gen = GeneratorConfig::new(function).with_seed(seed);
        let ds = MemoryDataset::new(gen.schema(), gen.generate_vec(3_000));
        let tree = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
        assert_roundtrip_compiles_identically(&tree);
    }
}

/// A single leaf (smallest legal tree) survives the roundtrip too.
#[test]
fn leaf_tree_compiles_identically_after_roundtrip() {
    assert_roundtrip_compiles_identically(&Tree::leaf(vec![3, 0, 7]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary discrete datasets (ties, degenerate splits, tiny
    /// families) — the roundtrip-compile identity must hold for every
    /// tree the reference builder can produce.
    #[test]
    fn random_trees_compile_identically_after_roundtrip(
        raw in prop::collection::vec((0i64..20, 0u32..5, 0u16..3), 5..250),
        depth in 1u32..=6,
    ) {
        let schema = Schema::shared(
            vec![
                Attribute::numeric("x"),
                Attribute::categorical("c", 5),
                Attribute::numeric("y"),
            ],
            3,
        )
        .unwrap();
        let records: Vec<Record> = raw
            .iter()
            .map(|&(x, c, l)| {
                Record::new(
                    vec![
                        Field::Num(x as f64),
                        Field::Cat(c),
                        Field::Num((x % 7) as f64),
                    ],
                    l,
                )
            })
            .collect();
        let ds = MemoryDataset::new(schema, records);
        let limits = GrowthLimits { max_depth: Some(depth), ..GrowthLimits::default() };
        let tree = reference_tree(&ds, Gini, limits).unwrap();
        assert_roundtrip_compiles_identically(&tree);
    }
}
