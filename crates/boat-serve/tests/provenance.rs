//! Provenance invariant battery over realistic fitted models — the
//! acc-tree-style exhaustive walk for the Merkle layer:
//!
//! * **Subtree-hash invariant**: every node's committed hash recomputes
//!   from first principles (`sha256` over the documented leaf/internal
//!   message formats) — the commit structure holds at *every* node, not
//!   just the root.
//! * **Tamper battery**: perturbing any single node record changes the
//!   root; flipping any byte of any serialized proof makes verification
//!   fail (no false accepts), while every untampered proof verifies (no
//!   false rejects).
//! * **Prove/predict differential**: the Merkle prover routes every
//!   record — NaN and unseen-category edge cases included — to exactly
//!   the label `CompiledTree::predict` returns.
//! * **Incremental recommit oracle**: after real insert + maintain
//!   cycles, `tree_commit_reusing` reproduces the from-scratch root bit
//!   for bit while reusing unchanged subtree hashes.

use boat_core::{reference_tree, Boat, BoatConfig};
use boat_data::{Field, MemoryDataset, Record};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_proof::{
    sha256, verify_prediction, NodeRecord, ProofError, TreeCommit, TreeCommitBuilder,
};
use boat_serve::{compile, record_values, tree_commit, tree_commit_reusing, CompiledTree};
use boat_tree::{Gini, GrowthLimits};

fn fitted_compiled(function: LabelFunction, seed: u64, n: usize) -> (CompiledTree, Vec<Record>) {
    let gen = GeneratorConfig::new(function).with_seed(seed);
    let records = gen.generate_vec(n);
    let ds = MemoryDataset::new(gen.schema(), records.clone());
    let tree = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
    (compile(&tree), records)
}

/// Recompute one node's hash from first principles: the documented
/// message formats (`0x00 ‖ record` for leaves, `0x01 ‖ record ‖ left ‖
/// right` for internal nodes) fed to the plain streaming `sha256` — no
/// shared code with the commit builder's direct block construction.
fn independent_hash(commit: &TreeCommit, i: usize) -> boat_proof::Hash256 {
    let record = commit.record(i).to_bytes();
    match commit.right_child(i) {
        None => {
            let mut msg = vec![0x00u8];
            msg.extend_from_slice(&record);
            sha256(&msg)
        }
        Some(right) => {
            let mut msg = vec![0x01u8];
            msg.extend_from_slice(&record);
            msg.extend_from_slice(independent_hash(commit, i + 1).as_bytes());
            msg.extend_from_slice(independent_hash(commit, right as usize).as_bytes());
            sha256(&msg)
        }
    }
}

/// Every node's committed subtree hash must equal the independent
/// recursive recompute — over realistic trees from three of the paper's
/// synthetic functions.
#[test]
fn subtree_hash_invariant_holds_at_every_node() {
    for (function, seed) in [
        (LabelFunction::F1, 71u64),
        (LabelFunction::F6, 76),
        (LabelFunction::F9, 79),
    ] {
        let (compiled, _) = fitted_compiled(function, seed, 3_000);
        let commit = tree_commit(&compiled).unwrap();
        assert_eq!(commit.n_nodes(), compiled.n_nodes());
        assert!(commit.n_nodes() > 1, "fit must produce a real tree");
        for i in 0..commit.n_nodes() {
            assert_eq!(
                commit.subtree_hash(i),
                independent_hash(&commit, i),
                "node {i} hash does not recompute independently"
            );
        }
        assert_eq!(commit.root(), commit.subtree_hash(0));
    }
}

/// Rebuild the commit with node `i`'s record perturbed by `mutate`.
fn rebuild_with_mutation(
    commit: &TreeCommit,
    target: usize,
    mutate: impl Fn(NodeRecord) -> NodeRecord,
) -> Result<TreeCommit, ProofError> {
    let n = commit.n_nodes();
    let mut b = TreeCommitBuilder::with_capacity(n);
    for i in 0..n {
        let mut rec = commit.record(i);
        if i == target {
            rec = mutate(rec);
        }
        match commit.right_child(i) {
            None => b.push_leaf(rec.label),
            Some(right) => {
                if rec.op == 1 {
                    b.push_num(rec.attr, rec.operand, right);
                } else {
                    b.push_cat(rec.attr, rec.operand, right);
                }
            }
        }
    }
    b.commit()
}

/// Perturbing any single node's committed content — leaf label, split
/// operand, or split attribute — must change the root: every node binds
/// the commitment.
#[test]
fn every_node_record_binds_the_root() {
    let (compiled, _) = fitted_compiled(LabelFunction::F6, 761, 2_000);
    let commit = tree_commit(&compiled).unwrap();
    let root = commit.root();
    for i in 0..commit.n_nodes() {
        let tampered = rebuild_with_mutation(&commit, i, |mut rec| {
            if rec.op == 0 {
                rec.label ^= 1;
            } else {
                rec.operand ^= 1;
            }
            rec
        })
        .unwrap();
        assert_ne!(tampered.root(), root, "node {i} content does not bind root");
        if commit.record(i).op != 0 {
            let attr_tampered = rebuild_with_mutation(&commit, i, |mut rec| {
                rec.attr ^= 1;
                rec
            })
            .unwrap();
            assert_ne!(
                attr_tampered.root(),
                root,
                "node {i} attr does not bind root"
            );
        }
    }
}

/// The full proof tamper battery over a realistic model: every proof
/// verifies untampered (no false rejects), and flipping every bit of
/// every proof byte yields either a parse failure or a verification
/// failure (no false accepts). Wrong labels and wrong commitments are
/// rejected too.
#[test]
fn proof_tamper_battery_no_false_accepts_or_rejects() {
    let (compiled, records) = fitted_compiled(LabelFunction::F1, 711, 2_000);
    let commit = tree_commit(&compiled).unwrap();
    let root = commit.root();
    for record in records.iter().take(40) {
        let values = record_values(record);
        let (label, proof) = commit.prove(&values).unwrap();
        verify_prediction(&root, &values, label, &proof).unwrap();

        // Wrong label, wrong commitment.
        assert!(verify_prediction(&root, &values, label ^ 1, &proof).is_err());
        let mut bad_root = root;
        bad_root.0[7] ^= 0x10;
        assert!(verify_prediction(&bad_root, &values, label, &proof).is_err());

        // Every flipped bit of the wire encoding is rejected.
        let wire = proof.to_bytes();
        for at in 0..wire.len() {
            for bit in 0..8u8 {
                let mut bad = wire.clone();
                bad[at] ^= 1 << bit;
                let accepted = match boat_proof::PredictionProof::from_bytes(&bad) {
                    Err(_) => false,
                    Ok(p) => verify_prediction(&root, &values, label, &p).is_ok(),
                };
                assert!(!accepted, "byte {at} bit {bit} flipped yet proof verified");
            }
        }
    }
}

/// Prove/predict differential over realistic records plus adversarial
/// mutations: NaN numeric fields (route right) and unseen category codes
/// (fail the subset test, route right). The Merkle prover must agree
/// with the compiled scorer on every one, and every proof must verify.
#[test]
fn prover_agrees_with_compiled_predict_on_edge_cases() {
    for (function, seed) in [(LabelFunction::F2, 72u64), (LabelFunction::F9, 792)] {
        let gen = GeneratorConfig::new(function).with_seed(seed);
        let schema = gen.schema();
        let records = gen.generate_vec(2_500);
        let ds = MemoryDataset::new(schema.clone(), records.clone());
        let tree = reference_tree(&ds, Gini, GrowthLimits::default()).unwrap();
        let compiled = compile(&tree);
        let commit = tree_commit(&compiled).unwrap();
        let root = commit.root();

        let mut checked = 0usize;
        for (k, record) in records.iter().take(500).enumerate() {
            // The record as generated, plus a variant with one field
            // made adversarial (NaN / an in-bounds but likely-unseen
            // category code), cycling through the attributes.
            let mut variants = vec![record.clone()];
            let fields = record.fields();
            let at = k % fields.len();
            let mut mutated = fields.to_vec();
            mutated[at] = match mutated[at] {
                Field::Num(_) => Field::Num(f64::NAN),
                Field::Cat(_) => {
                    let bound = schema.attributes()[at].ty().cardinality().unwrap_or(64);
                    Field::Cat(bound.saturating_sub(1))
                }
            };
            variants.push(Record::new(mutated, record.label()));
            for variant in variants {
                let values = record_values(&variant);
                let (label, proof) = commit.prove(&values).unwrap();
                assert_eq!(
                    label,
                    compiled.predict(&variant),
                    "prover and compiled scorer disagree"
                );
                verify_prediction(&root, &values, label, &proof).unwrap();
                checked += 1;
            }
        }
        assert_eq!(checked, 1_000);
    }
}

/// Incremental recommit oracle on a *maintained* model: after real
/// insert + maintain cycles, committing the fresh compiled tree by
/// reusing the previous epoch's commit must reproduce the from-scratch
/// root exactly, and committing an unchanged tree must reuse every node.
#[test]
fn incremental_recommit_matches_full_commit_across_maintains() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(77);
    let schema = gen.schema();
    let all = gen.generate_vec(8_000);
    let config = BoatConfig {
        sample_size: 1_200,
        bootstrap_reps: 10,
        bootstrap_sample_size: 500,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed: 7_700,
        ..BoatConfig::default()
    };
    let algo = Boat::new(config);
    let (mut model, _) = algo
        .fit_model(&MemoryDataset::new(schema.clone(), all[..4_000].to_vec()))
        .unwrap();

    let mut prev = tree_commit(&compile(model.tree().unwrap())).unwrap();
    for chunk in all[4_000..].chunks(1_000) {
        model
            .insert(&MemoryDataset::new(schema.clone(), chunk.to_vec()))
            .unwrap();
        model.maintain().unwrap();
        let compiled = compile(model.tree().unwrap());
        let full = tree_commit(&compiled).unwrap();
        let reused = tree_commit_reusing(&compiled, &prev).unwrap();
        assert_eq!(
            reused.root(),
            full.root(),
            "incremental recommit diverged from full commit"
        );
        assert!(reused.reused_nodes() <= compiled.n_nodes());
        prev = reused;
    }
    // Unchanged tree: the recommit is a pure block copy.
    let compiled = compile(model.tree().unwrap());
    let again = tree_commit_reusing(&compiled, &prev).unwrap();
    assert_eq!(again.root(), prev.root());
    assert_eq!(again.reused_nodes(), compiled.n_nodes());
}
