//! End-to-end audit differential for the streaming provenance path: fit
//! a model, stream inserts/deletes through a committed daemon across
//! several maintain epochs while serving proof-carrying predictions,
//! then verify *everything* offline:
//!
//! * every served prediction's Merkle proof verifies against the model
//!   commitment of the epoch that scored it;
//! * the epoch chain verifies back to genesis, and recomputes exactly
//!   from the durable WAL segments' per-frame content digests (the
//!   auditor needs only the WAL and the audit log — no live process);
//! * the audit log replays to the in-memory ledger bit for bit;
//! * any single-byte tamper — of the audit log, a served proof, or the
//!   claimed commitment — is rejected.

use boat_core::stream::{StalenessBound, StreamConfig};
use boat_core::{Boat, BoatConfig};
use boat_data::wal::{replay_segments, WalConfig};
use boat_data::{read_audit_log, MemoryDataset, Record};
use boat_datagen::{GeneratorConfig, LabelFunction};
use boat_obs::Registry;
use boat_proof::{verify_prediction, DeltaDigest, EpochChain, PredictionProof};
use boat_serve::provenance::delta_kind;
use boat_serve::{
    record_values, spawn_streaming_committed, ProvenanceConfig, ScoredProofs, ServeConfig,
    ServeEngine,
};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boat-prov-stream-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn streamed_epochs_serve_verifiable_predictions_and_audit_offline() {
    let gen = GeneratorConfig::new(LabelFunction::F2).with_seed(81);
    let schema = gen.schema();
    let all = gen.generate_vec(9_000);
    let base = &all[..4_000];

    let config = BoatConfig {
        sample_size: 1_200,
        bootstrap_reps: 10,
        bootstrap_sample_size: 500,
        in_memory_threshold: 400,
        spill_budget: 64,
        seed: 8_100,
        ..BoatConfig::default()
    };
    let algo = Boat::new(config);
    let (model, _) = algo
        .fit_model(&MemoryDataset::new(schema.clone(), base.to_vec()))
        .unwrap();
    let metrics = model.metrics().clone();

    let dir = test_dir("e2e");
    let audit_path = dir.join("epochs.audit");
    let (streaming, ledger) = spawn_streaming_committed(
        model,
        StreamConfig {
            staleness: StalenessBound {
                // Only quiesce maintains: each round seals exactly one
                // WAL operation into its epoch, so the offline
                // differential below knows the epoch partition.
                max_records: 1_000_000,
                max_age: None,
            },
            wal: WalConfig {
                dir: Some(dir.clone()),
                keep_segments: true,
                ..WalConfig::default()
            },
            ..StreamConfig::default()
        },
        ProvenanceConfig {
            audit_path: Some(audit_path.clone()),
        },
    )
    .unwrap();
    let handle = streaming.handle().clone();
    assert_eq!(handle.epoch(), 0);
    assert_eq!(ledger.epoch(), 0);
    let genesis_root = handle.commitment().expect("initial commit published");
    assert_eq!(ledger.entries()[0].model_root, genesis_root);

    let engine = ServeEngine::start(
        handle.clone(),
        schema.clone(),
        ServeConfig {
            workers: 2,
            queue_depth: 8,
        },
    );

    // Four epochs past genesis: inserts, a delete, and another insert —
    // one WAL operation per epoch, serving proof batches after each.
    enum Round {
        Insert(std::ops::Range<usize>),
        Delete(std::ops::Range<usize>),
    }
    let rounds = [
        Round::Insert(4_000..6_000),
        Round::Insert(6_000..7_500),
        Round::Delete(6_000..7_500),
        Round::Insert(7_500..9_000),
    ];
    let mut served: Vec<(u64, Vec<Record>, Vec<u16>, ScoredProofs)> = Vec::new();
    for (i, round) in rounds.iter().enumerate() {
        match round {
            Round::Insert(r) => streaming.insert(all[r.clone()].to_vec()).unwrap(),
            Round::Delete(r) => streaming.delete(all[r.clone()].to_vec()).unwrap(),
        }
        let report = streaming.quiesce().unwrap();
        assert_eq!(report.stats.first_error, None);
        let epoch = (i + 1) as u64;
        assert_eq!(handle.epoch(), epoch, "handle epoch after round {i}");
        assert_eq!(ledger.epoch(), epoch, "chain epoch after round {i}");
        assert_eq!(
            report.fingerprint,
            Some(ledger.fingerprint()),
            "quiesce fingerprint is the sealed chain head"
        );
        assert_eq!(ledger.head().fingerprint, ledger.fingerprint());

        // Serve a proof-carrying batch against the freshly sealed epoch.
        let queries = all[i * 50..(i + 1) * 50].to_vec();
        let (labels, scored_epoch, proofs) = engine
            .submit_with_proofs(queries.clone())
            .unwrap()
            .wait_with_proofs();
        assert_eq!(scored_epoch, epoch, "batch scored against the new epoch");
        let scored = proofs.expect("committed epoch must yield proofs");
        assert_eq!(scored.proofs.len(), queries.len());
        served.push((scored_epoch, queries, labels, scored));
    }
    engine.shutdown();
    assert_eq!(ledger.audit_error(), None);

    let entries = ledger.entries();
    assert_eq!(entries.len(), 1 + rounds.len(), "genesis + one per round");
    EpochChain::verify(&entries).unwrap();

    // Every served prediction verifies against the commitment of the
    // epoch that scored it — and that commitment is the epoch's audited
    // model root.
    for (epoch, queries, labels, scored) in &served {
        assert_eq!(
            scored.commitment, entries[*epoch as usize].model_root,
            "served commitment is epoch {epoch}'s audited root"
        );
        for ((record, label), proof) in queries.iter().zip(labels).zip(&scored.proofs) {
            let values = record_values(record);
            verify_prediction(&scored.commitment, &values, *label, proof).unwrap();
        }
    }

    let segments = streaming.wal_segments();
    streaming.finish().unwrap();

    // Offline differential 1: the whole chain recomputes from the
    // durable WAL alone (per-frame content digests, one op per epoch).
    let ops = replay_segments(&segments, &schema, &Registry::new()).unwrap();
    assert_eq!(ops.len(), rounds.len());
    let (mut chain, replayed_genesis) = EpochChain::genesis(entries[0].model_root);
    assert_eq!(replayed_genesis, entries[0]);
    for (i, op) in ops.iter().enumerate() {
        let mut delta = DeltaDigest::new();
        delta.absorb(delta_kind(op.kind), &op.content_digest);
        let entry = chain.advance(entries[i + 1].model_root, delta.take());
        assert_eq!(
            entry,
            entries[i + 1],
            "epoch {} does not recompute from the WAL",
            i + 1
        );
    }
    assert_eq!(chain.fingerprint(), ledger.fingerprint());

    // Offline differential 2: the durable audit log replays to the
    // in-memory ledger exactly and verifies back to genesis.
    let replay = read_audit_log(&audit_path).unwrap();
    assert!(!replay.torn);
    assert_eq!(replay.entries, entries);
    replay.verify_chain().unwrap();

    // Tamper battery: any single-byte flip of the audit log body leaves
    // no intact, verifying chain of the original length.
    let clean = std::fs::read(&audit_path).unwrap();
    for at in 8..clean.len() {
        let mut bad = clean.clone();
        bad[at] ^= 0x01;
        std::fs::write(&audit_path, &bad).unwrap();
        let intact = match read_audit_log(&audit_path) {
            Err(_) => false,
            Ok(r) => r.entries.len() == entries.len() && r.verify_chain().is_ok(),
        };
        assert!(!intact, "audit byte {at} tampered yet chain verified");
    }

    // Tamper battery: flipping any byte of a served proof, or of the
    // claimed commitment, breaks verification.
    let (_, queries, labels, scored) = &served[served.len() - 1];
    let values = record_values(&queries[0]);
    let wire = scored.proofs[0].to_bytes();
    for at in 0..wire.len() {
        let mut bad = wire.clone();
        bad[at] ^= 0x01;
        let accepted = match PredictionProof::from_bytes(&bad) {
            Err(_) => false,
            Ok(p) => verify_prediction(&scored.commitment, &values, labels[0], &p).is_ok(),
        };
        assert!(!accepted, "proof byte {at} tampered yet verified");
    }
    for at in 0..32 {
        let mut bad_root = scored.commitment;
        bad_root.0[at] ^= 0x01;
        assert!(
            verify_prediction(&bad_root, &values, labels[0], &scored.proofs[0]).is_err(),
            "commitment byte {at} tampered yet verified"
        );
    }

    // The commit pipeline reported its work: one commit per epoch plus
    // genesis, with subtree reuse on the incremental path.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("boat.proof.commits"), 1 + rounds.len() as u64);
    assert_eq!(snap.counter("boat.proof.proofs"), served.len() as u64 * 50);

    for p in segments {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}
