//! Multi-model registry coverage: register/evict under serving load,
//! wrong-schema submits rejected with a typed error, and per-model epoch
//! isolation (publishing model A never moves model B's epoch).

use boat_data::{Attribute, DataError, Field, Record, Schema};
use boat_serve::{compile, ModelHandle, ServeConfig, ServeEngine};
use boat_tree::{Predicate, Split, Tree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn num_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Attribute::numeric("x")], 2).unwrap())
}

fn cat_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Attribute::categorical("c", 8)], 2).unwrap())
}

/// x <= 5 → class 0 else class 1.
fn num_tree() -> Tree {
    let mut t = Tree::leaf(vec![5, 5]);
    t.split_node(
        t.root(),
        Split {
            attr: 0,
            predicate: Predicate::NumLe(5.0),
        },
        vec![5, 0],
        vec![0, 5],
    );
    t
}

/// c ∈ {0,1,2,3} → class 0 else class 1.
fn cat_tree() -> Tree {
    let mut t = Tree::leaf(vec![5, 5]);
    t.split_node(
        t.root(),
        Split {
            attr: 0,
            predicate: Predicate::CatIn(boat_tree::CatSet::from_iter([0, 1, 2, 3])),
        },
        vec![5, 0],
        vec![0, 5],
    );
    t
}

fn nrec(x: f64) -> Record {
    Record::new(vec![Field::Num(x)], 0)
}

fn crec(c: u32) -> Record {
    Record::new(vec![Field::Cat(c)], 0)
}

#[test]
fn wrong_schema_keyed_submit_is_typed_error() {
    let engine = ServeEngine::start(
        ModelHandle::new(compile(&num_tree())),
        num_schema(),
        ServeConfig::default(),
    );
    engine.register_model("cats", ModelHandle::new(compile(&cat_tree())), cat_schema());
    // Right schema per model works.
    assert_eq!(
        engine.submit_to("default", vec![nrec(9.0)]).unwrap().wait(),
        vec![1]
    );
    assert_eq!(
        engine.submit_to("cats", vec![crec(2)]).unwrap().wait(),
        vec![0]
    );
    // Cross-wired schemas are rejected with DataError::Schema, not a
    // worker panic.
    assert!(matches!(
        engine.submit_to("cats", vec![nrec(1.0)]).unwrap_err(),
        DataError::Schema(_)
    ));
    assert!(matches!(
        engine.submit_to("default", vec![crec(1)]).unwrap_err(),
        DataError::Schema(_)
    ));
    // And the engine keeps serving correctly afterwards.
    assert_eq!(
        engine.submit_to("default", vec![nrec(1.0)]).unwrap().wait(),
        vec![0]
    );
    engine.shutdown();
}

#[test]
fn per_model_epochs_are_isolated() {
    let handle_a = ModelHandle::new(compile(&num_tree()));
    let handle_b = ModelHandle::new(compile(&cat_tree()));
    let engine = ServeEngine::start(handle_a.clone(), num_schema(), ServeConfig::default());
    engine.register_model("b", handle_b.clone(), cat_schema());

    // Publish to A repeatedly; B's epoch must not move.
    for i in 0..5u64 {
        // Alternate the split point so every publish is a fresh tree.
        let mut t = Tree::leaf(vec![5, 5]);
        t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0 + i as f64),
            },
            vec![5, 0],
            vec![0, 5],
        );
        handle_a.publish(compile(&t));
    }
    assert_eq!(engine.model_epoch("default"), Some(5));
    assert_eq!(engine.model_epoch("b"), Some(0));

    // Tickets report their own model's epoch.
    let (_, epoch_a) = engine
        .submit_to("default", vec![nrec(1.0)])
        .unwrap()
        .wait_with_epoch();
    let (_, epoch_b) = engine
        .submit_to("b", vec![crec(1)])
        .unwrap()
        .wait_with_epoch();
    assert_eq!((epoch_a, epoch_b), (5, 0));

    // And the mirror image: publishing to B leaves A alone.
    handle_b.publish(compile(&cat_tree()));
    assert_eq!(engine.model_epoch("default"), Some(5));
    assert_eq!(engine.model_epoch("b"), Some(1));
    engine.shutdown();
}

#[test]
fn register_and_evict_under_serving_load() {
    let engine = Arc::new(ServeEngine::start(
        ModelHandle::new(compile(&num_tree())),
        num_schema(),
        ServeConfig {
            workers: 2,
            queue_depth: 16,
        },
    ));
    engine.register_model(
        "stable",
        ModelHandle::new(compile(&cat_tree())),
        cat_schema(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Churn thread: register/evict a third model continuously.
        let churn = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut cycles = 0u64;
                while !stop.load(Ordering::Acquire) {
                    engine.register_model(
                        "churny",
                        ModelHandle::new(compile(&num_tree())),
                        num_schema(),
                    );
                    engine.evict_model("churny");
                    cycles += 1;
                }
                cycles
            })
        };
        // Producers: keyed submits to the stable models stay exact the
        // whole time; submits to the churning key either score exactly
        // or fail with the unknown-key error, never anything else.
        let mut joins = Vec::new();
        for p in 0..2 {
            let engine = Arc::clone(&engine);
            joins.push(s.spawn(move || {
                for i in 0..500u64 {
                    let x = ((p * 500 + i) % 11) as f64;
                    let labels = engine.submit_to("default", vec![nrec(x)]).unwrap().wait();
                    assert_eq!(labels, vec![u16::from(x > 5.0)]);
                    let c = (i % 8) as u32;
                    let labels = engine.submit_to("stable", vec![crec(c)]).unwrap().wait();
                    assert_eq!(labels, vec![u16::from(c > 3)]);
                    match engine.submit_to("churny", vec![nrec(x)]) {
                        Ok(t) => assert_eq!(t.wait(), vec![u16::from(x > 5.0)]),
                        Err(DataError::Invalid(msg)) => {
                            assert!(msg.contains("churny"), "unexpected error: {msg}")
                        }
                        Err(e) => panic!("unexpected error kind: {e:?}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let cycles = churn.join().unwrap();
        assert!(cycles > 0, "churn thread never cycled");
    });

    // Registry state is coherent after the storm.
    assert_eq!(
        engine.model_keys(),
        vec!["default".to_string(), "stable".to_string()]
    );
    engine.shutdown();
}
