//! Authenticated model provenance: Merkle commitments over compiled
//! trees and the chained epoch ledger.
//!
//! This module is the serve-side glue around `boat-proof`:
//!
//! * [`tree_commit`] / [`tree_commit_reusing`] lower a [`CompiledTree`]'s
//!   preorder tables into a [`boat_proof::TreeCommit`] — the Merkle root
//!   is the model **commitment** published alongside the snapshot
//!   ([`crate::ModelHandle::publish_committed`]). The reusing variant
//!   block-copies subtree hashes that survived a maintenance cycle, so
//!   steady-state recommits cost proportional to the *changed* region.
//! * [`record_values`] maps a [`Record`]'s fields to the
//!   [`boat_proof::ProofValue`]s the standalone verifier re-evaluates.
//! * [`ProvenanceLedger`] owns the [`boat_proof::EpochChain`]: the
//!   streaming daemon's [`LedgerSink`] absorbs every durable WAL
//!   operation's content digest into the pending [`DeltaDigest`], and
//!   each publish-hook invocation [`seal`](ProvenanceLedger::seal)s an
//!   epoch — `fingerprint(N+1) = H(fingerprint(N) ‖ root(N+1) ‖ delta)`,
//!   optionally persisted to a durable [`boat_data::audit::AuditLog`].
//!
//! Ordering is what makes the chain meaningful: the daemon thread
//! absorbs ops and runs maintains serially, and the publish hook runs
//! *inside* the maintain, so the ops sealed into epoch `N+1`'s delta are
//! exactly those absorbed after epoch `N` was published. The ledger's
//! mutex only mediates cross-thread *reads* (quiesce fingerprints,
//! auditor snapshots) — the write side is single-threaded by
//! construction.

use crate::compile::CompiledTree;
use boat_data::audit::AuditLog;
use boat_data::wal::{WalKind, WalOp};
use boat_data::Record;
use boat_proof::{
    DeltaDigest, EpochChain, EpochEntry, Hash256, ProofError, ProofValue, TreeCommit,
};
use std::sync::{Arc, Mutex};

/// Merkle-commit `tree` from scratch: one hash per node, bottom-up over
/// the canonical records and subtree spans that [`compile`] emitted
/// alongside its preorder tables. The returned commit's
/// [`TreeCommit::root`] is the model commitment.
///
/// [`compile`]: crate::compile::compile
pub fn tree_commit(tree: &CompiledTree) -> Result<TreeCommit, ProofError> {
    TreeCommit::from_parts(tree.records.clone(), tree.right.clone(), tree.span.clone())
}

/// Merkle-commit `tree`, reusing every subtree hash from `prev` whose
/// node records are byte-identical (the maintenance steady state: only
/// regrown subtrees are rehashed). Produces the same root as
/// [`tree_commit`] — bit for bit — just faster.
pub fn tree_commit_reusing(
    tree: &CompiledTree,
    prev: &TreeCommit,
) -> Result<TreeCommit, ProofError> {
    TreeCommit::from_parts_reusing(
        tree.records.clone(),
        tree.right.clone(),
        tree.span.clone(),
        prev,
    )
}

/// A record's predictor fields as the verifier-side [`ProofValue`]s, in
/// attribute order.
pub fn record_values(record: &Record) -> Vec<ProofValue> {
    record
        .fields()
        .iter()
        .map(|f| match f {
            boat_data::Field::Num(x) => ProofValue::Num(*x),
            boat_data::Field::Cat(c) => ProofValue::Cat(*c),
        })
        .collect()
}

/// The delta-digest kind byte for a WAL operation — pinned to the WAL's
/// own frame encoding (insert = 1, delete = 2) so an offline auditor can
/// recompute deltas straight from replayed segments.
pub fn delta_kind(kind: WalKind) -> u8 {
    match kind {
        WalKind::Insert => 1,
        WalKind::Delete => 2,
    }
}

struct LedgerInner {
    chain: EpochChain,
    pending: DeltaDigest,
    entries: Vec<EpochEntry>,
    audit: Option<AuditLog>,
    audit_error: Option<String>,
}

/// The serve-side epoch ledger: chained fingerprints over every published
/// model commitment, with the pending delta accumulating between
/// publishes. Cheaply clonable (all clones share one ledger).
#[derive(Clone)]
pub struct ProvenanceLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl std::fmt::Debug for ProvenanceLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("ProvenanceLedger")
            .field("epoch", &inner.chain.epoch())
            .field("fingerprint", &inner.chain.fingerprint())
            .field("pending_ops", &inner.pending.items())
            .finish()
    }
}

impl ProvenanceLedger {
    /// Start the chain at genesis over the initial model commitment,
    /// optionally persisting every epoch (genesis included) to `audit`.
    pub fn genesis(model_root: Hash256, audit: Option<AuditLog>) -> boat_data::Result<Self> {
        let (chain, entry) = EpochChain::genesis(model_root);
        let mut audit = audit;
        if let Some(log) = audit.as_mut() {
            log.append(&entry)?;
        }
        Ok(ProvenanceLedger {
            inner: Arc::new(Mutex::new(LedgerInner {
                chain,
                pending: DeltaDigest::new(),
                entries: vec![entry],
                audit,
                audit_error: None,
            })),
        })
    }

    /// Fold one durable operation into the pending delta.
    pub fn absorb(&self, kind: WalKind, content_digest: &Hash256) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending.absorb(delta_kind(kind), content_digest);
    }

    /// Seal the pending delta into the next epoch over `model_root` and
    /// append the entry to the audit log (if any). Audit I/O failures are
    /// remembered ([`ProvenanceLedger::audit_error`]) but do not poison
    /// the in-memory chain.
    pub fn seal(&self, model_root: Hash256) -> EpochEntry {
        let mut inner = self.inner.lock().unwrap();
        let delta = inner.pending.take();
        let entry = inner.chain.advance(model_root, delta);
        inner.entries.push(entry);
        if let Some(log) = inner.audit.as_mut() {
            if let Err(e) = log.append(&entry) {
                let msg = e.to_string();
                inner.audit_error.get_or_insert(msg);
            }
        }
        entry
    }

    /// The chained fingerprint after the most recently sealed epoch.
    pub fn fingerprint(&self) -> Hash256 {
        self.inner.lock().unwrap().chain.fingerprint()
    }

    /// The most recently sealed epoch number (genesis = 0).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().chain.epoch()
    }

    /// Operations absorbed since the last seal.
    pub fn pending_ops(&self) -> u64 {
        self.inner.lock().unwrap().pending.items()
    }

    /// Every sealed entry, genesis first — verifiable end-to-end with
    /// [`boat_proof::EpochChain::verify`].
    pub fn entries(&self) -> Vec<EpochEntry> {
        self.inner.lock().unwrap().entries.clone()
    }

    /// The newest sealed entry.
    pub fn head(&self) -> EpochEntry {
        *self
            .inner
            .lock()
            .unwrap()
            .entries
            .last()
            .expect("ledger always holds at least genesis")
    }

    /// The first audit-log append failure, if any occurred.
    pub fn audit_error(&self) -> Option<String> {
        self.inner.lock().unwrap().audit_error.clone()
    }
}

/// The [`boat_core::stream::ProvenanceSink`] feeding a
/// [`ProvenanceLedger`] from the streaming daemon thread.
pub struct LedgerSink {
    ledger: ProvenanceLedger,
}

impl LedgerSink {
    /// A sink writing into `ledger`.
    pub fn new(ledger: ProvenanceLedger) -> LedgerSink {
        LedgerSink { ledger }
    }
}

impl boat_core::stream::ProvenanceSink for LedgerSink {
    fn absorb_op(&mut self, op: &WalOp) {
        self.ledger.absorb(op.kind, &op.content_digest);
    }

    fn fingerprint(&self) -> Option<Hash256> {
        Some(self.ledger.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use boat_proof::verify_prediction;
    use boat_tree::{Predicate, Split, Tree};

    /// x <= 5 → left leaf (0), else right leaf (1).
    fn threshold_tree() -> Tree {
        let mut t = Tree::leaf(vec![5, 5]);
        t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![5, 0],
            vec![0, 5],
        );
        t
    }

    /// The fused compile-time emission must agree, root for root, with
    /// an independent lowering through the validating builder.
    #[test]
    fn fused_records_agree_with_the_validating_builder() {
        use crate::compile::NodeOp;
        let compiled = compile(&threshold_tree());
        let n = compiled.ops.len();
        let mut b = boat_proof::TreeCommitBuilder::with_capacity(n);
        for i in 0..n {
            match compiled.ops[i] {
                NodeOp::Leaf => b.push_leaf(compiled.label[i]),
                NodeOp::Num => b.push_num(
                    compiled.split_attr[i],
                    compiled.threshold[i].to_bits(),
                    compiled.right[i],
                ),
                NodeOp::Cat => b.push_cat(
                    compiled.split_attr[i],
                    compiled.cat_mask[i],
                    compiled.right[i],
                ),
            }
        }
        let independent = b.commit().unwrap();
        let fused = tree_commit(&compiled).unwrap();
        assert_eq!(fused.root(), independent.root());
    }

    #[test]
    fn commit_roots_are_deterministic_and_reuse_preserves_them() {
        let compiled = compile(&threshold_tree());
        let a = tree_commit(&compiled).unwrap();
        let b = tree_commit(&compiled).unwrap();
        assert_eq!(a.root(), b.root());
        let c = tree_commit_reusing(&compiled, &a).unwrap();
        assert_eq!(c.root(), a.root());
        assert_eq!(c.reused_nodes(), compiled.n_nodes());
    }

    #[test]
    fn proofs_from_commit_verify_against_the_root() {
        let compiled = compile(&threshold_tree());
        let commit = tree_commit(&compiled).unwrap();
        for x in [0.0, 5.0, 6.0, f64::NAN] {
            let record = Record::new(vec![boat_data::Field::Num(x)], 0);
            let values = record_values(&record);
            let (label, proof) = commit.prove(&values).unwrap();
            assert_eq!(label, compiled.predict(&record), "x = {x}");
            verify_prediction(&commit.root(), &values, label, &proof).unwrap();
        }
    }

    #[test]
    fn ledger_chains_and_verifies() {
        let ledger = ProvenanceLedger::genesis(boat_proof::sha256(b"m0"), None).unwrap();
        assert_eq!(ledger.epoch(), 0);
        ledger.absorb(WalKind::Insert, &boat_proof::sha256(b"op1"));
        ledger.absorb(WalKind::Delete, &boat_proof::sha256(b"op2"));
        assert_eq!(ledger.pending_ops(), 2);
        let e1 = ledger.seal(boat_proof::sha256(b"m1"));
        assert_eq!((e1.epoch, ledger.pending_ops()), (1, 0));
        ledger.absorb(WalKind::Insert, &boat_proof::sha256(b"op3"));
        ledger.seal(boat_proof::sha256(b"m2"));
        let entries = ledger.entries();
        assert_eq!(entries.len(), 3);
        EpochChain::verify(&entries).unwrap();
        assert_eq!(ledger.head().fingerprint, ledger.fingerprint());
    }

    #[test]
    fn empty_deltas_still_advance_the_chain() {
        let ledger = ProvenanceLedger::genesis(boat_proof::sha256(b"m0"), None).unwrap();
        let e1 = ledger.seal(boat_proof::sha256(b"m1"));
        let e2 = ledger.seal(boat_proof::sha256(b"m1"));
        assert_ne!(e1.fingerprint, e2.fingerprint, "position binds the chain");
        EpochChain::verify(&ledger.entries()).unwrap();
    }
}
