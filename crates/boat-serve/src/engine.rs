//! The serving harness: scorer worker threads pulling micro-batches off a
//! bounded MPMC queue.
//!
//! Shape: any number of producer threads [`ServeEngine::submit`]
//! micro-batches of records; `workers` scorer threads pop batches, take a
//! [`ModelHandle`] snapshot *per batch* (so one batch is always scored
//! against one consistent tree, and a concurrently published tree is
//! picked up at the next batch boundary), transpose the batch into a
//! columnar [`RecordBlock`], run the compiled batched traversal, and
//! fulfill the batch's [`Ticket`].
//!
//! Flow control is plain std synchronization — a `Mutex<VecDeque>` with
//! two `Condvar`s:
//!
//! * **Backpressure** — the queue is bounded by `queue_depth`; `submit`
//!   blocks on `not_full` when the scorers fall behind, so an overloaded
//!   engine slows producers down instead of growing without bound.
//! * **Graceful drain** — [`ServeEngine::shutdown`] closes the intake and
//!   wakes everyone; workers keep popping until the queue is **empty**
//!   before exiting, so every accepted ticket is fulfilled. Submissions
//!   after shutdown fail fast with an error.
//!
//! Every stage records into `serve.*` metrics: accepted batches/records,
//! batch-size and end-to-end latency histograms, queue-depth gauge, and
//! per-batch scoring time.

use crate::block::RecordBlock;
use crate::handle::ModelHandle;
use boat_data::{DataError, Record, Result, Schema};
use boat_obs::Registry;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Scorer worker threads. `0` resolves to the machine's available
    /// parallelism.
    pub workers: usize,
    /// Maximum queued (accepted, unscored) batches before `submit`
    /// blocks. Must be ≥ 1.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

impl ServeConfig {
    /// The worker count actually spawned (`0` → available parallelism).
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            w => w,
        }
    }
}

/// One queued scoring request.
struct Job {
    records: Vec<Record>,
    ticket: Arc<TicketState>,
    /// Cell the scoring worker writes the snapshot epoch into (before
    /// fulfilling the ticket), for [`Ticket::wait_with_epoch`].
    epoch: Arc<Mutex<Option<u64>>>,
    enqueued: Instant,
}

struct TicketState {
    slot: Mutex<Option<Vec<u16>>>,
    done: Condvar,
}

/// A handle to one submitted batch's eventual predictions.
///
/// Returned by [`ServeEngine::submit`]; [`Ticket::wait`] blocks until a
/// scorer fulfills the batch (shutdown drains the queue, so every issued
/// ticket is eventually fulfilled).
pub struct Ticket {
    state: Arc<TicketState>,
    /// The epoch the batch was scored under, once fulfilled (telemetry
    /// for swap-under-load tests; set before `wait` returns).
    epoch: Arc<Mutex<Option<u64>>>,
}

impl Ticket {
    /// Block until the batch is scored; returns one label per submitted
    /// record, in submission order.
    pub fn wait(self) -> Vec<u16> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.done.wait(slot).unwrap();
        }
        slot.take().expect("fulfilled above")
    }

    /// Like [`Ticket::wait`], additionally returning the publication
    /// epoch of the snapshot the batch was scored against.
    pub fn wait_with_epoch(self) -> (Vec<u16>, u64) {
        let labels = {
            let mut slot = self.state.slot.lock().unwrap();
            while slot.is_none() {
                slot = self.state.done.wait(slot).unwrap();
            }
            slot.take().expect("fulfilled above")
        };
        let epoch = self.epoch.lock().unwrap().expect("set before fulfill");
        (labels, epoch)
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_depth: usize,
    handle: ModelHandle,
    schema: Arc<Schema>,
    metrics: Registry,
}

/// A running serving engine: scorer threads + bounded intake queue.
///
/// Dropping the engine without calling [`ServeEngine::shutdown`] also
/// drains gracefully (shutdown is invoked from `Drop`).
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawn the scorer pool. `schema` types the columnar transposition
    /// of every batch; `handle` supplies per-batch tree snapshots.
    /// Metrics go to the handle's registry.
    pub fn start(handle: ModelHandle, schema: Arc<Schema>, config: ServeConfig) -> ServeEngine {
        let workers = config.effective_workers();
        let metrics = handle.metrics().clone();
        metrics.gauge("serve.workers").set(workers as u64);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            handle,
            schema,
            metrics,
        });
        let threads = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServeEngine {
            shared,
            workers: threads,
        }
    }

    /// Submit one micro-batch for scoring. Blocks while the queue is at
    /// `queue_depth` (backpressure); fails fast once the engine is shut
    /// down. The returned [`Ticket`] resolves to one label per record.
    pub fn submit(&self, records: Vec<Record>) -> Result<Ticket> {
        let ticket_state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let epoch = Arc::new(Mutex::new(None));
        let job = Job {
            records,
            ticket: Arc::clone(&ticket_state),
            epoch: Arc::clone(&epoch),
            enqueued: Instant::now(),
        };
        {
            let mut q = self.shared.queue.lock().unwrap();
            while q.jobs.len() >= self.shared.queue_depth && !q.closed {
                q = self.shared.not_full.wait(q).unwrap();
            }
            if q.closed {
                return Err(DataError::Invalid("serve engine is shut down".into()));
            }
            q.jobs.push_back(job);
            self.shared
                .metrics
                .gauge("serve.queue_depth")
                .set(q.jobs.len() as u64);
        }
        self.shared.not_empty.notify_one();
        self.shared.metrics.counter("serve.batches_submitted").inc();
        Ok(Ticket {
            state: ticket_state,
            epoch,
        })
    }

    /// Close the intake, wait for the queue to drain, and join every
    /// scorer thread. All accepted tickets are fulfilled before return.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker scoring buffers, reused across every batch this worker
    // ever scores (allocation-free steady state).
    let mut scratch = crate::compile::BatchScratch::default();
    // Resolve metric handles once; updates are lock-free afterwards.
    let batches = shared.metrics.counter("serve.batches");
    let records_total = shared.metrics.counter("serve.records");
    let batch_size_hist = shared
        .metrics
        .histogram_with("serve.batch_size", &batch_size_bounds());
    let latency_hist = shared.metrics.histogram("serve.latency_ns");
    let score_hist = shared.metrics.histogram("serve.score_ns");
    let depth_gauge = shared.metrics.gauge("serve.queue_depth");
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    depth_gauge.set(q.jobs.len() as u64);
                    break job;
                }
                if q.closed {
                    return; // queue drained and intake closed
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        shared.not_full.notify_one();
        // One snapshot per batch: the whole batch scores against one
        // consistent tree; a concurrent publish takes effect at the next
        // batch boundary.
        let (tree, epoch) = shared.handle.snapshot_with_epoch();
        let t0 = Instant::now();
        let block = RecordBlock::from_records(&shared.schema, &job.records);
        let mut labels = Vec::new();
        tree.predict_batch_into(&block, &mut scratch, &mut labels);
        score_hist.record(t0.elapsed().as_nanos() as u64);
        batches.inc();
        records_total.add(job.records.len() as u64);
        batch_size_hist.record(job.records.len() as u64);
        latency_hist.record(job.enqueued.elapsed().as_nanos() as u64);
        *job.epoch.lock().unwrap() = Some(epoch);
        let mut slot = job.ticket.slot.lock().unwrap();
        *slot = Some(labels);
        job.ticket.done.notify_all();
    }
}

/// Histogram bounds for batch sizes: powers of two, 1 … 64 Ki records.
fn batch_size_bounds() -> Vec<u64> {
    (0..17u32).map(|k| 1u64 << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use boat_data::{Attribute, Field};
    use boat_tree::{Predicate, Split, Tree};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attribute::numeric("x")], 2).unwrap())
    }

    /// x <= 5 → class 0 else class 1.
    fn threshold_tree() -> Tree {
        let mut t = Tree::leaf(vec![5, 5]);
        t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![5, 0],
            vec![0, 5],
        );
        t
    }

    fn rec(x: f64) -> Record {
        Record::new(vec![Field::Num(x)], 0)
    }

    #[test]
    fn scores_batches_in_submission_order() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        let t1 = engine.submit(vec![rec(1.0), rec(9.0), rec(5.0)]).unwrap();
        let t2 = engine.submit(vec![rec(6.0)]).unwrap();
        assert_eq!(t1.wait(), vec![0, 1, 0]);
        assert_eq!(t2.wait(), vec![1]);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_tickets_then_rejects() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 32,
            },
        );
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| engine.submit(vec![rec(i as f64)]).unwrap())
            .collect();
        let shared = Arc::clone(&engine.shared);
        engine.shutdown();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), vec![u16::from(i as f64 > 5.0)]);
        }
        // Post-shutdown submissions fail fast (reconstruct a throwaway
        // engine handle view via the shared state: queue is closed).
        assert!(shared.queue.lock().unwrap().closed);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        // Queue depth 1 with zero workers-like behavior is impossible (a
        // worker always runs), so instead verify the invariant directly:
        // while submitting many one-record batches from several producer
        // threads, the observed queue length never exceeds the bound.
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let depth = 4usize;
        let engine = Arc::new(ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: depth,
            },
        ));
        std::thread::scope(|s| {
            for p in 0..3 {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for i in 0..50 {
                        let t = engine.submit(vec![rec((p * 50 + i) as f64)]).unwrap();
                        let _ = t.wait();
                        assert!(engine.shared.queue.lock().unwrap().jobs.len() <= depth);
                    }
                });
            }
        });
        let engine = Arc::into_inner(engine).expect("producers joined");
        engine.shutdown();
    }

    #[test]
    fn epoch_reported_per_batch_and_swaps_take_effect() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle.clone(),
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 8,
            },
        );
        let (labels, epoch) = engine.submit(vec![rec(1.0)]).unwrap().wait_with_epoch();
        assert_eq!((labels, epoch), (vec![0], 0));
        // Publish an inverted tree: x <= 5 → class 1.
        let mut inverted = Tree::leaf(vec![5, 5]);
        inverted.split_node(
            inverted.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![0, 5],
            vec![5, 0],
        );
        handle.publish(compile(&inverted));
        let (labels, epoch) = engine.submit(vec![rec(1.0)]).unwrap().wait_with_epoch();
        assert_eq!((labels, epoch), (vec![1], 1));
        engine.shutdown();
    }

    #[test]
    fn metrics_count_batches_and_records() {
        let reg = Registry::new();
        let handle = ModelHandle::with_metrics(compile(&threshold_tree()), reg.clone());
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        for _ in 0..5 {
            engine.submit(vec![rec(1.0), rec(9.0)]).unwrap().wait();
        }
        engine.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.batches"), 5);
        assert_eq!(snap.counter("serve.batches_submitted"), 5);
        assert_eq!(snap.counter("serve.records"), 10);
        let h = snap.histogram("serve.batch_size").unwrap();
        assert_eq!((h.count, h.sum), (5, 10));
        assert_eq!(snap.histogram("serve.latency_ns").unwrap().count, 5);
        assert_eq!(snap.gauge("serve.workers"), Some(2));
    }

    #[test]
    fn drop_without_shutdown_drains() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 8,
            },
        );
        let t = engine.submit(vec![rec(2.0)]).unwrap();
        drop(engine); // Drop impl drains and joins
        assert_eq!(t.wait(), vec![0]);
    }
}
