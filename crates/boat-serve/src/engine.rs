//! The serving harness: shard-per-core scorer workers with lock-free
//! intake rings and a multi-model registry.
//!
//! Shape: N scorer workers each own one [`ShardQueue`] — a bounded
//! lock-free ring plus a parking doorbell (see [`crate::shard`]).
//! Producers [`ServeEngine::submit`] micro-batches; the submit path
//! round-robins each batch to a shard with **no shared `Mutex` +
//! `Condvar` queue on the hot path** (a push is one CAS + one release
//! store). Each worker scores its batches against a per-thread
//! [`SnapshotReader`], so picking up the current tree is **one atomic
//! load** in steady state — a concurrently published tree takes effect
//! at the next batch boundary, and one batch is always scored against
//! one consistent snapshot (never torn across an epoch swap).
//!
//! Many models can live behind one engine: a [`ModelRegistry`] maps keys
//! to `(ModelHandle, Schema)` entries, [`ServeEngine::submit_to`] scores
//! against a named model, and submits that disagree with the target
//! schema are rejected up front with [`DataError::Schema`]. The default
//! model (the one the engine was started with) is pinned outside the
//! registry, so its submit path never takes the registry's read lock.
//!
//! Flow control:
//!
//! * **Backpressure** — each shard's ring is bounded (`queue_depth`
//!   split across shards); `submit` parks on the shard's doorbell when
//!   its scorer falls behind, so an overloaded engine slows producers
//!   down instead of growing without bound.
//! * **Graceful drain** — [`ServeEngine::drain`] blocks until every
//!   accepted ticket has been fulfilled (event-driven: workers ring a
//!   drain doorbell, no polling); [`ServeEngine::shutdown`] closes the
//!   intake, lets workers drain their rings, joins them, and finally
//!   sweeps any straggler ring items inline — **no accepted ticket is
//!   ever dropped**. Submissions after shutdown fail fast.
//!
//! Every stage records into `serve.*` metrics: accepted/rejected
//! batches, record counts, batch-size and end-to-end latency histograms
//! (fine-grained [`boat_obs::latency_bounds_ns`] buckets, so
//! p50/p99/p999 reads are meaningful), per-batch scoring time, and the
//! per-shard intake depths (`serve.queue_depth` = sum over shards,
//! `serve.shard.depth_max` = deepest shard).

use crate::block::RecordBlock;
use crate::compile::BatchScratch;
use crate::handle::{ModelHandle, SnapshotReader};
use crate::provenance::record_values;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::shard::ShardQueue;
use boat_data::{DataError, Record, Result, Schema};
use boat_obs::{latency_bounds_ns, Counter, Gauge, Histogram, Registry};
use boat_proof::{Hash256, PredictionProof};
use std::ops::Range;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Scorer worker threads (= intake shards). `0` resolves to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Total queued (accepted, unscored) batches across all shards
    /// before `submit` blocks. Split evenly across shards and rounded up
    /// to a power of two per shard, so the effective bound can be
    /// somewhat higher — see [`ServeEngine::queue_capacity`].
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

impl ServeConfig {
    /// The worker count actually spawned (`0` → available parallelism).
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            w => w,
        }
    }
}

/// A batch's record storage: owned rows, or a shared slice of a larger
/// `Arc`'d buffer (zero-copy submission for replay/bench workloads).
enum Payload {
    Owned(Vec<Record>),
    Shared(Arc<Vec<Record>>, Range<usize>),
}

impl Payload {
    fn records(&self) -> &[Record] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(buf, range) => &buf[range.clone()],
        }
    }
}

/// One queued scoring request, pinned to the model entry it was
/// validated against at submit time (an eviction cannot strand it).
struct Job {
    payload: Payload,
    entry: Arc<ModelEntry>,
    ticket: Arc<TicketState>,
    enqueued: Instant,
    /// Generate per-record Merkle path proofs against the scoring
    /// snapshot's commit ([`ServeEngine::submit_with_proofs`]).
    want_proofs: bool,
}

struct TicketState {
    slot: Mutex<TicketSlot>,
    done: Condvar,
}

/// Per-record Merkle path proofs for one scored batch, bound to the
/// commitment of the snapshot the batch was scored against. Each proof
/// verifies standalone via [`boat_proof::verify_prediction`] — no tree
/// access required.
#[derive(Debug, Clone)]
pub struct ScoredProofs {
    /// The Merkle root of the scoring snapshot (its model commitment).
    pub commitment: Hash256,
    /// One proof per submitted record, in submission order.
    pub proofs: Vec<PredictionProof>,
}

/// `result` holds `(labels, epoch, proofs)` once fulfilled — written
/// together so [`Ticket::wait_with_epoch`] never observes a torn tuple.
/// `waiting` is set (under the same mutex) before a waiter parks, so
/// fulfillment only pays the condvar-notify syscall when someone is
/// actually parked — on a busy engine most tickets are fulfilled before
/// anyone waits on them.
#[derive(Default)]
struct TicketSlot {
    result: Option<(Vec<u16>, u64, Option<ScoredProofs>)>,
    waiting: bool,
}

/// A handle to one submitted batch's eventual predictions.
///
/// Returned by [`ServeEngine::submit`]; [`Ticket::wait`] blocks until a
/// scorer fulfills the batch (shutdown drains the rings, so every issued
/// ticket is eventually fulfilled).
pub struct Ticket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fulfilled = self.state.slot.lock().unwrap().result.is_some();
        f.debug_struct("Ticket")
            .field("fulfilled", &fulfilled)
            .finish()
    }
}

impl Ticket {
    /// Block until the batch is scored; returns one label per submitted
    /// record, in submission order.
    pub fn wait(self) -> Vec<u16> {
        self.wait_with_proofs().0
    }

    /// Like [`Ticket::wait`], additionally returning the publication
    /// epoch of the snapshot the batch was scored against.
    pub fn wait_with_epoch(self) -> (Vec<u16>, u64) {
        let (labels, epoch, _) = self.wait_with_proofs();
        (labels, epoch)
    }

    /// Like [`Ticket::wait_with_epoch`], additionally returning the
    /// batch's [`ScoredProofs`]. `None` unless the batch was submitted
    /// via [`ServeEngine::submit_with_proofs`] *and* the scoring
    /// snapshot was published with a commit
    /// ([`ModelHandle::publish_committed`]).
    pub fn wait_with_proofs(self) -> (Vec<u16>, u64, Option<ScoredProofs>) {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.result.is_none() {
            slot.waiting = true;
            slot = self.state.done.wait(slot).unwrap();
        }
        slot.result.take().expect("fulfilled above")
    }
}

/// Metric handles resolved once (registry lookups take a lock; updates
/// on these handles are lock-free).
struct EngineMetrics {
    batches_submitted: Counter,
    rejected: Counter,
    batches: Counter,
    records: Counter,
    batch_size: Histogram,
    latency_ns: Histogram,
    score_ns: Histogram,
    depth_sum: Gauge,
    depth_max: Gauge,
    proofs: Counter,
    proof_bytes: Counter,
    proof_failures: Counter,
}

impl EngineMetrics {
    fn resolve(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            batches_submitted: registry.counter("serve.batches_submitted"),
            rejected: registry.counter("serve.rejected"),
            batches: registry.counter("serve.batches"),
            records: registry.counter("serve.records"),
            batch_size: registry.histogram_with("serve.batch_size", &batch_size_bounds()),
            latency_ns: registry.histogram_with("serve.latency_ns", &latency_bounds_ns()),
            score_ns: registry.histogram_with("serve.score_ns", &latency_bounds_ns()),
            depth_sum: registry.gauge("serve.queue_depth"),
            depth_max: registry.gauge("serve.shard.depth_max"),
            proofs: registry.counter("boat.proof.proofs"),
            proof_bytes: registry.counter("boat.proof.proof_bytes"),
            proof_failures: registry.counter("boat.proof.proof_failures"),
        }
    }
}

struct Shared {
    shards: Vec<ShardQueue<Job>>,
    closed: AtomicBool,
    /// Round-robin cursor for shard selection.
    next_shard: AtomicUsize,
    /// Tickets accepted (incremented before the ring push; rolled back
    /// if the push is refused because the engine closed).
    accepted: AtomicU64,
    /// Tickets fulfilled. `drain` waits for `completed == accepted`.
    completed: AtomicU64,
    /// Drain doorbell (same fence protocol as the shard doorbells).
    drain_gate: Mutex<()>,
    drain_cv: Condvar,
    drain_parked: AtomicUsize,
    registry: ModelRegistry,
    /// The model the engine was started with; its submit path skips the
    /// registry's read lock entirely.
    default_entry: Arc<ModelEntry>,
    metrics: Registry,
    m: EngineMetrics,
}

impl Shared {
    fn update_depth_gauges(&self) {
        let mut sum = 0usize;
        let mut max = 0usize;
        for s in &self.shards {
            let d = s.len();
            sum += d;
            max = max.max(d);
        }
        self.m.depth_sum.set(sum as u64);
        self.m.depth_max.set(max as u64);
    }

    fn notify_drain(&self) {
        // Pairs with the SeqCst fence in `drain`: either we see its
        // parked count, or its re-check sees our `completed` bump.
        fence(Ordering::SeqCst);
        if self.drain_parked.load(Ordering::Relaxed) > 0 {
            let _guard = self.drain_gate.lock().unwrap();
            self.drain_cv.notify_all();
        }
    }
}

/// A running serving engine: shard-per-core scorer threads + lock-free
/// intake rings + multi-model registry.
///
/// Dropping the engine without calling [`ServeEngine::shutdown`] also
/// drains gracefully (shutdown is invoked from `Drop`).
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Spawn the scorer pool with `handle`/`schema` as the **default
    /// model** (also registered under the key `"default"`). Metrics go
    /// to the handle's registry.
    pub fn start(handle: ModelHandle, schema: Arc<Schema>, config: ServeConfig) -> ServeEngine {
        let workers = config.effective_workers().max(1);
        let metrics = handle.metrics().clone();
        metrics.gauge("serve.workers").set(workers as u64);
        let per_shard = config.queue_depth.max(1).div_ceil(workers);
        let registry = ModelRegistry::new();
        let default_entry = registry.register("default", handle, schema);
        let m = EngineMetrics::resolve(&metrics);
        let shared = Arc::new(Shared {
            shards: (0..workers)
                .map(|_| ShardQueue::with_capacity(per_shard))
                .collect(),
            closed: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            drain_gate: Mutex::new(()),
            drain_cv: Condvar::new(),
            drain_parked: AtomicUsize::new(0),
            registry,
            default_entry,
            metrics,
            m,
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        ServeEngine {
            shared,
            workers: Mutex::new(threads),
        }
    }

    /// Submit one micro-batch against the default model. Blocks while
    /// the target shard's ring is full (backpressure); fails fast once
    /// the engine is shut down. The returned [`Ticket`] resolves to one
    /// label per record.
    pub fn submit(&self, records: Vec<Record>) -> Result<Ticket> {
        let entry = Arc::clone(&self.shared.default_entry);
        self.submit_job(entry, Payload::Owned(records), false)
    }

    /// Like [`ServeEngine::submit`], additionally asking the scorer to
    /// generate a Merkle path proof per record against the scoring
    /// snapshot's commitment. The ticket's
    /// [`Ticket::wait_with_proofs`] returns them as [`ScoredProofs`];
    /// `None` if the current snapshot was published without a commit.
    pub fn submit_with_proofs(&self, records: Vec<Record>) -> Result<Ticket> {
        let entry = Arc::clone(&self.shared.default_entry);
        self.submit_job(entry, Payload::Owned(records), true)
    }

    /// Zero-copy submit against the default model: score `buf[range]`
    /// without cloning the records. The engine holds the `Arc` until the
    /// batch is fulfilled; the caller keeps ownership of the buffer.
    pub fn submit_shared(&self, buf: Arc<Vec<Record>>, range: Range<usize>) -> Result<Ticket> {
        if range.start > range.end || range.end > buf.len() {
            return Err(DataError::Invalid(format!(
                "batch range {}..{} out of bounds for buffer of {} records",
                range.start,
                range.end,
                buf.len()
            )));
        }
        let entry = Arc::clone(&self.shared.default_entry);
        self.submit_job(entry, Payload::Shared(buf, range), false)
    }

    /// Submit one micro-batch against the model registered under `key`.
    /// Unknown keys fail with [`DataError::Invalid`]; batches that do
    /// not conform to the model's schema fail with [`DataError::Schema`].
    pub fn submit_to(&self, key: &str, records: Vec<Record>) -> Result<Ticket> {
        let entry = self.shared.registry.resolve(key)?;
        self.submit_job(entry, Payload::Owned(records), false)
    }

    fn submit_job(
        &self,
        entry: Arc<ModelEntry>,
        payload: Payload,
        want_proofs: bool,
    ) -> Result<Ticket> {
        if self.shared.closed.load(Ordering::Acquire) {
            self.shared.m.rejected.inc();
            return Err(DataError::Invalid("serve engine is shut down".into()));
        }
        if let Err(e) = entry.validate(payload.records()) {
            self.shared.m.rejected.inc();
            return Err(e);
        }
        let ticket_state = Arc::new(TicketState {
            slot: Mutex::new(TicketSlot::default()),
            done: Condvar::new(),
        });
        let job = Job {
            payload,
            entry,
            ticket: Arc::clone(&ticket_state),
            enqueued: Instant::now(),
            want_proofs,
        };
        // Count the ticket as accepted *before* it becomes visible to a
        // worker, so `drain` can never observe `completed > accepted`;
        // rolled back below if the push is refused.
        self.shared.accepted.fetch_add(1, Ordering::AcqRel);
        let shard =
            self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        if self.shared.shards[shard]
            .push_or_park(job, &self.shared.closed)
            .is_err()
        {
            self.shared.accepted.fetch_sub(1, Ordering::AcqRel);
            self.shared.m.rejected.inc();
            self.shared.notify_drain();
            return Err(DataError::Invalid("serve engine is shut down".into()));
        }
        self.shared.m.batches_submitted.inc();
        self.shared.update_depth_gauges();
        Ok(Ticket {
            state: ticket_state,
        })
    }

    /// Register a model under `key` (replacing any previous entry —
    /// in-flight tickets against the old entry still complete). Keyed
    /// submits via [`ServeEngine::submit_to`] become visible
    /// immediately.
    pub fn register_model(&self, key: &str, handle: ModelHandle, schema: Arc<Schema>) {
        self.shared.registry.register(key, handle, schema);
        self.shared
            .metrics
            .gauge("serve.models")
            .set(self.shared.registry.len() as u64);
    }

    /// Evict the model registered under `key`; returns whether it
    /// existed. Accepted tickets against it still complete (the job
    /// pinned the entry); subsequent keyed submits fail.
    pub fn evict_model(&self, key: &str) -> bool {
        let existed = self.shared.registry.evict(key).is_some();
        self.shared
            .metrics
            .gauge("serve.models")
            .set(self.shared.registry.len() as u64);
        existed
    }

    /// The publication epoch of the model under `key`, if registered.
    pub fn model_epoch(&self, key: &str) -> Option<u64> {
        self.shared.registry.get(key).map(|e| e.handle().epoch())
    }

    /// Registered model keys, sorted.
    pub fn model_keys(&self) -> Vec<String> {
        self.shared.registry.keys()
    }

    /// Total live occupancy across all shard rings (approximate under
    /// concurrency).
    pub fn queue_depth(&self) -> usize {
        self.shared.shards.iter().map(|s| s.len()).sum()
    }

    /// Total ring capacity across shards — the effective backpressure
    /// bound (per-shard capacities round up to powers of two).
    pub fn queue_capacity(&self) -> usize {
        self.shared.shards.iter().map(|s| s.capacity()).sum()
    }

    /// Block until every accepted ticket has been fulfilled. Event
    /// driven: workers ring a doorbell per completion; no polling loop.
    /// Does **not** close the intake — concurrent submitters can keep
    /// the engine busy past this call's snapshot of `accepted`.
    pub fn drain(&self) {
        loop {
            let accepted = self.shared.accepted.load(Ordering::Acquire);
            let completed = self.shared.completed.load(Ordering::Acquire);
            if completed >= accepted {
                break;
            }
            let guard = self.shared.drain_gate.lock().unwrap();
            self.shared.drain_parked.fetch_add(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let accepted = self.shared.accepted.load(Ordering::Acquire);
            let completed = self.shared.completed.load(Ordering::Acquire);
            if completed < accepted {
                // Bounded wait is defense-in-depth; the fence protocol
                // already forbids a lost wakeup.
                let (guard, _) = self
                    .shared
                    .drain_cv
                    .wait_timeout(guard, Duration::from_millis(2))
                    .unwrap();
                drop(guard);
            } else {
                drop(guard);
            }
            self.shared.drain_parked.fetch_sub(1, Ordering::Relaxed);
        }
        self.shared.update_depth_gauges();
    }

    /// Close the intake, wait for the rings to drain, and join every
    /// scorer thread. All accepted tickets are fulfilled before return;
    /// idempotent (later calls are no-ops). Submissions after shutdown
    /// fail fast with a typed error.
    pub fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.wake_all();
        }
        let threads: Vec<JoinHandle<()>> = self.workers.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        // Final sweep: score any straggler that raced into a ring as it
        // closed. A submitter that passed the closed check may still be
        // mid-push, so sweep until the accepted/completed ledger
        // balances (every in-flight submit either lands its job — we
        // score it — or observes `closed` and rolls its count back).
        // No accepted ticket is ever dropped.
        let mut scratch = BatchScratch::default();
        let mut readers: Vec<(u64, SnapshotReader)> = Vec::new();
        loop {
            for shard in &self.shared.shards {
                while let Some(job) = shard.try_pop() {
                    score_job(&self.shared, &mut scratch, &mut readers, job);
                }
            }
            let accepted = self.shared.accepted.load(Ordering::Acquire);
            let completed = self.shared.completed.load(Ordering::Acquire);
            if completed >= accepted {
                break;
            }
            std::thread::yield_now();
        }
        self.shared.update_depth_gauges();
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cap on per-worker cached snapshot readers: enough for every live
/// tenant of a realistic engine; overflowing (a register/evict churn
/// test) just resets the cache.
const READER_CACHE_CAP: usize = 16;

fn reader_for<'a>(
    readers: &'a mut Vec<(u64, SnapshotReader)>,
    entry: &ModelEntry,
) -> &'a mut SnapshotReader {
    match readers.iter().position(|(id, _)| *id == entry.id()) {
        Some(pos) => &mut readers[pos].1,
        None => {
            if readers.len() >= READER_CACHE_CAP {
                readers.clear();
            }
            readers.push((entry.id(), entry.handle().reader()));
            &mut readers.last_mut().expect("just pushed").1
        }
    }
}

/// Score one job and fulfill its ticket. Shared between the worker loop
/// and shutdown's final straggler sweep.
fn score_job(
    shared: &Shared,
    scratch: &mut BatchScratch,
    readers: &mut Vec<(u64, SnapshotReader)>,
    job: Job,
) {
    let records = job.payload.records();
    // One reader refresh per batch: the whole batch scores against one
    // consistent snapshot; a concurrent publish takes effect at the next
    // batch boundary. Steady state, this is a single atomic load.
    let (tree, epoch, commit) = reader_for(readers, &job.entry).current_committed();
    let t0 = Instant::now();
    let block = RecordBlock::from_records(job.entry.schema(), records);
    let mut labels = Vec::new();
    tree.predict_batch_into(&block, scratch, &mut labels);
    // Proof generation rides the same snapshot as the labels: the commit
    // came out of the same publication record, so every proof verifies
    // against the commitment of the tree that produced the batch's labels.
    let proofs = match (job.want_proofs, commit) {
        (true, Some(commit)) => {
            let mut out = Vec::with_capacity(records.len());
            let mut bytes = 0u64;
            for record in records {
                match commit.prove(&record_values(record)) {
                    Ok((_, proof)) => {
                        bytes += proof.wire_len() as u64;
                        out.push(proof);
                    }
                    Err(_) => break,
                }
            }
            if out.len() == records.len() {
                shared.m.proofs.add(out.len() as u64);
                shared.m.proof_bytes.add(bytes);
                Some(ScoredProofs {
                    commitment: commit.root(),
                    proofs: out,
                })
            } else {
                // A record the batch scorer accepted but the prover
                // rejects (out-of-range category code) — surface as a
                // counted miss, not a torn half-proved batch.
                shared.m.proof_failures.inc();
                None
            }
        }
        _ => None,
    };
    shared.m.score_ns.record(t0.elapsed().as_nanos() as u64);
    shared.m.batches.inc();
    shared.m.records.add(records.len() as u64);
    shared.m.batch_size.record(records.len() as u64);
    shared
        .m
        .latency_ns
        .record(job.enqueued.elapsed().as_nanos() as u64);
    {
        let mut slot = job.ticket.slot.lock().unwrap();
        slot.result = Some((labels, epoch, proofs));
        if slot.waiting {
            job.ticket.done.notify_all();
        }
    }
    shared.completed.fetch_add(1, Ordering::AcqRel);
    shared.notify_drain();
}

fn worker_loop(shared: &Shared, shard_idx: usize) {
    // Per-worker scoring buffers and snapshot readers, reused across
    // every batch this worker ever scores (allocation-free steady state
    // apart from the label vector each ticket takes ownership of).
    let mut scratch = BatchScratch::default();
    let mut readers: Vec<(u64, SnapshotReader)> = Vec::new();
    let shard = &shared.shards[shard_idx];
    while let Some(job) = shard.pop_or_park(&shared.closed) {
        score_job(shared, &mut scratch, &mut readers, job);
        shared.update_depth_gauges();
    }
}

/// Histogram bounds for batch sizes: powers of two, 1 … 64 Ki records.
fn batch_size_bounds() -> Vec<u64> {
    (0..17u32).map(|k| 1u64 << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use boat_data::{Attribute, Field};
    use boat_tree::{Predicate, Split, Tree};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attribute::numeric("x")], 2).unwrap())
    }

    /// x <= 5 → class 0 else class 1.
    fn threshold_tree() -> Tree {
        let mut t = Tree::leaf(vec![5, 5]);
        t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![5, 0],
            vec![0, 5],
        );
        t
    }

    fn rec(x: f64) -> Record {
        Record::new(vec![Field::Num(x)], 0)
    }

    #[test]
    fn scores_batches_in_submission_order() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        let t1 = engine.submit(vec![rec(1.0), rec(9.0), rec(5.0)]).unwrap();
        let t2 = engine.submit(vec![rec(6.0)]).unwrap();
        assert_eq!(t1.wait(), vec![0, 1, 0]);
        assert_eq!(t2.wait(), vec![1]);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_tickets_then_rejects() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 32,
            },
        );
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| engine.submit(vec![rec(i as f64)]).unwrap())
            .collect();
        engine.shutdown();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), vec![u16::from(i as f64 > 5.0)]);
        }
        // Post-shutdown submissions fail fast with a typed error.
        let err = engine.submit(vec![rec(0.0)]).unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)));
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn submit_shared_scores_without_cloning() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(handle, schema(), ServeConfig::default());
        let buf = Arc::new((0..10).map(|i| rec(i as f64)).collect::<Vec<_>>());
        let t1 = engine.submit_shared(Arc::clone(&buf), 0..4).unwrap();
        let t2 = engine.submit_shared(Arc::clone(&buf), 4..10).unwrap();
        assert_eq!(t1.wait(), vec![0, 0, 0, 0]);
        assert_eq!(t2.wait(), vec![0, 0, 1, 1, 1, 1]);
        // Out-of-bounds ranges are rejected up front.
        assert!(engine.submit_shared(Arc::clone(&buf), 4..11).is_err());
        engine.shutdown();
        // The engine released its clones of the buffer.
        assert_eq!(Arc::strong_count(&buf), 1);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        // While submitting many one-record batches from several producer
        // threads, the observed total ring occupancy never exceeds the
        // engine's capacity bound.
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 4,
            },
        );
        let cap = engine.queue_capacity();
        assert!(cap >= 4);
        std::thread::scope(|s| {
            for p in 0..3 {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..50 {
                        let t = engine.submit(vec![rec((p * 50 + i) as f64)]).unwrap();
                        let _ = t.wait();
                        assert!(engine.queue_depth() <= cap);
                    }
                });
            }
        });
        engine.shutdown();
    }

    #[test]
    fn epoch_reported_per_batch_and_swaps_take_effect() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle.clone(),
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 8,
            },
        );
        let (labels, epoch) = engine.submit(vec![rec(1.0)]).unwrap().wait_with_epoch();
        assert_eq!((labels, epoch), (vec![0], 0));
        // Publish an inverted tree: x <= 5 → class 1.
        let mut inverted = Tree::leaf(vec![5, 5]);
        inverted.split_node(
            inverted.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![0, 5],
            vec![5, 0],
        );
        handle.publish(compile(&inverted));
        let (labels, epoch) = engine.submit(vec![rec(1.0)]).unwrap().wait_with_epoch();
        assert_eq!((labels, epoch), (vec![1], 1));
        engine.shutdown();
    }

    #[test]
    fn proof_submissions_verify_against_the_published_commitment() {
        let reg = Registry::new();
        let compiled = compile(&threshold_tree());
        let commit = Arc::new(crate::provenance::tree_commit(&compiled).unwrap());
        let handle = ModelHandle::with_metrics_committed(compiled, commit, reg.clone());
        let commitment = handle.commitment().unwrap();
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        let records = vec![rec(1.0), rec(9.0), rec(5.0)];
        let ticket = engine.submit_with_proofs(records.clone()).unwrap();
        let (labels, _, proofs) = ticket.wait_with_proofs();
        assert_eq!(labels, vec![0, 1, 0]);
        let scored = proofs.expect("committed snapshot must yield proofs");
        assert_eq!(scored.commitment, commitment);
        for ((record, label), proof) in records.iter().zip(&labels).zip(&scored.proofs) {
            let values = crate::provenance::record_values(record);
            boat_proof::verify_prediction(&commitment, &values, *label, proof).unwrap();
        }
        // A plain submit against the same snapshot carries no proofs.
        let (_, _, none) = engine.submit(vec![rec(2.0)]).unwrap().wait_with_proofs();
        assert!(none.is_none());
        engine.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("boat.proof.proofs"), 3);
        assert!(snap.counter("boat.proof.proof_bytes") > 0);
        assert_eq!(snap.counter("boat.proof.proof_failures"), 0);
    }

    #[test]
    fn proofs_are_absent_when_the_snapshot_has_no_commit() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(handle, schema(), ServeConfig::default());
        let (labels, _, proofs) = engine
            .submit_with_proofs(vec![rec(1.0)])
            .unwrap()
            .wait_with_proofs();
        assert_eq!(labels, vec![0]);
        assert!(proofs.is_none(), "uncommitted snapshot cannot prove");
        engine.shutdown();
    }

    #[test]
    fn metrics_count_batches_and_records() {
        let reg = Registry::new();
        let handle = ModelHandle::with_metrics(compile(&threshold_tree()), reg.clone());
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        for _ in 0..5 {
            engine.submit(vec![rec(1.0), rec(9.0)]).unwrap().wait();
        }
        engine.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.batches"), 5);
        assert_eq!(snap.counter("serve.batches_submitted"), 5);
        assert_eq!(snap.counter("serve.records"), 10);
        assert_eq!(snap.counter("serve.rejected"), 0);
        let h = snap.histogram("serve.batch_size").unwrap();
        assert_eq!((h.count, h.sum), (5, 10));
        assert_eq!(snap.histogram("serve.latency_ns").unwrap().count, 5);
        assert_eq!(snap.gauge("serve.workers"), Some(2));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
        assert_eq!(snap.gauge("serve.shard.depth_max"), Some(0));
    }

    #[test]
    fn drain_waits_for_accepted_tickets() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 2,
                queue_depth: 16,
            },
        );
        let tickets: Vec<Ticket> = (0..32)
            .map(|i| engine.submit(vec![rec(i as f64)]).unwrap())
            .collect();
        engine.drain();
        assert_eq!(engine.queue_depth(), 0);
        // Every ticket is already fulfilled: waits return immediately.
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), vec![u16::from(i as f64 > 5.0)]);
        }
        engine.shutdown();
    }

    #[test]
    fn drop_without_shutdown_drains() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(
            handle,
            schema(),
            ServeConfig {
                workers: 1,
                queue_depth: 8,
            },
        );
        let t = engine.submit(vec![rec(2.0)]).unwrap();
        drop(engine); // Drop impl drains and joins
        assert_eq!(t.wait(), vec![0]);
    }

    #[test]
    fn keyed_submit_and_wrong_schema_rejection() {
        let handle = ModelHandle::new(compile(&threshold_tree()));
        let engine = ServeEngine::start(handle, schema(), ServeConfig::default());
        // "default" is pre-registered.
        assert_eq!(engine.model_keys(), vec!["default".to_string()]);
        let t = engine.submit_to("default", vec![rec(9.0)]).unwrap();
        assert_eq!(t.wait(), vec![1]);
        // Unknown key.
        assert!(matches!(
            engine.submit_to("nope", vec![rec(1.0)]).unwrap_err(),
            DataError::Invalid(_)
        ));
        // Wrong schema: two fields into a one-attribute model.
        assert!(matches!(
            engine
                .submit(vec![Record::new(vec![Field::Num(1.0), Field::Num(2.0)], 0)])
                .unwrap_err(),
            DataError::Schema(_)
        ));
        engine.shutdown();
    }
}
