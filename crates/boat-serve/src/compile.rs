//! The tree compiler: lowering a pointer-chasing [`Tree`] into an
//! immutable, flattened [`CompiledTree`].
//!
//! `Tree` is the *construction* representation — an arena of enum nodes
//! carrying full per-class counts, parents, and depths, optimized for
//! splicing and verification. Serving wants the opposite: a read-only
//! structure-of-arrays where one prediction touches a handful of dense
//! `Vec`s instead of chasing `Node`/`Vec<u64>` allocations, and where the
//! common "go left" step is a `+1` (nodes are laid out in **preorder**, so
//! every internal node's left child is physically adjacent; only the right
//! child needs an explicit index).
//!
//! ## Exactness
//!
//! Compilation is required to be **prediction-exact**: for every record,
//! [`CompiledTree::predict`] and [`CompiledTree::predict_batch`] return
//! exactly what [`Tree::predict`] returns — including the pinned
//! edge-value contract (`boat_tree::model::Predicate::matches`): NaN
//! numeric values fail `X ≤ x` and route right; category codes absent
//! from a splitting subset (including codes never seen at training time)
//! fail `X ∈ Y` and route right. The compiler replicates the *same*
//! IEEE-754 `<=` on the bit-identical split point and the *same* 64-bit
//! mask test, so the agreement is structural, not coincidental — and the
//! differential oracle in `tests/differential.rs` asserts it anyway.
//!
//! Compilation is also **deterministic**: the tables are a pure function
//! of the logical tree (reachable nodes in preorder), so two trees that
//! compare equal under `Tree`'s structural equality compile to
//! byte-identical tables ([`CompiledTree::table_bytes`]).

use crate::block::{Column, RecordBlock};
use boat_data::Record;
use boat_tree::{NodeKind, Predicate, Tree};

/// Per-node operation tag of a compiled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeOp {
    /// Terminal node: predict `label[i]`.
    Leaf = 0,
    /// Numeric split: `value <= threshold[i]` routes to `i + 1`, else to
    /// `right[i]`.
    Num = 1,
    /// Categorical split: `(cat_mask[i] >> code) & 1 == 1` routes to
    /// `i + 1`, else to `right[i]`.
    Cat = 2,
}

/// An immutable, flattened decision tree in structure-of-arrays layout.
///
/// Nodes are stored in preorder: node `0` is the root and the left child
/// of internal node `i` is always `i + 1` (adjacent — the hot "routes
/// left" step is a unit increment with perfect locality). All per-node
/// attributes live in parallel dense arrays, so the traversal loop is a
/// tag dispatch plus one comparison per level with no pointer chasing and
/// no per-prediction allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTree {
    /// Number of class labels (`k`); every `label` entry is `< n_classes`.
    pub(crate) n_classes: u16,
    /// Operation tag per node.
    pub(crate) ops: Vec<NodeOp>,
    /// Splitting attribute per internal node (`u16::MAX` for leaves,
    /// where it is meaningless but kept deterministic for byte-identity).
    pub(crate) split_attr: Vec<u16>,
    /// Numeric split point per `Num` node (bit-identical to the source
    /// tree's `Predicate::NumLe` operand; `0.0` elsewhere).
    pub(crate) threshold: Vec<f64>,
    /// Splitting-subset mask per `Cat` node (the `Predicate::CatIn`
    /// operand's `CatSet::mask()`; `0` elsewhere).
    pub(crate) cat_mask: Vec<u64>,
    /// Right-child index per internal node (`0` for leaves — unambiguous,
    /// since the root is never anyone's right child).
    pub(crate) right: Vec<u32>,
    /// Majority class label per leaf (`0` for internal nodes).
    pub(crate) label: Vec<u16>,
    /// Attributes referenced by at least one `Num` node (sorted, deduped).
    /// Derived from the tables; lets the batch entry point validate the
    /// block/tree agreement **once** so the per-row loops can skip bounds
    /// checks (see `predict_batch_into`).
    num_attrs_used: Vec<u16>,
    /// Attributes referenced by at least one `Cat` node (sorted, deduped).
    cat_attrs_used: Vec<u16>,
    /// Preorder index of the first leaf (every tree has one). Idle lanes
    /// of the fixed-width finisher park here: a `Leaf` op loads no
    /// column and advances nowhere, so a parked lane is a no-op that
    /// keeps the lane loop's trip count fixed. Derived (not serialized
    /// in [`CompiledTree::table_bytes`], like the `*_attrs_used` sets).
    first_leaf: u32,
    /// Canonical 13-byte provenance record per node
    /// ([`boat_proof::NodeRecord`] wire format), emitted during lowering
    /// so Merkle-committing the tree needs no second lowering pass —
    /// `crate::provenance::tree_commit` hands these straight to
    /// [`boat_proof::TreeCommit::from_parts`]. Derived, like
    /// `*_attrs_used` (a pure function of the tables).
    pub(crate) records: Vec<u8>,
    /// Exclusive end of each node's preorder span (its subtree extent) —
    /// the reuse-diff geometry for incremental recommit. Derived.
    pub(crate) span: Vec<u32>,
}

impl CompiledTree {
    /// Lower `tree` into its flattened serving form.
    ///
    /// Leaf labels are materialized from the node family's class counts
    /// with the same tie-breaking rule as `Tree::predict` (smaller class
    /// index wins). Unreachable arena entries (left behind by subtree
    /// replacement) are skipped — the compiled output depends only on the
    /// logical tree.
    pub fn compile(tree: &Tree) -> CompiledTree {
        let ids = tree.preorder_ids();
        let n = ids.len();
        // Map arena id -> compiled (preorder) index.
        let mut index_of = vec![u32::MAX; ids.iter().map(|id| id.index()).max().unwrap_or(0) + 1];
        for (i, id) in ids.iter().enumerate() {
            index_of[id.index()] = i as u32;
        }
        let n_classes = tree.node(tree.root()).class_counts.len() as u16;
        let mut out = CompiledTree {
            n_classes,
            ops: Vec::with_capacity(n),
            split_attr: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            cat_mask: Vec::with_capacity(n),
            right: Vec::with_capacity(n),
            label: Vec::with_capacity(n),
            num_attrs_used: Vec::new(),
            cat_attrs_used: Vec::new(),
            first_leaf: 0,
            records: Vec::with_capacity(n * boat_proof::NODE_RECORD_LEN),
            span: Vec::new(),
        };
        for (i, id) in ids.iter().enumerate() {
            let node = tree.node(*id);
            match &node.kind {
                NodeKind::Leaf => {
                    let label = node.majority_label();
                    out.ops.push(NodeOp::Leaf);
                    out.split_attr.push(u16::MAX);
                    out.threshold.push(0.0);
                    out.cat_mask.push(0);
                    out.right.push(0);
                    out.label.push(label);
                    out.records
                        .extend_from_slice(&boat_proof::NodeRecord::leaf(label).to_bytes());
                }
                NodeKind::Internal { split, left, right } => {
                    debug_assert_eq!(
                        index_of[left.index()] as usize,
                        i + 1,
                        "preorder left child must be adjacent"
                    );
                    let attr = split.attr as u16;
                    let (op, threshold, mask, record) = match split.predicate {
                        Predicate::NumLe(x) => (
                            NodeOp::Num,
                            x,
                            0u64,
                            boat_proof::NodeRecord::num(attr, x.to_bits()),
                        ),
                        Predicate::CatIn(set) => (
                            NodeOp::Cat,
                            0.0,
                            set.mask(),
                            boat_proof::NodeRecord::cat(attr, set.mask()),
                        ),
                    };
                    out.ops.push(op);
                    out.split_attr.push(attr);
                    out.threshold.push(threshold);
                    out.cat_mask.push(mask);
                    out.right.push(index_of[right.index()]);
                    out.label.push(0);
                    out.records.extend_from_slice(&record.to_bytes());
                }
            }
        }
        // Subtree spans, bottom-up (leaf span = self; internal span ends
        // where the right child's span ends).
        out.span = vec![0u32; n];
        for i in (0..n).rev() {
            out.span[i] = match out.ops[i] {
                NodeOp::Leaf => i as u32 + 1,
                _ => out.span[out.right[i] as usize],
            };
        }
        for (i, &op) in out.ops.iter().enumerate() {
            match op {
                NodeOp::Num => out.num_attrs_used.push(out.split_attr[i]),
                NodeOp::Cat => out.cat_attrs_used.push(out.split_attr[i]),
                NodeOp::Leaf => {}
            }
        }
        out.num_attrs_used.sort_unstable();
        out.num_attrs_used.dedup();
        out.cat_attrs_used.sort_unstable();
        out.cat_attrs_used.dedup();
        out.first_leaf = out
            .ops
            .iter()
            .position(|&op| op == NodeOp::Leaf)
            .expect("every tree has at least one leaf") as u32;
        out
    }

    /// Number of class labels.
    pub fn n_classes(&self) -> u16 {
        self.n_classes
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.ops.iter().filter(|&&op| op == NodeOp::Leaf).count()
    }

    /// Predict the class label of one record.
    ///
    /// Agrees with [`Tree::predict`] on every record (the differential
    /// oracle's guarantee), including NaN numeric values and unseen
    /// category codes. Category codes must be `< 64` (the schema bound).
    #[inline]
    pub fn predict(&self, record: &Record) -> u16 {
        let mut i = 0usize;
        loop {
            match self.ops[i] {
                NodeOp::Leaf => return self.label[i],
                NodeOp::Num => {
                    let v = record.num(self.split_attr[i] as usize);
                    i = if v <= self.threshold[i] {
                        i + 1
                    } else {
                        self.right[i] as usize
                    };
                }
                NodeOp::Cat => {
                    let c = record.cat(self.split_attr[i] as usize);
                    i = if (self.cat_mask[i] >> c) & 1 != 0 {
                        i + 1
                    } else {
                        self.right[i] as usize
                    };
                }
            }
        }
    }

    /// Walk the rows of `rows` from `node` to their leaves **in
    /// lockstep**, `LANES` rows at a time: every not-yet-finished row in
    /// a block advances one level per sweep. The row walks are mutually
    /// independent, so the interleaving keeps several table/column loads
    /// in flight at once (memory-level parallelism) instead of
    /// serializing one row's root-to-leaf chain before starting the
    /// next — the finisher for frontier ranges too small to be worth
    /// another partition pass.
    ///
    /// The lane loop is **fixed-width**: every sweep iterates all
    /// `LANES` lanes with a compile-time trip count (no `m` bound, no
    /// early exit inside the loop), which lets the compiler fully unroll
    /// it and keep every lane's loads in flight. Short blocks pad their
    /// idle lanes with [`CompiledTree::first_leaf`] — a parked lane hits
    /// the `Leaf` arm, loads nothing, and stays put, so padding costs
    /// one tag dispatch per sweep instead of a variable bound.
    /// # Safety
    /// Caller must guarantee what `predict_batch_into` validates up
    /// front: every attribute a `Num` node splits on indexes a
    /// `num_cols` slice (and `Cat` a `cat_cols` slice) at least as long
    /// as `out`, and every `rows` value is `< out.len()` (with
    /// `out.len() >= 1`). Node indices are in bounds by construction of
    /// [`CompiledTree::compile`].
    unsafe fn descend_interleaved(
        &self,
        num_cols: &[&[f64]],
        cat_cols: &[&[u32]],
        node: usize,
        rows: &[u32],
        out: &mut [u16],
    ) {
        const LANES: usize = 8;
        for block in rows.chunks(LANES) {
            let m = block.len();
            // Idle lanes park on the first leaf with row id 0 (never
            // dereferenced — the Leaf arm loads no column; row 0 exists
            // regardless, `out` is non-empty).
            let mut cur = [self.first_leaf; LANES];
            let mut row = [0u32; LANES];
            for i in 0..m {
                *cur.get_unchecked_mut(i) = node as u32;
                *row.get_unchecked_mut(i) = *block.get_unchecked(i);
            }
            loop {
                let mut all_leaf = true;
                for i in 0..LANES {
                    let node = *cur.get_unchecked(i) as usize;
                    match *self.ops.get_unchecked(node) {
                        NodeOp::Leaf => {}
                        NodeOp::Num => {
                            all_leaf = false;
                            let a = *self.split_attr.get_unchecked(node) as usize;
                            let v = *num_cols
                                .get_unchecked(a)
                                .get_unchecked(*row.get_unchecked(i) as usize);
                            *cur.get_unchecked_mut(i) = if v <= *self.threshold.get_unchecked(node)
                            {
                                node as u32 + 1
                            } else {
                                *self.right.get_unchecked(node)
                            };
                        }
                        NodeOp::Cat => {
                            all_leaf = false;
                            let a = *self.split_attr.get_unchecked(node) as usize;
                            let c = *cat_cols
                                .get_unchecked(a)
                                .get_unchecked(*row.get_unchecked(i) as usize);
                            *cur.get_unchecked_mut(i) =
                                if (*self.cat_mask.get_unchecked(node) >> c) & 1 != 0 {
                                    node as u32 + 1
                                } else {
                                    *self.right.get_unchecked(node)
                                };
                        }
                    }
                }
                if all_leaf {
                    break;
                }
            }
            for i in 0..m {
                *out.get_unchecked_mut(*row.get_unchecked(i) as usize) =
                    *self.label.get_unchecked(*cur.get_unchecked(i) as usize);
            }
        }
    }

    /// Score a columnar batch, attribute-major.
    ///
    /// Instead of walking root→leaf once per record (touching every level's
    /// scattered state per row), the batch is partitioned *node by node*:
    /// each compiled node sees the contiguous slice of row ids that reached
    /// it and scans exactly **one** attribute column for all of them before
    /// any child runs. Work is proportional to total path length — the same
    /// as per-record traversal — but each step is a tight loop over one
    /// dense column, which is the layout this workspace's columnar engines
    /// have repeatedly measured as the winning shape. Once a frontier
    /// range shrinks below a small cutoff (deep tails of bushy trees,
    /// where per-node partition bookkeeping would dominate), the
    /// remaining rows finish with a direct column-walk to their leaves.
    ///
    /// Returns one label per row, in input order. Predictions are exactly
    /// [`CompiledTree::predict`] per record.
    ///
    /// Allocates fresh working buffers; steady-state callers (the serve
    /// engine's workers, benchmark loops) should hold a [`BatchScratch`]
    /// and call [`CompiledTree::predict_batch_into`] instead.
    pub fn predict_batch(&self, block: &RecordBlock) -> Vec<u16> {
        let mut scratch = BatchScratch::default();
        let mut labels = Vec::new();
        self.predict_batch_into(block, &mut scratch, &mut labels);
        labels
    }

    /// [`CompiledTree::predict_batch`] with caller-owned buffers: `out`
    /// is cleared and filled with one label per row in input order; all
    /// working memory comes from (and stays in) `scratch`, so a scoring
    /// loop allocates only on its first and largest batch.
    pub fn predict_batch_into(
        &self,
        block: &RecordBlock,
        scratch: &mut BatchScratch,
        out: &mut Vec<u16>,
    ) {
        /// Below this many rows, stop partitioning and walk each row down.
        const TAIL_CUTOFF: usize = 8;
        let n = block.n_rows();
        out.clear();
        out.resize(n, 0);
        if n == 0 {
            return;
        }
        // Resolve every column to a typed slice once per batch; the hot
        // loops below index these directly (empty slice for the other
        // type — unreachable for a well-typed tree/schema pair).
        let n_attrs = block.n_columns();
        let mut num_cols: Vec<&[f64]> = Vec::with_capacity(n_attrs);
        let mut cat_cols: Vec<&[u32]> = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            match block.column(a) {
                Column::Num(v) => {
                    num_cols.push(v);
                    cat_cols.push(&[]);
                }
                Column::Cat(v) => {
                    num_cols.push(&[]);
                    cat_cols.push(v);
                }
            }
        }
        // Validate the tree/block agreement ONCE, so the per-row loops
        // below can use unchecked indexing:
        //   * every attribute a `Num` node splits on is a numeric column
        //     of length `n`, and likewise for `Cat` nodes — so
        //     `col.get_unchecked(row)` is in bounds for any `row < n`;
        //   * `rows` holds exactly the permutation of `0..n` (built here,
        //     only ever swapped in place);
        //   * node indices are in bounds by construction of `compile`
        //     (`right[i] < n_nodes`, and `i + 1 < n_nodes` for internal
        //     nodes, since preorder puts the left child at `i + 1`).
        for &a in &self.num_attrs_used {
            assert!(
                num_cols.get(a as usize).is_some_and(|c| c.len() == n),
                "tree splits numerically on attribute {a}, but the block's \
                 column {a} is not numeric with {n} rows"
            );
        }
        for &a in &self.cat_attrs_used {
            assert!(
                cat_cols.get(a as usize).is_some_and(|c| c.len() == n),
                "tree splits categorically on attribute {a}, but the block's \
                 column {a} is not categorical with {n} rows"
            );
        }
        let BatchScratch { rows, stack } = scratch;
        rows.clear();
        rows.extend(0..n as u32);
        stack.clear();
        // Explicit DFS over (node, row range). Ranges index into `rows`,
        // which is re-partitioned in place at every internal node with a
        // two-pointer sweep (unstable — row order inside a range is
        // irrelevant, since labels are written by row id).
        stack.push((0, 0, n as u32));
        while let Some((node, start, end)) = stack.pop() {
            let (node, start, end) = (node as usize, start as usize, end as usize);
            if end - start <= TAIL_CUTOFF && self.ops[node] != NodeOp::Leaf {
                // SAFETY: column/row invariants validated at entry (above).
                unsafe {
                    self.descend_interleaved(&num_cols, &cat_cols, node, &rows[start..end], out);
                }
                continue;
            }
            match self.ops[node] {
                NodeOp::Leaf => {
                    let lab = self.label[node];
                    for &r in &rows[start..end] {
                        out[r as usize] = lab;
                    }
                }
                NodeOp::Num => {
                    let col = num_cols[self.split_attr[node] as usize];
                    let t = self.threshold[node];
                    // Two-pointer in-place partition: left-routed rows end
                    // up in `start..l`, right-routed in `l..end`. NaN
                    // fails `<=` and lands right — same rule as
                    // `Predicate::matches`.
                    let mut l = start;
                    let mut r = end;
                    while l < r {
                        // SAFETY: `start <= l < r <= end <= rows.len()`,
                        // and every `rows` value is `< n == col.len()`
                        // (validated above).
                        unsafe {
                            let row = *rows.get_unchecked(l);
                            if *col.get_unchecked(row as usize) <= t {
                                l += 1;
                            } else {
                                r -= 1;
                                *rows.get_unchecked_mut(l) = *rows.get_unchecked(r);
                                *rows.get_unchecked_mut(r) = row;
                            }
                        }
                    }
                    if l < end {
                        stack.push((self.right[node], l as u32, end as u32));
                    }
                    if start < l {
                        stack.push((node as u32 + 1, start as u32, l as u32));
                    }
                }
                NodeOp::Cat => {
                    let col = cat_cols[self.split_attr[node] as usize];
                    let mask = self.cat_mask[node];
                    let mut l = start;
                    let mut r = end;
                    while l < r {
                        // SAFETY: same bounds argument as the `Num` arm.
                        unsafe {
                            let row = *rows.get_unchecked(l);
                            if (mask >> *col.get_unchecked(row as usize)) & 1 != 0 {
                                l += 1;
                            } else {
                                r -= 1;
                                *rows.get_unchecked_mut(l) = *rows.get_unchecked(r);
                                *rows.get_unchecked_mut(r) = row;
                            }
                        }
                    }
                    if l < end {
                        stack.push((self.right[node], l as u32, end as u32));
                    }
                    if start < l {
                        stack.push((node as u32 + 1, start as u32, l as u32));
                    }
                }
            }
        }
    }

    /// A canonical byte serialization of every table, in declaration
    /// order. Two compiled trees are byte-identical here iff their logical
    /// source trees are structurally equal — the form the model-IO and
    /// torn-state regressions compare.
    pub fn table_bytes(&self) -> Vec<u8> {
        let n = self.n_nodes();
        let mut out = Vec::with_capacity(8 + n * 23);
        out.extend_from_slice(&self.n_classes.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for &op in &self.ops {
            out.push(op as u8);
        }
        for &a in &self.split_attr {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &t in &self.threshold {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        for &m in &self.cat_mask {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for &r in &self.right {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &l in &self.label {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Approximate resident size of the tables in bytes (capacity
    /// excluded) — surfaced by the serving metrics.
    pub fn table_size_bytes(&self) -> usize {
        self.ops.len() * (1 + 2 + 8 + 8 + 4 + 2) + 2
    }
}

/// Reusable working buffers for [`CompiledTree::predict_batch_into`].
///
/// Holds the frontier row-id permutation, the right-side spill buffer,
/// and the DFS stack. Buffers grow to the largest batch scored through
/// them and are then reused allocation-free; one scratch per scoring
/// thread (they are cheap and `Send`, not shared).
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// Row ids, re-partitioned in place as the frontier descends.
    rows: Vec<u32>,
    /// DFS worklist of `(node, start, end)` ranges.
    stack: Vec<(u32, u32, u32)>,
}

/// Convenience free function: [`CompiledTree::compile`].
pub fn compile(tree: &Tree) -> CompiledTree {
    CompiledTree::compile(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::{Attribute, Field, Schema};
    use boat_tree::{CatSet, Split};

    fn schema() -> Schema {
        Schema::new(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 4)],
            2,
        )
        .unwrap()
    }

    fn rec(x: f64, c: u32) -> Record {
        Record::new(vec![Field::Num(x), Field::Cat(c)], 0)
    }

    /// x <= 5 ? (c in {1,3} ? [4,0] : [0,2]) : [2,2]
    fn sample_tree() -> Tree {
        let mut t = Tree::leaf(vec![6, 4]);
        let (l, _r) = t.split_node(
            t.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(5.0),
            },
            vec![4, 2],
            vec![2, 2],
        );
        t.split_node(
            l,
            Split {
                attr: 1,
                predicate: Predicate::CatIn(CatSet::from_iter([1, 3])),
            },
            vec![4, 0],
            vec![0, 2],
        );
        t
    }

    #[test]
    fn compiles_preorder_with_adjacent_left_children() {
        let c = CompiledTree::compile(&sample_tree());
        assert_eq!(c.n_nodes(), 5);
        assert_eq!(c.n_leaves(), 3);
        assert_eq!(c.n_classes(), 2);
        // Preorder: root(Num), left(Cat), leaf, leaf, right leaf.
        assert_eq!(
            c.ops,
            vec![
                NodeOp::Num,
                NodeOp::Cat,
                NodeOp::Leaf,
                NodeOp::Leaf,
                NodeOp::Leaf
            ]
        );
        assert_eq!(c.right, vec![4, 3, 0, 0, 0]);
        assert_eq!(c.split_attr[..2], [0, 1]);
        assert_eq!(c.threshold[0], 5.0);
        assert_eq!(c.cat_mask[1], CatSet::from_iter([1, 3]).mask());
        assert_eq!(c.label, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn predict_matches_interpreted_tree() {
        let t = sample_tree();
        let c = CompiledTree::compile(&t);
        for (x, cat) in [
            (3.0, 1u32),
            (3.0, 0),
            (9.0, 1),
            (5.0, 0),
            (5.0, 3),
            (f64::NAN, 1),
            (f64::INFINITY, 3),
            (f64::NEG_INFINITY, 0),
            (3.0, 2), // unseen-at-training category
        ] {
            let r = rec(x, cat);
            assert_eq!(c.predict(&r), t.predict(&r), "x={x} c={cat}");
        }
    }

    #[test]
    fn predict_batch_matches_predict_in_input_order() {
        let t = sample_tree();
        let c = CompiledTree::compile(&t);
        let records: Vec<Record> = (0..64)
            .map(|i| {
                let x = if i % 13 == 0 {
                    f64::NAN
                } else {
                    (i % 11) as f64
                };
                rec(x, (i % 4) as u32)
            })
            .collect();
        let block = RecordBlock::from_records(&schema(), &records);
        let batch = c.predict_batch(&block);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(batch[i], c.predict(r), "row {i}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let c = CompiledTree::compile(&sample_tree());
        let block = RecordBlock::from_records(&schema(), &[]);
        assert!(c.predict_batch(&block).is_empty());
    }

    #[test]
    fn single_leaf_tree_predicts_majority() {
        let c = CompiledTree::compile(&Tree::leaf(vec![1, 5, 5]));
        assert_eq!(c.n_nodes(), 1);
        // Tie between classes 1 and 2 breaks low → 1.
        assert_eq!(c.predict(&rec(0.0, 0)), 1);
    }

    #[test]
    fn table_bytes_identical_for_equal_trees_only() {
        let a = CompiledTree::compile(&sample_tree());
        // Same logical tree via a replace+compact cycle (different arena).
        let mut t = sample_tree();
        let sub = sample_tree();
        t.replace_subtree(t.root(), &sub);
        let b = CompiledTree::compile(&t);
        assert_eq!(a.table_bytes(), b.table_bytes());
        assert_eq!(a, b);
        // A different split point must change the bytes.
        let mut t2 = Tree::leaf(vec![6, 4]);
        t2.split_node(
            t2.root(),
            Split {
                attr: 0,
                predicate: Predicate::NumLe(6.0),
            },
            vec![4, 2],
            vec![2, 2],
        );
        assert_ne!(a.table_bytes(), CompiledTree::compile(&t2).table_bytes());
    }
}
