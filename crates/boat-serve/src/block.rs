//! Columnar record batches for scoring.
//!
//! [`RecordBlock`] transposes a micro-batch of row-oriented [`Record`]s
//! into one dense column per schema attribute — the same
//! structure-of-arrays shape as `boat_tree::columnar`'s sample engine,
//! reused here on the read path. [`crate::CompiledTree::predict_batch`]
//! walks these columns attribute-major: each tree node scans exactly one
//! column for the rows that reached it.

use boat_data::{AttrType, Field, Record, Schema};

/// One dense attribute column of a [`RecordBlock`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric attribute values (NaN allowed at prediction time).
    Num(Vec<f64>),
    /// Categorical category codes.
    Cat(Vec<u32>),
}

/// A columnar micro-batch: `n_rows` records transposed into per-attribute
/// columns in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBlock {
    n_rows: usize,
    columns: Vec<Column>,
}

impl RecordBlock {
    /// Transpose `records` (each conforming to `schema`'s field shape)
    /// into dense columns. One row-major pass: each record's field slice
    /// is visited exactly once, appending to every column in schema order
    /// (cheaper than one column-major pass per attribute, which would
    /// re-chase every record's field allocation once per column).
    ///
    /// # Panics
    /// Panics if a record's field shape disagrees with the schema (same
    /// contract as `Record::num`/`Record::cat`).
    pub fn from_records(schema: &Schema, records: &[Record]) -> RecordBlock {
        let n = records.len();
        let mut columns: Vec<Column> = schema
            .attributes()
            .iter()
            .map(|attr| match attr.ty() {
                AttrType::Numeric => Column::Num(Vec::with_capacity(n)),
                AttrType::Categorical { .. } => Column::Cat(Vec::with_capacity(n)),
            })
            .collect();
        for r in records {
            assert_eq!(
                r.fields().len(),
                columns.len(),
                "record width disagrees with schema"
            );
            for (col, field) in columns.iter_mut().zip(r.fields()) {
                match (col, *field) {
                    (Column::Num(v), Field::Num(x)) => v.push(x),
                    (Column::Cat(v), Field::Cat(c)) => v.push(c),
                    _ => panic!("record field type disagrees with schema"),
                }
            }
        }
        RecordBlock { n_rows: n, columns }
    }

    /// Number of rows in the batch.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attribute columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column of attribute `attr`.
    #[inline]
    pub fn column(&self, attr: usize) -> &Column {
        &self.columns[attr]
    }
}

/// Convenience for tests and benches: transpose and keep the originals.
impl From<(&Schema, &[Record])> for RecordBlock {
    fn from((schema, records): (&Schema, &[Record])) -> Self {
        RecordBlock::from_records(schema, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_data::{Attribute, Field};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::numeric("x"),
                Attribute::categorical("c", 4),
                Attribute::numeric("y"),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn transposes_in_schema_order() {
        let records = vec![
            Record::new(vec![Field::Num(1.0), Field::Cat(2), Field::Num(-3.5)], 0),
            Record::new(
                vec![Field::Num(f64::NAN), Field::Cat(0), Field::Num(7.0)],
                1,
            ),
        ];
        let block = RecordBlock::from_records(&schema(), &records);
        assert_eq!(block.n_rows(), 2);
        assert_eq!(block.n_columns(), 3);
        match block.column(0) {
            Column::Num(v) => {
                assert_eq!(v[0], 1.0);
                assert!(v[1].is_nan());
            }
            _ => panic!("column 0 is numeric"),
        }
        assert_eq!(block.column(1), &Column::Cat(vec![2, 0]));
        assert_eq!(block.column(2), &Column::Num(vec![-3.5, 7.0]));
    }

    #[test]
    fn empty_batch_has_empty_columns() {
        let block = RecordBlock::from_records(&schema(), &[]);
        assert_eq!(block.n_rows(), 0);
        assert_eq!(block.column(0), &Column::Num(vec![]));
    }
}
