//! Serve-side wiring for the streaming write path.
//!
//! [`spawn_streaming`] closes the loop that `publish_on_maintain` opened:
//! the [`StreamingBoat`] daemon owns the model, every trigger-driven
//! maintain republishes through the model's publish hook, and the
//! returned daemon carries the [`ModelHandle`] as its publication token —
//! [`StreamingBoat::handle`] *is* the handle scorer threads (and a
//! [`crate::ServeEngine`]) read from, so the serve engine and the daemon
//! share one publication path and epochs advance automatically with the
//! stream.

use crate::handle::{publish_on_maintain, ModelHandle};
use crate::provenance::{tree_commit, tree_commit_reusing, LedgerSink, ProvenanceLedger};
use boat_core::stream::{StreamConfig, StreamingBoat};
use boat_core::BoatModel;
use boat_data::audit::AuditLog;
use boat_data::Result;
use boat_obs::latency_bounds_ns;
use boat_tree::Impurity;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Spawn the streaming daemon over `model`, publishing every maintained
/// tree to a fresh [`ModelHandle`] (registered in the model's metrics
/// registry). The model's current tree is compiled and published before
/// the daemon starts, so readers never observe an empty handle; each
/// subsequent maintain that materializes a fresh exact tree bumps the
/// epoch.
///
/// Access the handle via [`StreamingBoat::handle`] — clone it into scorer
/// threads or hand it to a [`crate::ServeEngine`].
pub fn spawn_streaming<I: Impurity + Clone + Send + 'static>(
    mut model: BoatModel<I>,
    config: StreamConfig,
) -> Result<StreamingBoat<I, ModelHandle>> {
    let metrics = model.metrics().clone();
    let handle = {
        // Compile the current tree under the model's registry so
        // serve.compile spans and serve.epoch land beside boat.stream.*.
        let span = metrics.span("serve.compile");
        let compiled = crate::compile(model.tree()?);
        span.finish();
        ModelHandle::with_metrics(compiled, metrics)
    };
    publish_on_maintain(&mut model, &handle)?;
    StreamingBoat::spawn_with_publication(model, config, handle)
}

/// Provenance knobs for [`spawn_streaming_committed`].
#[derive(Debug, Clone, Default)]
pub struct ProvenanceConfig {
    /// Where to persist the epoch chain's audit log
    /// ([`boat_data::audit`]); `None` keeps the chain in memory only.
    pub audit_path: Option<PathBuf>,
}

/// [`spawn_streaming`] with authenticated provenance: every published
/// snapshot carries its Merkle commitment, every absorbed WAL operation
/// feeds the pending delta digest, and every maintain seals a chained
/// epoch fingerprint into the returned [`ProvenanceLedger`] (and, if
/// configured, a durable audit log).
///
/// Alignment invariant: the [`ModelHandle`] publication epoch and the
/// ledger's chain epoch advance in lockstep — the initial tree is
/// published *with its commit* as epoch 0 / chain genesis, and each
/// maintain publishes epoch `N` then seals chain epoch `N` over the same
/// Merkle root. A prediction served at handle epoch `N` therefore
/// verifies against `ledger.entries()[N].model_root`.
///
/// Per-epoch cost is recorded under `boat.proof.*`: `commit_ns` (the
/// incremental recommit), `commits`, and `nodes_reused` (subtree hashes
/// block-copied from the previous epoch's commit).
pub fn spawn_streaming_committed<I: Impurity + Clone + Send + 'static>(
    mut model: BoatModel<I>,
    mut config: StreamConfig,
    provenance: ProvenanceConfig,
) -> Result<(StreamingBoat<I, ModelHandle>, ProvenanceLedger)> {
    let metrics = model.metrics().clone();
    let handle = {
        let span = metrics.span("serve.compile");
        let compiled = crate::compile(model.tree()?);
        span.finish();
        let t0 = Instant::now();
        let commit = tree_commit(&compiled).map_err(|e| {
            boat_data::DataError::Invalid(format!("initial tree commit failed: {e}"))
        })?;
        metrics
            .histogram_with("boat.proof.commit_ns", &latency_bounds_ns())
            .record(t0.elapsed().as_nanos() as u64);
        metrics.counter("boat.proof.commits").inc();
        ModelHandle::with_metrics_committed(compiled, Arc::new(commit), metrics.clone())
    };
    let audit = provenance.audit_path.map(AuditLog::create).transpose()?;
    let root = handle.commitment().expect("published with a commit");
    let ledger = ProvenanceLedger::genesis(root, audit)?;

    // The publish hook replaces publish_on_maintain's: compile, recommit
    // incrementally against the previous epoch's commit, publish tree +
    // commit as one record, then seal the chain epoch over the new root.
    // All on the daemon thread, inside `BoatModel::maintain`.
    let hook_handle = handle.clone();
    let hook_ledger = ledger.clone();
    model.set_publish_hook(move |tree| {
        let metrics = hook_handle.metrics().clone();
        let span = metrics.span("serve.compile");
        let compiled = crate::compile(tree);
        span.finish();
        let t0 = Instant::now();
        let commit = match hook_handle.commit() {
            Some(prev) => tree_commit_reusing(&compiled, &prev),
            None => tree_commit(&compiled),
        };
        match commit {
            Ok(commit) => {
                metrics
                    .histogram_with("boat.proof.commit_ns", &latency_bounds_ns())
                    .record(t0.elapsed().as_nanos() as u64);
                metrics.counter("boat.proof.commits").inc();
                metrics
                    .counter("boat.proof.nodes_reused")
                    .add(commit.reused_nodes() as u64);
                let root = commit.root();
                hook_handle.publish_committed(compiled, Arc::new(commit));
                hook_ledger.seal(root);
            }
            Err(_) => {
                // Committing a well-formed compiled tree cannot fail; if
                // it ever does, keep serving (uncommitted) and count it.
                metrics.counter("boat.proof.commit_errors").inc();
                hook_handle.publish(compiled);
            }
        }
    });
    config.provenance = Some(Box::new(LedgerSink::new(ledger.clone())));
    let streaming = StreamingBoat::spawn_with_publication(model, config, handle)?;
    Ok((streaming, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_core::{Boat, BoatConfig};
    use boat_data::{Attribute, Field, IoStats, MemoryDataset, Record, Schema};

    fn dataset(n: usize) -> MemoryDataset {
        let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
        let records = (0..n)
            .map(|i| {
                let x = i as f64;
                Record::new(vec![Field::Num(x)], u16::from(x >= n as f64 / 2.0))
            })
            .collect();
        MemoryDataset::with_stats(schema, records, IoStats::new())
    }

    #[test]
    fn epochs_advance_with_the_stream() {
        let base = dataset(1_500);
        let config = BoatConfig {
            seed: 7,
            sample_size: 1_200,
            bootstrap_reps: 10,
            bootstrap_sample_size: 500,
            in_memory_threshold: 400,
            ..BoatConfig::default()
        };
        let algo = Boat::new(config);
        let (model, _) = algo.fit_model(&base).unwrap();
        let streaming = spawn_streaming(
            model,
            StreamConfig {
                staleness: boat_core::StalenessBound {
                    max_records: 64,
                    max_age: None,
                },
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let handle = streaming.handle().clone();
        // Epoch 0 is the handle's initial tree; publish_on_maintain
        // republishes the same tree as epoch 1 when installing the hook.
        let start_epoch = handle.epoch();
        assert!(start_epoch >= 1, "current tree published before spawn");
        let mut reader = handle.reader();
        let (_, e0) = reader.current();
        assert_eq!(e0, start_epoch);
        // Stream enough records to trip the record-count trigger.
        for batch in 0..4 {
            let records = (0..64)
                .map(|i| Record::new(vec![Field::Num((2_000 + batch * 64 + i) as f64)], 1))
                .collect();
            streaming.insert(records).unwrap();
        }
        let report = streaming.quiesce().unwrap();
        assert!(report.stats.maintains >= 1);
        assert_eq!(report.stats.bound_violations, 0);
        assert!(
            handle.epoch() > start_epoch,
            "maintains must republish through the shared handle"
        );
        // The published snapshot is the daemon's exact tree.
        let (model, _) = streaming.finish().unwrap();
        let mut model = model;
        let tree = model.tree().unwrap();
        let published = handle.snapshot();
        assert_eq!(
            published.table_bytes(),
            crate::compile(tree).table_bytes(),
            "served snapshot must be the compiled exact tree"
        );
    }
}
