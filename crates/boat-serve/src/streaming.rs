//! Serve-side wiring for the streaming write path.
//!
//! [`spawn_streaming`] closes the loop that `publish_on_maintain` opened:
//! the [`StreamingBoat`] daemon owns the model, every trigger-driven
//! maintain republishes through the model's publish hook, and the
//! returned daemon carries the [`ModelHandle`] as its publication token —
//! [`StreamingBoat::handle`] *is* the handle scorer threads (and a
//! [`crate::ServeEngine`]) read from, so the serve engine and the daemon
//! share one publication path and epochs advance automatically with the
//! stream.

use crate::handle::{publish_on_maintain, ModelHandle};
use boat_core::stream::{StreamConfig, StreamingBoat};
use boat_core::BoatModel;
use boat_data::Result;
use boat_tree::Impurity;

/// Spawn the streaming daemon over `model`, publishing every maintained
/// tree to a fresh [`ModelHandle`] (registered in the model's metrics
/// registry). The model's current tree is compiled and published before
/// the daemon starts, so readers never observe an empty handle; each
/// subsequent maintain that materializes a fresh exact tree bumps the
/// epoch.
///
/// Access the handle via [`StreamingBoat::handle`] — clone it into scorer
/// threads or hand it to a [`crate::ServeEngine`].
pub fn spawn_streaming<I: Impurity + Clone + Send + 'static>(
    mut model: BoatModel<I>,
    config: StreamConfig,
) -> Result<StreamingBoat<I, ModelHandle>> {
    let metrics = model.metrics().clone();
    let handle = {
        // Compile the current tree under the model's registry so
        // serve.compile spans and serve.epoch land beside boat.stream.*.
        let span = metrics.span("serve.compile");
        let compiled = crate::compile(model.tree()?);
        span.finish();
        ModelHandle::with_metrics(compiled, metrics)
    };
    publish_on_maintain(&mut model, &handle)?;
    StreamingBoat::spawn_with_publication(model, config, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_core::{Boat, BoatConfig};
    use boat_data::{Attribute, Field, IoStats, MemoryDataset, Record, Schema};

    fn dataset(n: usize) -> MemoryDataset {
        let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
        let records = (0..n)
            .map(|i| {
                let x = i as f64;
                Record::new(vec![Field::Num(x)], u16::from(x >= n as f64 / 2.0))
            })
            .collect();
        MemoryDataset::with_stats(schema, records, IoStats::new())
    }

    #[test]
    fn epochs_advance_with_the_stream() {
        let base = dataset(1_500);
        let config = BoatConfig {
            seed: 7,
            sample_size: 1_200,
            bootstrap_reps: 10,
            bootstrap_sample_size: 500,
            in_memory_threshold: 400,
            ..BoatConfig::default()
        };
        let algo = Boat::new(config);
        let (model, _) = algo.fit_model(&base).unwrap();
        let streaming = spawn_streaming(
            model,
            StreamConfig {
                staleness: boat_core::StalenessBound {
                    max_records: 64,
                    max_age: None,
                },
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let handle = streaming.handle().clone();
        // Epoch 0 is the handle's initial tree; publish_on_maintain
        // republishes the same tree as epoch 1 when installing the hook.
        let start_epoch = handle.epoch();
        assert!(start_epoch >= 1, "current tree published before spawn");
        let mut reader = handle.reader();
        let (_, e0) = reader.current();
        assert_eq!(e0, start_epoch);
        // Stream enough records to trip the record-count trigger.
        for batch in 0..4 {
            let records = (0..64)
                .map(|i| Record::new(vec![Field::Num((2_000 + batch * 64 + i) as f64)], 1))
                .collect();
            streaming.insert(records).unwrap();
        }
        let report = streaming.quiesce().unwrap();
        assert!(report.stats.maintains >= 1);
        assert_eq!(report.stats.bound_violations, 0);
        assert!(
            handle.epoch() > start_epoch,
            "maintains must republish through the shared handle"
        );
        // The published snapshot is the daemon's exact tree.
        let (model, _) = streaming.finish().unwrap();
        let mut model = model;
        let tree = model.tree().unwrap();
        let published = handle.snapshot();
        assert_eq!(
            published.table_bytes(),
            crate::compile(tree).table_bytes(),
            "served snapshot must be the compiled exact tree"
        );
    }
}
