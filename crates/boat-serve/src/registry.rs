//! Multi-model registry: many schemas/tenants behind one serve engine.
//!
//! Each registered model pairs a [`ModelHandle`] (its epoch-stamped
//! publication slot) with the [`Schema`] its batches must conform to.
//! Submits resolve the key to an [`Arc<ModelEntry>`] **once** and pin the
//! entry into the job, so a concurrent evict never strands an accepted
//! ticket — the worker scores against the pinned entry and the model's
//! memory is freed by the last `Arc` drop. Epochs are per-handle, so
//! publishing model A never moves model B's epoch.
//!
//! Entries carry a registry-unique `id` that survives evict/re-register
//! cycles; scorer workers key their per-thread [`SnapshotReader`] caches
//! on it, which makes cache hits a linear scan over a couple of integers
//! and never aliases a stale reader onto a re-registered key.

use crate::handle::ModelHandle;
use boat_data::{DataError, Field, Record, Result, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One registered model: publication handle + the schema its batches
/// must match.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry-unique id (never reused, even across evict/re-register).
    id: u64,
    key: String,
    handle: ModelHandle,
    schema: Arc<Schema>,
}

impl ModelEntry {
    /// Registry-unique id for this registration.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The key this entry was registered under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The model's publication handle.
    pub fn handle(&self) -> &ModelHandle {
        &self.handle
    }

    /// The schema submitted batches must conform to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Check `records` against this entry's schema: every record must
    /// have one field per attribute with matching types. Returns
    /// [`DataError::Schema`] naming the first offending record.
    pub fn validate(&self, records: &[Record]) -> Result<()> {
        let attrs = self.schema.attributes();
        for (row, r) in records.iter().enumerate() {
            let fields = r.fields();
            if fields.len() != attrs.len() {
                return Err(DataError::Schema(format!(
                    "model '{}': record {row} has {} fields, schema expects {}",
                    self.key,
                    fields.len(),
                    attrs.len()
                )));
            }
            for (col, (field, attr)) in fields.iter().zip(attrs).enumerate() {
                let ok = match field {
                    Field::Num(_) => attr.ty().is_numeric(),
                    Field::Cat(_) => attr.ty().is_categorical(),
                };
                if !ok {
                    return Err(DataError::Schema(format!(
                        "model '{}': record {row} field {col} type disagrees with \
                         attribute '{}'",
                        self.key,
                        attr.name()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A concurrent key → model map shared by submitters and the engine.
///
/// Lookups take a read lock (uncontended in steady state — the engine's
/// default-model fast path bypasses the registry entirely); register and
/// evict take the write lock briefly.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    next_id: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Register `handle` under `key`, replacing any previous entry with
    /// that key (in-flight tickets against the old entry still complete
    /// — they pinned it at submit time). Returns the new entry.
    pub fn register(&self, key: &str, handle: ModelHandle, schema: Arc<Schema>) -> Arc<ModelEntry> {
        let entry = Arc::new(ModelEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            key: key.to_string(),
            handle,
            schema,
        });
        self.models
            .write()
            .unwrap()
            .insert(key.to_string(), Arc::clone(&entry));
        entry
    }

    /// Remove `key`; returns the evicted entry if it existed. Tickets
    /// already accepted against it are unaffected.
    pub fn evict(&self, key: &str) -> Option<Arc<ModelEntry>> {
        self.models.write().unwrap().remove(key)
    }

    /// Resolve `key` to its entry.
    pub fn get(&self, key: &str) -> Option<Arc<ModelEntry>> {
        self.models.read().unwrap().get(key).cloned()
    }

    /// Resolve `key` or fail with a typed error naming it.
    pub fn resolve(&self, key: &str) -> Result<Arc<ModelEntry>> {
        self.get(key)
            .ok_or_else(|| DataError::Invalid(format!("no model registered under key '{key}'")))
    }

    /// Registered keys, sorted (diagnostics).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.models.read().unwrap().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use boat_data::Attribute;
    use boat_tree::Tree;

    fn schema_num() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attribute::numeric("x")], 2).unwrap())
    }

    fn schema_cat() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attribute::categorical("c", 4)], 2).unwrap())
    }

    fn handle() -> ModelHandle {
        ModelHandle::new(compile(&Tree::leaf(vec![1, 0])))
    }

    #[test]
    fn register_get_evict_roundtrip() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let entry = reg.register("a", handle(), schema_num());
        assert_eq!(reg.get("a").unwrap().id(), entry.id());
        assert_eq!(reg.keys(), vec!["a".to_string()]);
        assert!(reg.evict("a").is_some());
        assert!(reg.get("a").is_none());
        assert!(reg.evict("a").is_none());
    }

    #[test]
    fn reregister_gets_fresh_id() {
        let reg = ModelRegistry::new();
        let first = reg.register("a", handle(), schema_num());
        reg.evict("a");
        let second = reg.register("a", handle(), schema_num());
        assert_ne!(first.id(), second.id());
    }

    #[test]
    fn resolve_unknown_key_is_typed_error() {
        let reg = ModelRegistry::new();
        let err = reg.resolve("missing").unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)));
    }

    #[test]
    fn validate_rejects_wrong_width_and_type() {
        let reg = ModelRegistry::new();
        let entry = reg.register("a", handle(), schema_num());
        // Conforming record passes.
        entry
            .validate(&[Record::new(vec![Field::Num(1.0)], 0)])
            .unwrap();
        // Wrong width.
        let err = entry
            .validate(&[Record::new(vec![Field::Num(1.0), Field::Num(2.0)], 0)])
            .unwrap_err();
        assert!(matches!(err, DataError::Schema(_)));
        // Wrong field type (categorical into numeric attribute).
        let err = entry
            .validate(&[Record::new(vec![Field::Cat(1)], 0)])
            .unwrap_err();
        assert!(matches!(err, DataError::Schema(_)));
        // And the mirror image against a categorical schema.
        let cat = reg.register("c", handle(), schema_cat());
        let err = cat
            .validate(&[Record::new(vec![Field::Num(0.5)], 0)])
            .unwrap_err();
        assert!(matches!(err, DataError::Schema(_)));
    }
}
