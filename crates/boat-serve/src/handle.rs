//! Snapshot publication: epoch-versioned atomic swapping of compiled
//! trees between one maintainer and any number of scorer threads.
//!
//! The serving invariant is the read-path mirror of BOAT's exact-tree
//! guarantee: **every prediction is computed against one consistent
//! compiled tree** — either the pre-maintenance or the post-maintenance
//! snapshot, never a torn mix — while `BoatModel::maintain` runs
//! concurrently and publishes its result the instant it materializes.
//!
//! The mechanism is deliberately boring (std-only, no epoch GC, no
//! hazard pointers): the current snapshot is an `Arc<CompiledTree>`
//! behind a `Mutex`. Readers take the lock only long enough to clone the
//! `Arc` (one refcount increment — nanoseconds; no reader ever waits on
//! compilation, maintenance, or another reader's scoring), then score
//! entirely outside the lock. Writers swap the `Arc` and bump a
//! monotonically increasing **epoch** under the same lock, so
//! `(snapshot, epoch)` pairs read under the lock are always mutually
//! consistent. Old snapshots stay alive exactly as long as some reader
//! still holds them and are freed by the last `Arc` drop — the classic
//! RCU shape with reference counting as the grace period.

use crate::compile::{compile, CompiledTree};
use boat_core::BoatModel;
use boat_obs::Registry;
use boat_tree::Impurity;
use std::sync::{Arc, Mutex};

struct HandleInner {
    /// The current snapshot plus its epoch, swapped together.
    current: Mutex<(Arc<CompiledTree>, u64)>,
    /// Metrics sink (`serve.snapshot_swaps`, `serve.epoch`,
    /// `serve.model_bytes`, `serve.compile` span).
    metrics: Registry,
}

/// A cheaply clonable handle to the currently published [`CompiledTree`].
///
/// Clone freely into scorer threads, the serving engine, and the
/// maintenance thread — all clones observe the same publication state.
#[derive(Clone)]
pub struct ModelHandle {
    inner: Arc<HandleInner>,
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (tree, epoch) = self.snapshot_with_epoch();
        f.debug_struct("ModelHandle")
            .field("epoch", &epoch)
            .field("n_nodes", &tree.n_nodes())
            .finish()
    }
}

impl ModelHandle {
    /// Publish `initial` as epoch 0 with a private metrics registry.
    pub fn new(initial: CompiledTree) -> ModelHandle {
        Self::with_metrics(initial, Registry::new())
    }

    /// Publish `initial` as epoch 0, recording swap/epoch metrics into
    /// `metrics` (pass `boat_obs::Registry::global().clone()` for one
    /// process-wide namespace).
    pub fn with_metrics(initial: CompiledTree, metrics: Registry) -> ModelHandle {
        metrics.gauge("serve.epoch").set(0);
        metrics
            .gauge("serve.model_bytes")
            .set(initial.table_size_bytes() as u64);
        ModelHandle {
            inner: Arc::new(HandleInner {
                current: Mutex::new((Arc::new(initial), 0)),
                metrics,
            }),
        }
    }

    /// The current snapshot. The lock is held for one `Arc` clone only;
    /// scoring against the returned tree happens entirely outside it.
    #[inline]
    pub fn snapshot(&self) -> Arc<CompiledTree> {
        self.inner.current.lock().unwrap().0.clone()
    }

    /// The current snapshot together with its epoch, read atomically
    /// (both under the same lock acquisition — the pair is never torn).
    #[inline]
    pub fn snapshot_with_epoch(&self) -> (Arc<CompiledTree>, u64) {
        let guard = self.inner.current.lock().unwrap();
        (guard.0.clone(), guard.1)
    }

    /// The current epoch: 0 at creation, +1 per [`ModelHandle::publish`].
    pub fn epoch(&self) -> u64 {
        self.inner.current.lock().unwrap().1
    }

    /// Atomically publish `tree` as the new snapshot; returns the new
    /// epoch. Readers that already hold the previous snapshot keep
    /// scoring against it; every subsequent [`ModelHandle::snapshot`]
    /// observes the new tree.
    pub fn publish(&self, tree: CompiledTree) -> u64 {
        let bytes = tree.table_size_bytes() as u64;
        let fresh = Arc::new(tree);
        let epoch = {
            let mut guard = self.inner.current.lock().unwrap();
            guard.0 = fresh;
            guard.1 += 1;
            guard.1
        };
        self.inner.metrics.counter("serve.snapshot_swaps").inc();
        self.inner.metrics.gauge("serve.epoch").set(epoch);
        self.inner.metrics.gauge("serve.model_bytes").set(bytes);
        epoch
    }

    /// The metrics registry this handle records into.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }
}

/// Wire a maintained [`BoatModel`] to a [`ModelHandle`]: compile and
/// publish the model's *current* exact tree immediately (running any
/// pending maintenance first), then install a publish hook so every
/// future [`BoatModel::maintain`] that materializes a fresh tree
/// compiles it (timed under the `serve.compile` span) and atomically
/// publishes it to the handle.
///
/// After this call, reader threads holding clones of `handle` always
/// observe either the pre- or post-maintenance tree while `maintain`
/// runs — never an intermediate state — because publication happens in
/// one swap after the exact tree is fully materialized.
pub fn publish_on_maintain<I: Impurity + Clone>(
    model: &mut BoatModel<I>,
    handle: &ModelHandle,
) -> boat_data::Result<u64> {
    let initial = {
        let span = handle.metrics().span("serve.compile");
        let compiled = compile(model.tree()?);
        span.finish();
        compiled
    };
    let epoch = handle.publish(initial);
    let hook_handle = handle.clone();
    model.set_publish_hook(move |tree| {
        let span = hook_handle.metrics().span("serve.compile");
        let compiled = compile(tree);
        span.finish();
        hook_handle.publish(compiled);
    });
    Ok(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_tree::Tree;

    fn leaf(counts: Vec<u64>) -> CompiledTree {
        compile(&Tree::leaf(counts))
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let handle = ModelHandle::new(leaf(vec![5, 1]));
        assert_eq!(handle.epoch(), 0);
        let snap0 = handle.snapshot();
        let e = handle.publish(leaf(vec![0, 9]));
        assert_eq!(e, 1);
        assert_eq!(handle.epoch(), 1);
        // The old snapshot is unaffected; the new one predicts class 1.
        let r = boat_data::Record::new(vec![boat_data::Field::Num(0.0)], 0);
        assert_eq!(snap0.predict(&r), 0);
        assert_eq!(handle.snapshot().predict(&r), 1);
    }

    #[test]
    fn snapshot_with_epoch_is_consistent() {
        let handle = ModelHandle::new(leaf(vec![1, 0]));
        let (snap, epoch) = handle.snapshot_with_epoch();
        assert_eq!(epoch, 0);
        assert_eq!(snap.n_nodes(), 1);
    }

    #[test]
    fn clones_share_publication_state() {
        let a = ModelHandle::new(leaf(vec![1, 0]));
        let b = a.clone();
        a.publish(leaf(vec![0, 1]));
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn metrics_track_swaps() {
        let reg = Registry::new();
        let handle = ModelHandle::with_metrics(leaf(vec![1, 0]), reg.clone());
        handle.publish(leaf(vec![0, 1]));
        handle.publish(leaf(vec![2, 1]));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.snapshot_swaps"), 2);
        assert_eq!(snap.gauge("serve.epoch"), Some(2));
        assert!(snap.gauge("serve.model_bytes").unwrap() > 0);
    }
}
