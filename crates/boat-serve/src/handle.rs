//! Snapshot publication: epoch-stamped atomic swapping of compiled
//! trees between one maintainer and any number of scorer threads.
//!
//! The serving invariant is the read-path mirror of BOAT's exact-tree
//! guarantee: **every prediction is computed against one consistent
//! compiled tree** — either the pre-maintenance or the post-maintenance
//! snapshot, never a torn mix — while `BoatModel::maintain` runs
//! concurrently and publishes its result the instant it materializes.
//!
//! ## Publication protocol
//!
//! The handle keeps two pieces of state:
//!
//! * `current: Mutex<(Arc<CompiledTree>, u64)>` — the **publication
//!   record**: the snapshot and its epoch, swapped together under the
//!   lock so the pair is never torn. Only writers and *refreshing*
//!   readers touch it.
//! * `epoch_hint: AtomicU64` — a monotone mirror of the published epoch,
//!   stored (release) while the publication lock is still held, so
//!   `hint == N` implies the epoch-`N` record is already visible to
//!   anyone who subsequently takes the lock.
//!
//! The steady-state read path never touches the lock: a
//! [`SnapshotReader`] caches `(Arc<CompiledTree>, epoch)` per reader
//! thread and its [`SnapshotReader::current`] is **one atomic load** of
//! `epoch_hint` — no `Arc` refcount traffic, no shared cache-line writes
//! at all while the model is stable. Only when the hint moves past the
//! cached epoch does the reader briefly take the lock to re-read the
//! publication record (one `Arc` clone per *publication*, not per
//! batch). Epochs a reader observes are monotone: the hint only grows,
//! and a refresh always lands on a record at least as new as the hint
//! that triggered it.
//!
//! Old snapshots stay alive exactly as long as some reader still holds
//! them and are freed by the last `Arc` drop — the classic RCU shape
//! with reference counting as the grace period.

use crate::compile::{compile, CompiledTree};
use boat_core::BoatModel;
use boat_obs::Registry;
use boat_proof::{Hash256, TreeCommit};
use boat_tree::Impurity;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published state: the snapshot, its epoch, and (when provenance is
/// wired) the Merkle commit the snapshot was published under. Swapped as
/// a unit so readers never see a tree paired with another epoch's commit.
#[derive(Clone)]
struct Publication {
    tree: Arc<CompiledTree>,
    epoch: u64,
    commit: Option<Arc<TreeCommit>>,
}

struct HandleInner {
    /// The publication record: current snapshot plus its epoch, swapped
    /// together. Writers and refreshing readers only.
    current: Mutex<Publication>,
    /// Monotone mirror of the published epoch; the lock-free fast path.
    /// Stored (release) while `current`'s lock is held.
    epoch_hint: AtomicU64,
    /// Metrics sink (`serve.snapshot_swaps`, `serve.epoch`,
    /// `serve.model_bytes`, `serve.compile` span).
    metrics: Registry,
}

/// A cheaply clonable handle to the currently published [`CompiledTree`].
///
/// Clone freely into scorer threads, the serving engine, and the
/// maintenance thread — all clones observe the same publication state.
/// Hot read loops should attach a per-thread [`SnapshotReader`] instead
/// of calling [`ModelHandle::snapshot`] per batch.
#[derive(Clone)]
pub struct ModelHandle {
    inner: Arc<HandleInner>,
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (tree, epoch) = self.snapshot_with_epoch();
        f.debug_struct("ModelHandle")
            .field("epoch", &epoch)
            .field("n_nodes", &tree.n_nodes())
            .finish()
    }
}

impl ModelHandle {
    /// Publish `initial` as epoch 0 with a private metrics registry.
    pub fn new(initial: CompiledTree) -> ModelHandle {
        Self::with_metrics(initial, Registry::new())
    }

    /// Publish `initial` as epoch 0, recording swap/epoch metrics into
    /// `metrics` (pass `boat_obs::Registry::global().clone()` for one
    /// process-wide namespace).
    pub fn with_metrics(initial: CompiledTree, metrics: Registry) -> ModelHandle {
        Self::with_publication(initial, None, metrics)
    }

    /// Publish `initial` as epoch 0 together with its Merkle commit, so
    /// readers can verify predictions against the genesis commitment
    /// (see [`crate::provenance`]).
    pub fn with_metrics_committed(
        initial: CompiledTree,
        commit: Arc<TreeCommit>,
        metrics: Registry,
    ) -> ModelHandle {
        Self::with_publication(initial, Some(commit), metrics)
    }

    fn with_publication(
        initial: CompiledTree,
        commit: Option<Arc<TreeCommit>>,
        metrics: Registry,
    ) -> ModelHandle {
        metrics.gauge("serve.epoch").set(0);
        metrics
            .gauge("serve.model_bytes")
            .set(initial.table_size_bytes() as u64);
        ModelHandle {
            inner: Arc::new(HandleInner {
                current: Mutex::new(Publication {
                    tree: Arc::new(initial),
                    epoch: 0,
                    commit,
                }),
                epoch_hint: AtomicU64::new(0),
                metrics,
            }),
        }
    }

    /// The current snapshot. Takes the publication lock for one `Arc`
    /// clone; scoring against the returned tree happens entirely outside
    /// it. Per-batch callers should use a [`SnapshotReader`] instead.
    #[inline]
    pub fn snapshot(&self) -> Arc<CompiledTree> {
        self.inner.current.lock().unwrap().tree.clone()
    }

    /// The current snapshot together with its epoch, read atomically
    /// (both under the same lock acquisition — the pair is never torn).
    #[inline]
    pub fn snapshot_with_epoch(&self) -> (Arc<CompiledTree>, u64) {
        let guard = self.inner.current.lock().unwrap();
        (guard.tree.clone(), guard.epoch)
    }

    /// The current Merkle commit, if the current epoch was published with
    /// one ([`ModelHandle::publish_committed`]).
    pub fn commit(&self) -> Option<Arc<TreeCommit>> {
        self.inner.current.lock().unwrap().commit.clone()
    }

    /// The current model commitment (the commit's Merkle root), if any.
    pub fn commitment(&self) -> Option<Hash256> {
        self.inner
            .current
            .lock()
            .unwrap()
            .commit
            .as_ref()
            .map(|c| c.root())
    }

    /// The current epoch: 0 at creation, +1 per [`ModelHandle::publish`].
    /// Lock-free (reads the epoch mirror).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.inner.epoch_hint.load(Ordering::Acquire)
    }

    /// Attach a per-thread [`SnapshotReader`] whose steady-state read is
    /// one atomic load (no lock, no refcount traffic).
    pub fn reader(&self) -> SnapshotReader {
        let cached = self.inner.current.lock().unwrap().clone();
        SnapshotReader {
            handle: self.clone(),
            cached,
        }
    }

    /// Atomically publish `tree` as the new snapshot; returns the new
    /// epoch. Readers that already hold the previous snapshot keep
    /// scoring against it; every subsequent [`ModelHandle::snapshot`] or
    /// [`SnapshotReader::current`] observes the new tree.
    pub fn publish(&self, tree: CompiledTree) -> u64 {
        self.publish_record(tree, None)
    }

    /// Like [`ModelHandle::publish`], additionally carrying the snapshot's
    /// Merkle commit so proofs served at the new epoch verify against its
    /// root ([`ModelHandle::commitment`]). Swapped in the same lock
    /// acquisition as the tree — the pair is never torn.
    pub fn publish_committed(&self, tree: CompiledTree, commit: Arc<TreeCommit>) -> u64 {
        self.publish_record(tree, Some(commit))
    }

    fn publish_record(&self, tree: CompiledTree, commit: Option<Arc<TreeCommit>>) -> u64 {
        let bytes = tree.table_size_bytes() as u64;
        let fresh = Arc::new(tree);
        let epoch = {
            let mut guard = self.inner.current.lock().unwrap();
            guard.tree = fresh;
            guard.commit = commit;
            guard.epoch += 1;
            // Mirror the epoch while still holding the lock: a reader
            // that observes the new hint and refreshes is guaranteed to
            // find a record at least this new.
            self.inner.epoch_hint.store(guard.epoch, Ordering::Release);
            guard.epoch
        };
        self.inner.metrics.counter("serve.snapshot_swaps").inc();
        self.inner.metrics.gauge("serve.epoch").set(epoch);
        self.inner.metrics.gauge("serve.model_bytes").set(bytes);
        epoch
    }

    /// The metrics registry this handle records into.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }
}

/// A per-thread cached view of a [`ModelHandle`]'s publication state.
///
/// [`SnapshotReader::current`] costs one atomic load while the published
/// epoch is unchanged and re-reads the publication record (under the
/// briefly-held lock) only when a publish happened — so a scorer thread
/// in steady state shares **no** mutable cache lines with other readers
/// or the publisher. Epochs returned by one reader are monotone, and
/// causally ordered work observes monotone epochs across readers too:
/// if ticket B is submitted after ticket A's result was received, B's
/// scorer reads the hint after A's scorer did (the ticket hand-off
/// synchronizes), so coherence forbids it from reading an older value.
pub struct SnapshotReader {
    handle: ModelHandle,
    cached: Publication,
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("epoch", &self.cached.epoch)
            .field("committed", &self.cached.commit.is_some())
            .finish()
    }
}

impl SnapshotReader {
    #[inline]
    fn refresh(&mut self) {
        let hint = self.handle.inner.epoch_hint.load(Ordering::Acquire);
        if hint != self.cached.epoch {
            let fresh = self.handle.inner.current.lock().unwrap().clone();
            debug_assert!(
                fresh.epoch >= hint,
                "publication record older than its hint"
            );
            self.cached = fresh;
        }
    }

    /// The current `(snapshot, epoch)` pair. One atomic load on the fast
    /// path; refreshes from the publication record when the epoch moved.
    #[inline]
    pub fn current(&mut self) -> (&Arc<CompiledTree>, u64) {
        self.refresh();
        (&self.cached.tree, self.cached.epoch)
    }

    /// Like [`SnapshotReader::current`], additionally exposing the
    /// epoch's Merkle commit (when the publisher supplied one) — all
    /// three from the same publication record, never torn.
    #[inline]
    pub fn current_committed(&mut self) -> (&Arc<CompiledTree>, u64, Option<&Arc<TreeCommit>>) {
        self.refresh();
        (
            &self.cached.tree,
            self.cached.epoch,
            self.cached.commit.as_ref(),
        )
    }

    /// The epoch of the cached snapshot (no refresh).
    pub fn cached_epoch(&self) -> u64 {
        self.cached.epoch
    }

    /// The handle this reader is attached to.
    pub fn handle(&self) -> &ModelHandle {
        &self.handle
    }
}

/// Wire a maintained [`BoatModel`] to a [`ModelHandle`]: compile and
/// publish the model's *current* exact tree immediately (running any
/// pending maintenance first), then install a publish hook so every
/// future [`BoatModel::maintain`] that materializes a fresh tree
/// compiles it (timed under the `serve.compile` span) and atomically
/// publishes it to the handle.
///
/// After this call, reader threads holding clones of `handle` always
/// observe either the pre- or the post-maintenance tree while `maintain`
/// runs — never an intermediate state — because publication happens in
/// one swap after the exact tree is fully materialized.
pub fn publish_on_maintain<I: Impurity + Clone>(
    model: &mut BoatModel<I>,
    handle: &ModelHandle,
) -> boat_data::Result<u64> {
    let initial = {
        let span = handle.metrics().span("serve.compile");
        let compiled = compile(model.tree()?);
        span.finish();
        compiled
    };
    let epoch = handle.publish(initial);
    let hook_handle = handle.clone();
    model.set_publish_hook(move |tree| {
        let span = hook_handle.metrics().span("serve.compile");
        let compiled = compile(tree);
        span.finish();
        hook_handle.publish(compiled);
    });
    Ok(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boat_tree::Tree;

    fn leaf(counts: Vec<u64>) -> CompiledTree {
        compile(&Tree::leaf(counts))
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let handle = ModelHandle::new(leaf(vec![5, 1]));
        assert_eq!(handle.epoch(), 0);
        let snap0 = handle.snapshot();
        let e = handle.publish(leaf(vec![0, 9]));
        assert_eq!(e, 1);
        assert_eq!(handle.epoch(), 1);
        // The old snapshot is unaffected; the new one predicts class 1.
        let r = boat_data::Record::new(vec![boat_data::Field::Num(0.0)], 0);
        assert_eq!(snap0.predict(&r), 0);
        assert_eq!(handle.snapshot().predict(&r), 1);
    }

    #[test]
    fn snapshot_with_epoch_is_consistent() {
        let handle = ModelHandle::new(leaf(vec![1, 0]));
        let (snap, epoch) = handle.snapshot_with_epoch();
        assert_eq!(epoch, 0);
        assert_eq!(snap.n_nodes(), 1);
    }

    #[test]
    fn clones_share_publication_state() {
        let a = ModelHandle::new(leaf(vec![1, 0]));
        let b = a.clone();
        a.publish(leaf(vec![0, 1]));
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn reader_fast_path_tracks_publishes() {
        let handle = ModelHandle::new(leaf(vec![1, 0]));
        let mut reader = handle.reader();
        let r = boat_data::Record::new(vec![boat_data::Field::Num(0.0)], 0);
        {
            let (tree, epoch) = reader.current();
            assert_eq!((tree.predict(&r), epoch), (0, 0));
        }
        // Unchanged hint: repeated reads stay on the cached snapshot.
        assert_eq!(reader.current().1, 0);
        handle.publish(leaf(vec![0, 1]));
        let (tree, epoch) = reader.current();
        assert_eq!((tree.predict(&r), epoch), (1, 1));
        assert_eq!(reader.cached_epoch(), 1);
    }

    #[test]
    fn reader_epochs_are_monotone_under_concurrent_publishes() {
        let handle = ModelHandle::new(leaf(vec![1, 0]));
        std::thread::scope(|s| {
            let publisher = {
                let handle = handle.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        handle.publish(leaf(vec![i % 3, 1]));
                    }
                })
            };
            for _ in 0..4 {
                let handle = handle.clone();
                s.spawn(move || {
                    let mut reader = handle.reader();
                    let mut last = 0u64;
                    for _ in 0..2_000 {
                        let (_, epoch) = reader.current();
                        assert!(epoch >= last, "reader epoch went backwards");
                        last = epoch;
                    }
                });
            }
            publisher.join().unwrap();
        });
        assert_eq!(handle.epoch(), 500);
    }

    #[test]
    fn committed_publications_expose_their_commitment() {
        let first = leaf(vec![5, 1]);
        let commit = Arc::new(crate::provenance::tree_commit(&first).unwrap());
        let root = commit.root();
        let handle = ModelHandle::with_metrics_committed(first, commit, Registry::new());
        assert_eq!(handle.commitment(), Some(root));
        let mut reader = handle.reader();
        assert_eq!(reader.current_committed().2.map(|c| c.root()), Some(root));

        // A plain publish drops the commitment (no stale root survives).
        handle.publish(leaf(vec![0, 9]));
        assert_eq!(handle.commitment(), None);
        assert_eq!(reader.current_committed().2.map(|c| c.root()), None);

        // A committed publish swaps tree + commit together.
        let next = leaf(vec![2, 2]);
        let next_commit = Arc::new(crate::provenance::tree_commit(&next).unwrap());
        let next_root = next_commit.root();
        let epoch = handle.publish_committed(next, next_commit);
        assert_eq!(epoch, 2);
        let (_, epoch, commit) = reader.current_committed();
        assert_eq!((epoch, commit.map(|c| c.root())), (2, Some(next_root)));
    }

    #[test]
    fn metrics_track_swaps() {
        let reg = Registry::new();
        let handle = ModelHandle::with_metrics(leaf(vec![1, 0]), reg.clone());
        handle.publish(leaf(vec![0, 1]));
        handle.publish(leaf(vec![2, 1]));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.snapshot_swaps"), 2);
        assert_eq!(snap.gauge("serve.epoch"), Some(2));
        assert!(snap.gauge("serve.model_bytes").unwrap() > 0);
    }
}
