//! Per-shard intake: a bounded lock-free ring buffer plus a parking
//! doorbell.
//!
//! Each scorer worker owns exactly one [`ShardQueue`]; producers
//! round-robin (or key-hash) batches across shards, so the hot path
//! never crosses a shared `Mutex` + `Condvar` queue — a push is a CAS on
//! the shard's tail plus one release store, a pop is the mirror image.
//! The ring is Dmitry Vyukov's bounded MPMC queue (per-slot sequence
//! numbers arbitrate producers and the consumer without locks); here it
//! runs in MPSC mode — any thread may push, only the owning worker pops.
//!
//! Blocking (an *empty* ring for the consumer, a *full* ring for
//! backpressured producers) is handled by a [`Doorbell`]: a
//! `Mutex`/`Condvar` pair that is only touched on the slow path, with
//! `SeqCst` fences closing the classic sleep/wakeup race (either the
//! producer observes the parked flag and rings, or the parked side's
//! re-check observes the push — the store-load pattern needs the fences;
//! plain release/acquire would allow both sides to miss each other). A
//! short bounded timeout on the waits is defense-in-depth only; no
//! correctness property relies on it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Pad-to-cache-line wrapper so the producer and consumer cursors do not
/// false-share one line.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Vyukov sequence number: `index` when writable at lap 0, `pos + 1`
    /// after a push at `pos`, `pos + capacity` after the matching pop.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC ring (used MPSC: one consumer per shard).
pub(crate) struct RingQueue<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each `T` from exactly one pushing thread to
// exactly one popping thread; slots are never aliased thanks to the
// per-slot sequence protocol. `T: Send` is required and sufficient.
unsafe impl<T: Send> Send for RingQueue<T> {}
unsafe impl<T: Send> Sync for RingQueue<T> {}

impl<T> RingQueue<T> {
    /// A ring holding at most `capacity` items (rounded **up** to a
    /// power of two, minimum 2).
    pub(crate) fn with_capacity(capacity: usize) -> RingQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let buf: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingQueue {
            buf,
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Usable capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Approximate live occupancy (exact when quiescent).
    pub(crate) fn len(&self) -> usize {
        let head = self.dequeue_pos.0.load(Ordering::Relaxed);
        let tail = self.enqueue_pos.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Try to enqueue; returns the value back when the ring is full.
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot is writable at this lap; claim it.
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above made this thread the only
                        // writer of slot `pos`; the consumer will not read
                        // it until the `seq` release-store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot still holds an unconsumed lap — ring is full.
                return Err(value);
            } else {
                // Another producer claimed `pos`; chase the tail.
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Try to dequeue; `None` when the ring is empty.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the producer's release-store of `seq =
                        // pos + 1` happens-before our acquire-load above,
                        // so the value is fully written; the CAS made us
                        // its only reader.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.buf.len(), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for RingQueue<T> {
    fn drop(&mut self) {
        // Drain whatever was never popped so `T`'s destructors run.
        while self.pop().is_some() {}
    }
}

/// One worker's intake: ring + doorbell + parked-side flags.
pub(crate) struct ShardQueue<T> {
    ring: RingQueue<T>,
    gate: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    /// The consumer is (about to be) parked on `not_empty`.
    consumer_parked: AtomicBool,
    /// Producers (count) parked on `not_full`.
    producers_parked: AtomicUsize,
}

/// How long a parked side waits per doorbell round. Purely
/// defense-in-depth: the fence protocol already forbids lost wakeups, so
/// this bounds the damage of any future regression to a latency blip
/// instead of a deadlock.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// Optimistic spins before parking. Small on purpose: an empty intake
/// should release the core quickly (the box may be single-core), while a
/// briefly-contended one avoids two futex round-trips.
const SPINS: u32 = 48;

impl<T> ShardQueue<T> {
    pub(crate) fn with_capacity(capacity: usize) -> ShardQueue<T> {
        ShardQueue {
            ring: RingQueue::with_capacity(capacity),
            gate: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            consumer_parked: AtomicBool::new(false),
            producers_parked: AtomicUsize::new(0),
        }
    }

    /// Live occupancy (approximate under concurrency).
    pub(crate) fn len(&self) -> usize {
        self.ring.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Non-blocking enqueue; rings the consumer's doorbell on success.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        self.ring.push(value)?;
        self.ring_doorbell();
        Ok(())
    }

    /// Enqueue, parking (backpressure) while the ring is full. Returns
    /// `Err(value)` only when `closed` becomes set before space frees up
    /// or the value was accepted.
    pub(crate) fn push_or_park(&self, mut value: T, closed: &AtomicBool) -> Result<(), T> {
        loop {
            if closed.load(Ordering::Acquire) {
                return Err(value);
            }
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
            // Full: park until the consumer frees a slot. The fence
            // pairs with the consumer's post-pop fence — either it sees
            // our parked count, or our re-check sees its pop.
            let guard = self.gate.lock().unwrap();
            self.producers_parked.fetch_add(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if self.ring.len() < self.ring.capacity() || closed.load(Ordering::Relaxed) {
                self.producers_parked.fetch_sub(1, Ordering::Relaxed);
                continue; // space freed (or closing) between the failed push and now
            }
            let (guard, _) = self.not_full.wait_timeout(guard, PARK_TIMEOUT).unwrap();
            drop(guard);
            self.producers_parked.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Dequeue, parking while the ring is empty. Returns `None` once
    /// `closed` is set **and** the ring is drained — the graceful-drain
    /// contract: every item pushed before close is popped first.
    pub(crate) fn pop_or_park(&self, closed: &AtomicBool) -> Option<T> {
        loop {
            for _ in 0..SPINS {
                if let Some(v) = self.ring.pop() {
                    self.wake_producers();
                    return Some(v);
                }
                if closed.load(Ordering::Acquire) {
                    // Closed: hand out the stragglers, then signal done.
                    return self.ring.pop().inspect(|_| self.wake_producers());
                }
                std::hint::spin_loop();
            }
            let guard = self.gate.lock().unwrap();
            self.consumer_parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            // Re-check under the parked flag: pairs with the producer's
            // post-push fence.
            if let Some(v) = self.ring.pop() {
                self.consumer_parked.store(false, Ordering::Relaxed);
                drop(guard);
                self.wake_producers();
                return Some(v);
            }
            if closed.load(Ordering::Relaxed) {
                self.consumer_parked.store(false, Ordering::Relaxed);
                return None;
            }
            let (guard, _) = self.not_empty.wait_timeout(guard, PARK_TIMEOUT).unwrap();
            drop(guard);
            self.consumer_parked.store(false, Ordering::Relaxed);
        }
    }

    /// Wake both sides unconditionally (shutdown path).
    pub(crate) fn wake_all(&self) {
        let _guard = self.gate.lock().unwrap();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Drain without blocking (the engine's post-join final sweep).
    pub(crate) fn try_pop(&self) -> Option<T> {
        let v = self.ring.pop();
        if v.is_some() {
            self.wake_producers();
        }
        v
    }

    fn ring_doorbell(&self) {
        fence(Ordering::SeqCst);
        if self.consumer_parked.load(Ordering::Relaxed) {
            let _guard = self.gate.lock().unwrap();
            self.not_empty.notify_one();
        }
    }

    fn wake_producers(&self) {
        fence(Ordering::SeqCst);
        if self.producers_parked.load(Ordering::Relaxed) > 0 {
            let _guard = self.gate.lock().unwrap();
            self.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingQueue::<u32>::with_capacity(0).capacity(), 2);
        assert_eq!(RingQueue::<u32>::with_capacity(3).capacity(), 4);
        assert_eq!(RingQueue::<u32>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn ring_fifo_and_full_empty_edges() {
        let q = RingQueue::with_capacity(4);
        assert_eq!(q.pop(), None);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99)); // full
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // Wraps across laps.
        for lap in 0..3 {
            for i in 0..3 {
                q.push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn ring_drops_unpopped_values() {
        let token = Arc::new(());
        let q = RingQueue::with_capacity(8);
        for _ in 0..5 {
            q.push(Arc::clone(&token)).unwrap();
        }
        assert_eq!(Arc::strong_count(&token), 6);
        drop(q);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn mpsc_stress_delivers_every_item_once() {
        let q = Arc::new(RingQueue::with_capacity(16));
        let producers = 4usize;
        let per = 5_000usize;
        std::thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        let mut v = p * per + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    // Yield, don't spin: on a single
                                    // hardware thread a spinning
                                    // producer starves the consumer for
                                    // its whole timeslice.
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            let consumer = s.spawn(move || {
                let mut seen = vec![false; producers * per];
                let mut got = 0usize;
                while got < producers * per {
                    if let Some(v) = q.pop() {
                        assert!(!seen[v], "item {v} delivered twice");
                        seen[v] = true;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                assert!(seen.iter().all(|&b| b));
            });
            consumer.join().unwrap();
        });
    }

    #[test]
    fn shard_parks_and_drains_on_close() {
        let shard = Arc::new(ShardQueue::with_capacity(4));
        let closed = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let consumer = {
                let shard = Arc::clone(&shard);
                let closed = Arc::clone(&closed);
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = shard.pop_or_park(&closed) {
                        got.push(v);
                    }
                    got
                })
            };
            // Push more than capacity so producers exercise backpressure.
            for i in 0..32 {
                shard.push_or_park(i, &closed).unwrap();
            }
            closed.store(true, Ordering::Release);
            shard.wake_all();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..32).collect::<Vec<_>>());
        });
        // Post-close pushes fail fast with the value handed back.
        assert_eq!(shard.push_or_park(77, &closed), Err(77));
        assert_eq!(shard.len(), 0);
    }
}
