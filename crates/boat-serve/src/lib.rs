//! Compiled-tree inference subsystem for maintained BOAT models.
//!
//! `boat-serve` is the read path of the workspace: it takes the exact
//! decision trees that `boat-core` constructs and maintains, lowers them
//! into a cache-friendly immutable form, and serves predictions from
//! many threads while maintenance keeps running in the background.
//!
//! Three layers, composable but independently usable:
//!
//! 1. **Compiler** ([`compile`] → [`CompiledTree`]): flattens a
//!    [`boat_tree::Tree`] into structure-of-arrays node tables in
//!    preorder (left child adjacent at `i + 1`, only the right child
//!    stored), with categorical splits as 64-bit subset masks. Scalar
//!    [`CompiledTree::predict`] replicates `Tree::predict` exactly —
//!    including the pinned NaN / unseen-category routing contract —
//!    and [`CompiledTree::predict_batch`] scores a columnar
//!    [`RecordBlock`] attribute-major via frontier partitioning.
//! 2. **Publication** ([`ModelHandle`]): epoch-versioned atomic
//!    snapshot swapping. Readers clone an `Arc` under a briefly-held
//!    lock and score entirely outside it; [`publish_on_maintain`]
//!    wires a [`boat_core::BoatModel`] so every maintenance cycle that
//!    materializes a fresh exact tree compiles and publishes it.
//! 3. **Serving** ([`ServeEngine`]): N scorer workers pulling
//!    micro-batches from a bounded MPMC queue with backpressure and
//!    graceful drain, recording `serve.*` metrics into `boat-obs`.
//!
//! The subsystem invariant mirrors BOAT's exact-tree guarantee on the
//! write path: **every prediction is computed against one consistent
//! compiled snapshot** — pre- or post-maintenance, never a torn mix —
//! and compiled predictions are bit-identical to interpreted
//! `Tree::predict` on every input.
#![warn(missing_docs)]

pub mod block;
pub mod compile;
pub mod engine;
pub mod handle;

pub use block::{Column, RecordBlock};
pub use compile::{compile, BatchScratch, CompiledTree, NodeOp};
pub use engine::{ServeConfig, ServeEngine, Ticket};
pub use handle::{publish_on_maintain, ModelHandle};
