//! Compiled-tree inference subsystem for maintained BOAT models.
//!
//! `boat-serve` is the read path of the workspace: it takes the exact
//! decision trees that `boat-core` constructs and maintains, lowers them
//! into a cache-friendly immutable form, and serves predictions from
//! many threads while maintenance keeps running in the background.
//!
//! Three layers, composable but independently usable:
//!
//! 1. **Compiler** ([`compile`] → [`CompiledTree`]): flattens a
//!    [`boat_tree::Tree`] into structure-of-arrays node tables in
//!    preorder (left child adjacent at `i + 1`, only the right child
//!    stored), with categorical splits as 64-bit subset masks. Scalar
//!    [`CompiledTree::predict`] replicates `Tree::predict` exactly —
//!    including the pinned NaN / unseen-category routing contract —
//!    and [`CompiledTree::predict_batch`] scores a columnar
//!    [`RecordBlock`] attribute-major via frontier partitioning.
//! 2. **Publication** ([`ModelHandle`]): epoch-stamped atomic snapshot
//!    swapping. A per-thread [`SnapshotReader`]'s steady-state read is
//!    **one atomic load** — no lock, no refcount traffic;
//!    [`publish_on_maintain`] wires a [`boat_core::BoatModel`] so every
//!    maintenance cycle that materializes a fresh exact tree compiles
//!    and publishes it.
//! 3. **Serving** ([`ServeEngine`]): shard-per-core scorer workers,
//!    each owning a bounded lock-free intake ring (submits round-robin
//!    across shards — no shared queue lock on the hot path), with
//!    backpressure, graceful drain, a multi-model [`ModelRegistry`]
//!    for keyed submits, and `serve.*` metrics into `boat-obs`.
//! 4. **Provenance** ([`provenance`], optional): Merkle commitments over
//!    compiled trees ([`tree_commit`]), committed publication
//!    ([`ModelHandle::publish_committed`]), per-prediction path proofs
//!    ([`ServeEngine::submit_with_proofs`] → [`ScoredProofs`], verified
//!    standalone by `boat_proof::verify_prediction`), and a chained
//!    epoch ledger over the streaming write path
//!    ([`spawn_streaming_committed`] → [`ProvenanceLedger`]).
//!
//! The subsystem invariant mirrors BOAT's exact-tree guarantee on the
//! write path: **every prediction is computed against one consistent
//! compiled snapshot** — pre- or post-maintenance, never a torn mix —
//! and compiled predictions are bit-identical to interpreted
//! `Tree::predict` on every input.
#![warn(missing_docs)]

pub mod block;
pub mod compile;
pub mod engine;
pub mod handle;
pub mod provenance;
pub mod registry;
mod shard;
pub mod streaming;

pub use block::{Column, RecordBlock};
pub use compile::{compile, BatchScratch, CompiledTree, NodeOp};
pub use engine::{ScoredProofs, ServeConfig, ServeEngine, Ticket};
pub use handle::{publish_on_maintain, ModelHandle, SnapshotReader};
pub use provenance::{
    record_values, tree_commit, tree_commit_reusing, LedgerSink, ProvenanceLedger,
};
pub use registry::{ModelEntry, ModelRegistry};
pub use streaming::{spawn_streaming, spawn_streaming_committed, ProvenanceConfig};
