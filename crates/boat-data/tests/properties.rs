//! Property-based tests for the storage substrate: codec round-trips over
//! arbitrary schema-conformant records, spill-buffer transparency, and
//! reservoir-sampling invariants.

use boat_data::spill::SpillBuffer;
use boat_data::{codec, Attribute, Field, IoStats, MemoryDataset, Record, Schema};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary schema with 1..=5 attributes and 2..=6 classes.
fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    (
        prop::collection::vec(prop_oneof![Just(None), (2u32..=16).prop_map(Some)], 1..=5),
        2u16..=6,
    )
        .prop_map(|(kinds, classes)| {
            let attrs = kinds
                .into_iter()
                .enumerate()
                .map(|(i, card)| match card {
                    None => Attribute::numeric(format!("n{i}")),
                    Some(c) => Attribute::categorical(format!("c{i}"), c),
                })
                .collect();
            Schema::shared(attrs, classes).expect("generated schema is valid")
        })
}

/// Records conforming to `schema`.
fn arb_records(schema: Arc<Schema>, max: usize) -> impl Strategy<Value = Vec<Record>> {
    let field_strategies: Vec<_> = schema
        .attributes()
        .iter()
        .map(|a| match a.ty() {
            boat_data::AttrType::Numeric => (-1e9f64..1e9).prop_map(Field::Num).boxed(),
            boat_data::AttrType::Categorical { cardinality } => {
                (0..cardinality).prop_map(Field::Cat).boxed()
            }
        })
        .collect();
    let n_classes = schema.n_classes() as u16;
    prop::collection::vec(
        (field_strategies, 0..n_classes).prop_map(|(fields, label)| Record::new(fields, label)),
        0..=max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrips_any_record(
        (schema, records) in arb_schema()
            .prop_flat_map(|s| (Just(s.clone()), arb_records(s, 8)))
    ) {
        for r in &records {
            r.validate(&schema).unwrap();
            let bytes = codec::encode(&schema, r).unwrap();
            prop_assert_eq!(bytes.len(), schema.record_width());
            let back = codec::decode(&schema, &bytes).unwrap();
            // Bitwise equality for floats (total fidelity).
            prop_assert_eq!(back.label(), r.label());
            for (a, b) in back.fields().iter().zip(r.fields()) {
                match (a, b) {
                    (Field::Num(x), Field::Num(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                    (Field::Cat(x), Field::Cat(y)) => prop_assert_eq!(x, y),
                    _ => prop_assert!(false, "field type changed in roundtrip"),
                }
            }
        }
    }

    #[test]
    fn spill_buffer_is_a_transparent_vec(
        (schema, records) in arb_schema()
            .prop_flat_map(|s| (Just(s.clone()), arb_records(s, 40))),
        budget in 0usize..8,
    ) {
        let mut buf = SpillBuffer::new(schema, budget, IoStats::new());
        for r in &records {
            buf.push(r.clone()).unwrap();
        }
        prop_assert_eq!(buf.len(), records.len() as u64);
        let out = buf.to_vec().unwrap();
        prop_assert_eq!(out, records);
    }

    #[test]
    fn spill_buffer_remove_one_matches_vec_semantics(
        (schema, records) in arb_schema()
            .prop_flat_map(|s| (Just(s.clone()), arb_records(s, 20))),
        budget in 0usize..4,
        victim in 0usize..20,
    ) {
        prop_assume!(!records.is_empty());
        let victim = &records[victim % records.len()];
        let mut buf = SpillBuffer::new(schema, budget, IoStats::new());
        for r in &records {
            buf.push(r.clone()).unwrap();
        }
        prop_assert!(buf.remove_one(victim).unwrap());
        prop_assert_eq!(buf.len(), records.len() as u64 - 1);
        // Multiset equality with a Vec that had one matching element removed.
        let mut expect = records.clone();
        let pos = expect.iter().position(|r| r == victim).unwrap();
        expect.remove(pos);
        let mut got = buf.to_vec().unwrap();
        // Order is not part of the contract after removal; compare as
        // multisets via codec bytes.
        let key = |r: &Record| format!("{r}");
        let mut a: Vec<String> = expect.iter().map(key).collect();
        let mut b: Vec<String> = got.drain(..).map(|r| key(&r)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reservoir_sample_is_a_subset_without_replacement(
        n in 0usize..200,
        k in 0usize..50,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let schema = Schema::shared(vec![Attribute::numeric("x")], 2).unwrap();
        let records: Vec<Record> =
            (0..n).map(|i| Record::new(vec![Field::Num(i as f64)], 0)).collect();
        let ds = MemoryDataset::new(schema, records);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = boat_data::sample::reservoir_sample(&ds, k, &mut rng).unwrap();
        prop_assert_eq!(sample.len(), k.min(n));
        let mut ids: Vec<i64> = sample.iter().map(|r| r.num(0) as i64).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "reservoir must sample without replacement");
        prop_assert!(ids.iter().all(|&v| (v as usize) < n));
    }
}
