//! Shared I/O counters, backed by the `boat-obs` observability substrate.
//!
//! The BOAT paper's headline claim is about *scans over the training
//! database*: one per tree level for all previous algorithms, two (typically)
//! for BOAT. Wall-clock time on modern hardware with small test datasets is
//! noisy, so every dataset operation in this workspace is counted through an
//! [`IoStats`] handle, and the bench harness reports scan and byte counts
//! alongside wall time.
//!
//! Since the observability PR, [`IoStats`] is a thin façade over
//! [`boat_obs::Counter`]s. A handle created with [`IoStats::new`] is
//! *detached* — private counters, exactly the old behaviour, so unit tests
//! stay isolated. A handle created with [`IoStats::registered`] shares its
//! counters with a [`boat_obs::Registry`] under a dotted prefix
//! (`{prefix}.scans`, `{prefix}.bytes_read`, …), so the same numbers that
//! feed [`IoSnapshot`] deltas also appear in registry snapshots and the
//! exported JSON — one source of truth for the cost model.

use std::fmt;

use boat_obs::{Counter, Registry};

/// A cheaply clonable handle to a set of shared I/O counters.
///
/// All datasets created from the same handle accumulate into the same
/// counters, so an experiment can create one handle, hand it to every file it
/// opens, and read off totals at the end.
#[derive(Clone, Default)]
pub struct IoStats {
    scans: Counter,
    records_read: Counter,
    bytes_read: Counter,
    records_written: Counter,
    bytes_written: Counter,
    spill_events: Counter,
}

impl IoStats {
    /// Create a fresh set of zeroed, *detached* counters (not visible in any
    /// registry). Use [`IoStats::registered`] to share counters with an
    /// observability registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a handle whose counters live in `registry` under `prefix`:
    /// `{prefix}.scans`, `{prefix}.records_read`, `{prefix}.bytes_read`,
    /// `{prefix}.records_written`, `{prefix}.bytes_written`,
    /// `{prefix}.spill_events`.
    ///
    /// Repeated calls with the same registry and prefix return handles over
    /// the *same* counters.
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        IoStats {
            scans: registry.counter(&format!("{prefix}.scans")),
            records_read: registry.counter(&format!("{prefix}.records_read")),
            bytes_read: registry.counter(&format!("{prefix}.bytes_read")),
            records_written: registry.counter(&format!("{prefix}.records_written")),
            bytes_written: registry.counter(&format!("{prefix}.bytes_written")),
            spill_events: registry.counter(&format!("{prefix}.spill_events")),
        }
    }

    /// Record the start of a sequential scan.
    pub fn record_scan(&self) {
        self.scans.inc();
    }

    /// Record `n` records / `bytes` bytes read.
    pub fn record_read(&self, n: u64, bytes: u64) {
        self.records_read.add(n);
        self.bytes_read.add(bytes);
    }

    /// Record `n` records / `bytes` bytes written.
    pub fn record_write(&self, n: u64, bytes: u64) {
        self.records_written.add(n);
        self.bytes_written.add(bytes);
    }

    /// Record one spill event (a buffer overflowing its memory budget and
    /// opening a temporary file).
    pub fn record_spill_event(&self) {
        self.spill_events.inc();
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            scans: self.scans.get(),
            records_read: self.records_read.get(),
            bytes_read: self.bytes_read.get(),
            records_written: self.records_written.get(),
            bytes_written: self.bytes_written.get(),
            spill_events: self.spill_events.get(),
        }
    }
}

impl fmt::Debug for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A point-in-time copy of [`IoStats`] counters; supports subtraction to
/// measure a phase (`after - before`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Sequential scans started.
    pub scans: u64,
    /// Records read.
    pub records_read: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Records written.
    pub records_written: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Buffers that overflowed their memory budget to a temporary file.
    pub spill_events: u64,
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            scans: self.scans - rhs.scans,
            records_read: self.records_read - rhs.records_read,
            bytes_read: self.bytes_read - rhs.bytes_read,
            records_written: self.records_written - rhs.records_written,
            bytes_written: self.bytes_written - rhs.bytes_written,
            spill_events: self.spill_events - rhs.spill_events,
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scans={} read={}rec/{}B written={}rec/{}B spills={}",
            self.scans,
            self.records_read,
            self.bytes_read,
            self.records_written,
            self.bytes_written,
            self.spill_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_scan();
        s.record_read(10, 400);
        s.record_write(3, 120);
        s.record_spill_event();
        let snap = s.snapshot();
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.records_read, 10);
        assert_eq!(snap.bytes_read, 400);
        assert_eq!(snap.records_written, 3);
        assert_eq!(snap.bytes_written, 120);
        assert_eq!(snap.spill_events, 1);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let t = s.clone();
        t.record_scan();
        t.record_scan();
        assert_eq!(s.snapshot().scans, 2);
    }

    #[test]
    fn detached_handles_are_isolated() {
        let a = IoStats::new();
        let b = IoStats::new();
        a.record_scan();
        assert_eq!(b.snapshot().scans, 0);
    }

    #[test]
    fn snapshot_subtraction_measures_a_phase() {
        let s = IoStats::new();
        s.record_read(5, 100);
        let before = s.snapshot();
        s.record_scan();
        s.record_read(7, 140);
        let delta = s.snapshot() - before;
        assert_eq!(delta.scans, 1);
        assert_eq!(delta.records_read, 7);
        assert_eq!(delta.bytes_read, 140);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = IoStats::new();
        s.record_scan();
        let text = s.snapshot().to_string();
        assert!(text.contains("scans=1"));
        assert!(text.contains("spills=0"));
    }

    #[test]
    fn registered_handles_flow_into_the_registry() {
        let reg = Registry::new();
        let s = IoStats::registered(&reg, "data.input");
        s.record_scan();
        s.record_read(4, 64);
        s.record_spill_event();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("data.input.scans"), 1);
        assert_eq!(snap.counter("data.input.records_read"), 4);
        assert_eq!(snap.counter("data.input.bytes_read"), 64);
        assert_eq!(snap.counter("data.input.spill_events"), 1);
        // Same prefix → same counters.
        let t = IoStats::registered(&reg, "data.input");
        t.record_scan();
        assert_eq!(s.snapshot().scans, 2);
    }
}
