//! Shared I/O counters.
//!
//! The BOAT paper's headline claim is about *scans over the training
//! database*: one per tree level for all previous algorithms, two (typically)
//! for BOAT. Wall-clock time on modern hardware with small test datasets is
//! noisy, so every dataset operation in this workspace is counted through an
//! [`IoStats`] handle, and the bench harness reports scan and byte counts
//! alongside wall time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    scans: AtomicU64,
    records_read: AtomicU64,
    bytes_read: AtomicU64,
    records_written: AtomicU64,
    bytes_written: AtomicU64,
}

/// A cheaply clonable handle to a set of shared I/O counters.
///
/// All datasets created from the same handle accumulate into the same
/// counters, so an experiment can create one handle, hand it to every file it
/// opens, and read off totals at the end.
#[derive(Clone, Default)]
pub struct IoStats(Arc<Inner>);

impl IoStats {
    /// Create a fresh set of zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the start of a sequential scan.
    pub fn record_scan(&self) {
        self.0.scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` records / `bytes` bytes read.
    pub fn record_read(&self, n: u64, bytes: u64) {
        self.0.records_read.fetch_add(n, Ordering::Relaxed);
        self.0.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `n` records / `bytes` bytes written.
    pub fn record_write(&self, n: u64, bytes: u64) {
        self.0.records_written.fetch_add(n, Ordering::Relaxed);
        self.0.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            scans: self.0.scans.load(Ordering::Relaxed),
            records_read: self.0.records_read.load(Ordering::Relaxed),
            bytes_read: self.0.bytes_read.load(Ordering::Relaxed),
            records_written: self.0.records_written.load(Ordering::Relaxed),
            bytes_written: self.0.bytes_written.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A point-in-time copy of [`IoStats`] counters; supports subtraction to
/// measure a phase (`after - before`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Sequential scans started.
    pub scans: u64,
    /// Records read.
    pub records_read: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Records written.
    pub records_written: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            scans: self.scans - rhs.scans,
            records_read: self.records_read - rhs.records_read,
            bytes_read: self.bytes_read - rhs.bytes_read,
            records_written: self.records_written - rhs.records_written,
            bytes_written: self.bytes_written - rhs.bytes_written,
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scans={} read={}rec/{}B written={}rec/{}B",
            self.scans,
            self.records_read,
            self.bytes_read,
            self.records_written,
            self.bytes_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_scan();
        s.record_read(10, 400);
        s.record_write(3, 120);
        let snap = s.snapshot();
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.records_read, 10);
        assert_eq!(snap.bytes_read, 400);
        assert_eq!(snap.records_written, 3);
        assert_eq!(snap.bytes_written, 120);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let t = s.clone();
        t.record_scan();
        t.record_scan();
        assert_eq!(s.snapshot().scans, 2);
    }

    #[test]
    fn snapshot_subtraction_measures_a_phase() {
        let s = IoStats::new();
        s.record_read(5, 100);
        let before = s.snapshot();
        s.record_scan();
        s.record_read(7, 140);
        let delta = s.snapshot() - before;
        assert_eq!(delta.scans, 1);
        assert_eq!(delta.records_read, 7);
        assert_eq!(delta.bytes_read, 140);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = IoStats::new();
        s.record_scan();
        let text = s.snapshot().to_string();
        assert!(text.contains("scans=1"));
    }
}
