//! A base-plus-delta *dataset log*.
//!
//! The paper's §4 dynamic environment has a training database that changes
//! through chunk insertions and deletions (a data warehouse). BOAT's
//! incremental maintenance only scans the *chunks*, but a detected
//! distribution change forces a partial rebuild, which needs a scan of the
//! *current* database. [`DatasetLog`] provides exactly that view: the base
//! dataset plus applied insertion chunks, minus a deletion multiset, all
//! behind the ordinary [`RecordSource`] scan interface.

use crate::codec;
use crate::dataset::{RecordScan, RecordSource};
use crate::iostats::IoStats;
use crate::record::Record;
use crate::schema::Schema;
use crate::{DataError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// The logical "current training database": base ⊎ inserts ∖ deletes.
///
/// Deletions are matched by record *content* with multiplicity (a multiset),
/// so deleting a chunk that was previously inserted restores the prior
/// logical contents exactly. The caller is responsible for only deleting
/// records that are present; `len()` assumes every recorded deletion matches
/// (which scanning verifies — a scan that cannot match every deletion yields
/// an error at exhaustion).
pub struct DatasetLog {
    schema: Arc<Schema>,
    sources: Vec<Box<dyn RecordSource>>,
    deletes: HashMap<Vec<u8>, u64>,
    /// Distinct deletion keys in first-recorded order, so an unmatched
    /// deletion can be reported deterministically (HashMap order is not).
    delete_order: Vec<Vec<u8>>,
    n_deletes: u64,
    stats: IoStats,
}

impl DatasetLog {
    /// Start a log from a base dataset.
    pub fn new(base: Box<dyn RecordSource>, stats: IoStats) -> Self {
        let schema = base.schema().clone();
        DatasetLog {
            schema,
            sources: vec![base],
            deletes: HashMap::new(),
            delete_order: Vec::new(),
            n_deletes: 0,
            stats,
        }
    }

    /// Append an insertion chunk. Its schema must match the base schema.
    pub fn push_insertions(&mut self, chunk: Box<dyn RecordSource>) -> Result<()> {
        if **chunk.schema() != *self.schema {
            return Err(DataError::Schema("insertion chunk schema mismatch".into()));
        }
        self.sources.push(chunk);
        Ok(())
    }

    /// Record the deletion of every record in `chunk` (matched by content,
    /// with multiplicity).
    pub fn push_deletions(&mut self, chunk: &dyn RecordSource) -> Result<()> {
        if **chunk.schema() != *self.schema {
            return Err(DataError::Schema("deletion chunk schema mismatch".into()));
        }
        for r in chunk.scan()? {
            let key = codec::encode(&self.schema, &r?)?;
            match self.deletes.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.delete_order.push(e.key().clone());
                    e.insert(1);
                }
            }
            self.n_deletes += 1;
        }
        Ok(())
    }

    /// Number of physical sources (base + insertion chunks).
    pub fn n_chunks(&self) -> usize {
        self.sources.len()
    }

    /// Number of pending logical deletions.
    pub fn n_deletions(&self) -> u64 {
        self.n_deletes
    }

    /// Compact the log: materialize the net logical contents into a fresh
    /// dataset file (the warehouse maintenance step that turns a base +
    /// delta chain back into a single base). One scan over the log.
    pub fn compact_to(
        &self,
        path: impl AsRef<std::path::Path>,
        stats: IoStats,
    ) -> Result<crate::FileDataset> {
        let mut writer = crate::FileDatasetWriter::create(path, self.schema.clone(), stats)?;
        for r in self.scan()? {
            writer.append(&r?)?;
        }
        writer.finish()
    }
}

impl RecordSource for DatasetLog {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        Ok(Box::new(LogScan {
            log: self,
            chunk: 0,
            inner: None,
            pending_deletes: self.deletes.clone(),
            unmatched: self.n_deletes,
            buf: Vec::new(),
        }))
    }

    fn len(&self) -> u64 {
        let total: u64 = self.sources.iter().map(|s| s.len()).sum();
        total - self.n_deletes
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

struct LogScan<'a> {
    log: &'a DatasetLog,
    chunk: usize,
    inner: Option<Box<dyn RecordScan + 'a>>,
    pending_deletes: HashMap<Vec<u8>, u64>,
    unmatched: u64,
    buf: Vec<u8>,
}

impl LogScan<'_> {
    /// Build the scan-exhaustion error: name the first recorded deletion
    /// that matched nothing (in deletion-record order, so the report is
    /// deterministic) plus its leftover multiplicity and the total count.
    fn unmatched_error(&self, total: u64) -> DataError {
        let first = self
            .log
            .delete_order
            .iter()
            .find(|key| self.pending_deletes.contains_key(key.as_slice()));
        let detail = match first {
            Some(key) => {
                let count = self.pending_deletes[key.as_slice()];
                match codec::decode(&self.log.schema, key) {
                    Ok(r) => format!("; first unmatched record {r} (x{count} outstanding)"),
                    Err(_) => format!("; first unmatched key {key:02x?} (x{count} outstanding)"),
                }
            }
            None => String::new(),
        };
        DataError::Invalid(format!(
            "{total} recorded deletion(s) matched no record in the log{detail}"
        ))
    }
}

impl Iterator for LogScan<'_> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.inner.is_none() {
                if self.chunk >= self.log.sources.len() {
                    if self.unmatched > 0 {
                        let n = self.unmatched;
                        self.unmatched = 0;
                        return Some(Err(self.unmatched_error(n)));
                    }
                    return None;
                }
                match self.log.sources[self.chunk].scan() {
                    Ok(s) => self.inner = Some(s),
                    Err(e) => {
                        self.chunk = self.log.sources.len();
                        return Some(Err(e));
                    }
                }
                self.chunk += 1;
            }
            match self.inner.as_mut().expect("just ensured").next() {
                None => {
                    self.inner = None;
                    continue;
                }
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(r)) => {
                    if !self.pending_deletes.is_empty() {
                        self.buf.clear();
                        if let Err(e) = codec::encode_into(&self.log.schema, &r, &mut self.buf) {
                            return Some(Err(e));
                        }
                        if let Some(count) = self.pending_deletes.get_mut(self.buf.as_slice()) {
                            *count -= 1;
                            self.unmatched -= 1;
                            if *count == 0 {
                                self.pending_deletes.remove(self.buf.as_slice());
                            }
                            continue; // logically deleted
                        }
                    }
                    return Some(Ok(r));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::MemoryDataset;
    use crate::record::Field;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::shared(vec![Attribute::numeric("x")], 2).unwrap()
    }

    fn rec(x: f64) -> Record {
        Record::new(vec![Field::Num(x)], 0)
    }

    fn mem(xs: &[f64]) -> Box<MemoryDataset> {
        Box::new(MemoryDataset::new(
            schema(),
            xs.iter().map(|&x| rec(x)).collect(),
        ))
    }

    fn xs_of(log: &DatasetLog) -> Vec<i64> {
        let mut v: Vec<i64> = log
            .collect_records()
            .unwrap()
            .iter()
            .map(|r| r.num(0) as i64)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn base_only_passes_through() {
        let log = DatasetLog::new(mem(&[1.0, 2.0, 3.0]), IoStats::new());
        assert_eq!(log.len(), 3);
        assert_eq!(xs_of(&log), vec![1, 2, 3]);
    }

    #[test]
    fn insertions_concatenate() {
        let mut log = DatasetLog::new(mem(&[1.0]), IoStats::new());
        log.push_insertions(mem(&[2.0, 3.0])).unwrap();
        log.push_insertions(mem(&[4.0])).unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(xs_of(&log), vec![1, 2, 3, 4]);
        assert_eq!(log.n_chunks(), 3);
    }

    #[test]
    fn deletions_remove_by_content_with_multiplicity() {
        let mut log = DatasetLog::new(mem(&[5.0, 5.0, 5.0, 6.0]), IoStats::new());
        log.push_deletions(&*mem(&[5.0, 5.0])).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(xs_of(&log), vec![5, 6]);
        assert_eq!(log.n_deletions(), 2);
    }

    #[test]
    fn delete_then_insert_same_content_nets_out() {
        let mut log = DatasetLog::new(mem(&[1.0, 2.0]), IoStats::new());
        log.push_deletions(&*mem(&[2.0])).unwrap();
        log.push_insertions(mem(&[2.0])).unwrap();
        // One of the two content-equal 2.0 records is suppressed.
        assert_eq!(log.len(), 2);
        assert_eq!(xs_of(&log), vec![1, 2]);
    }

    #[test]
    fn unmatched_deletion_is_an_error_at_scan_end() {
        let mut log = DatasetLog::new(mem(&[1.0]), IoStats::new());
        log.push_deletions(&*mem(&[9.0])).unwrap();
        let results: Vec<_> = log.scan().unwrap().collect();
        assert!(results.last().unwrap().is_err());
    }

    /// Regression: the scan-exhaustion error is typed `Invalid` and names
    /// the first unmatched record (in deletion order) and the counts — not
    /// just an anonymous total.
    #[test]
    fn unmatched_deletion_error_names_first_unmatched_record() {
        let mut log = DatasetLog::new(mem(&[1.0, 2.0]), IoStats::new());
        // 2.0 matches; 9.0 (x2) and 7.0 do not. 9.0 was recorded first.
        log.push_deletions(&*mem(&[2.0, 9.0, 9.0])).unwrap();
        log.push_deletions(&*mem(&[7.0])).unwrap();
        let err = log
            .scan()
            .unwrap()
            .collect::<Vec<_>>()
            .pop()
            .unwrap()
            .unwrap_err();
        let DataError::Invalid(msg) = &err else {
            panic!("expected DataError::Invalid, got {err:?}");
        };
        assert!(msg.contains("3 recorded deletion(s)"), "total count: {msg}");
        assert!(
            msg.contains("[9]") && msg.contains("x2 outstanding"),
            "first unmatched record with multiplicity: {msg}"
        );
    }

    #[test]
    fn schema_mismatch_rejected() {
        let other =
            Schema::shared(vec![Attribute::numeric("x"), Attribute::numeric("y")], 2).unwrap();
        let chunk = Box::new(MemoryDataset::new(
            other,
            vec![Record::new(vec![Field::Num(0.0), Field::Num(0.0)], 0)],
        ));
        let mut log = DatasetLog::new(mem(&[1.0]), IoStats::new());
        assert!(log.push_insertions(chunk.clone()).is_err());
        assert!(log.push_deletions(&*chunk).is_err());
    }

    #[test]
    fn rescans_are_independent() {
        let mut log = DatasetLog::new(mem(&[1.0, 2.0]), IoStats::new());
        log.push_deletions(&*mem(&[1.0])).unwrap();
        assert_eq!(xs_of(&log), vec![2]);
        assert_eq!(
            xs_of(&log),
            vec![2],
            "second scan sees the same logical contents"
        );
    }

    #[test]
    fn compaction_materializes_net_contents() {
        let dir = std::env::temp_dir().join("boat-log-compact");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.boat");
        let mut log = DatasetLog::new(mem(&[1.0, 2.0, 3.0]), IoStats::new());
        log.push_insertions(mem(&[4.0, 5.0])).unwrap();
        log.push_deletions(&*mem(&[2.0, 5.0])).unwrap();
        let compacted = log.compact_to(&path, IoStats::new()).unwrap();
        assert_eq!(compacted.len(), 3);
        let mut xs: Vec<i64> = compacted
            .collect_records()
            .unwrap()
            .iter()
            .map(|r| r.num(0) as i64)
            .collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![1, 3, 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_scan_counts_one_logical_scan() {
        let stats = IoStats::new();
        let mut log = DatasetLog::new(mem(&[1.0]), stats.clone());
        log.push_insertions(mem(&[2.0])).unwrap();
        log.collect_records().unwrap();
        assert_eq!(stats.snapshot().scans, 1);
    }
}
