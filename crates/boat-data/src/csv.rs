//! CSV import.
//!
//! Real training databases arrive as delimited text; this module parses
//! them against a [`Schema`], either fully into memory or streamed straight
//! into a [`FileDataset`]. The parser handles RFC-4180-style quoting
//! (quoted fields, doubled quotes, delimiters inside quotes) on a single
//! line; values map to fields by schema position, with the class label as
//! the final column (or any column via [`CsvOptions::label_column`]).
//!
//! Categorical columns and the label accept either numeric codes or
//! arbitrary strings — strings are interned into per-column
//! [`CategoryDictionary`]s (first-seen order, capped at the schema's
//! cardinality), which the import returns so predictions can be mapped
//! back.

use crate::dataset::{FileDataset, FileDatasetWriter, MemoryDataset};
use crate::iostats::IoStats;
use crate::record::{Field, Record};
use crate::schema::{AttrType, Schema};
use crate::{DataError, Result};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

/// Options for CSV import.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Skip the first line.
    pub has_header: bool,
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Which column holds the class label. `None` = the last column.
    pub label_column: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: true,
            delimiter: ',',
            label_column: None,
        }
    }
}

/// String-to-code interning for one categorical column (or the label).
#[derive(Debug, Clone, Default)]
pub struct CategoryDictionary {
    codes: HashMap<String, u32>,
    names: Vec<String>,
}

impl CategoryDictionary {
    /// Code for `name`, interning it if new; errors past `cap`.
    fn intern(&mut self, name: &str, cap: u32, what: &str) -> Result<u32> {
        if let Some(&c) = self.codes.get(name) {
            return Ok(c);
        }
        let code = self.names.len() as u32;
        if code >= cap {
            return Err(DataError::Schema(format!(
                "{what}: more than {cap} distinct values (at {name:?})"
            )));
        }
        self.codes.insert(name.to_string(), code);
        self.names.push(name.to_string());
        Ok(code)
    }

    /// The interned name for `code`, if any.
    pub fn name(&self, code: u32) -> Option<&str> {
        self.names.get(code as usize).map(String::as_str)
    }

    /// The code for `name`, if interned.
    pub fn code(&self, name: &str) -> Option<u32> {
        self.codes.get(name).copied()
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Dictionaries produced by an import: one per categorical attribute (by
/// attribute index) plus one for the label.
#[derive(Debug, Clone, Default)]
pub struct CsvDictionaries {
    /// Per-attribute dictionaries (empty for numeric attributes and for
    /// categorical columns that used numeric codes directly).
    pub attributes: Vec<CategoryDictionary>,
    /// Label dictionary (empty if labels were numeric).
    pub label: CategoryDictionary,
}

/// Split one CSV line into fields, honoring quotes.
fn split_line(line: &str, delimiter: char) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(DataError::Corrupt("unterminated quoted CSV field".into()));
    }
    fields.push(field);
    Ok(fields)
}

struct RowParser {
    schema: Arc<Schema>,
    options: CsvOptions,
    dicts: CsvDictionaries,
}

impl RowParser {
    fn new(schema: Arc<Schema>, options: CsvOptions) -> Self {
        let dicts = CsvDictionaries {
            attributes: (0..schema.n_attributes())
                .map(|_| CategoryDictionary::default())
                .collect(),
            label: CategoryDictionary::default(),
        };
        RowParser {
            schema,
            options,
            dicts,
        }
    }

    fn parse(&mut self, line_no: usize, line: &str) -> Result<Record> {
        let cells = split_line(line, self.options.delimiter)?;
        let m = self.schema.n_attributes();
        if cells.len() != m + 1 {
            return Err(DataError::Corrupt(format!(
                "line {line_no}: {} fields, expected {} (attributes + label)",
                cells.len(),
                m + 1
            )));
        }
        let label_col = self.options.label_column.unwrap_or(m);
        if label_col > m {
            return Err(DataError::Invalid(format!(
                "label_column {label_col} out of range for {} columns",
                m + 1
            )));
        }
        let mut fields = Vec::with_capacity(m);
        let mut attr = 0usize;
        let mut label: Option<u16> = None;
        for (col, cell) in cells.iter().enumerate() {
            let cell = cell.trim();
            if col == label_col {
                let k = self.schema.n_classes() as u32;
                let code = match cell.parse::<u16>() {
                    Ok(v) if (v as usize) < self.schema.n_classes() => v,
                    _ => self.dicts.label.intern(cell, k, "label")? as u16,
                };
                label = Some(code);
                continue;
            }
            match self.schema.attribute(attr).ty() {
                AttrType::Numeric => {
                    let v: f64 = cell.parse().map_err(|_| {
                        DataError::Corrupt(format!(
                            "line {line_no}, column {col}: {cell:?} is not numeric"
                        ))
                    })?;
                    if !v.is_finite() {
                        return Err(DataError::Corrupt(format!(
                            "line {line_no}, column {col}: non-finite value"
                        )));
                    }
                    fields.push(Field::Num(v));
                }
                AttrType::Categorical { cardinality } => {
                    let code = match cell.parse::<u32>() {
                        Ok(v) if v < cardinality => v,
                        _ => self.dicts.attributes[attr].intern(
                            cell,
                            cardinality,
                            self.schema.attribute(attr).name(),
                        )?,
                    };
                    fields.push(Field::Cat(code));
                }
            }
            attr += 1;
        }
        Ok(Record::new(fields, label.expect("label column visited")))
    }
}

/// Read a CSV file fully into memory.
pub fn read_csv(
    path: impl AsRef<Path>,
    schema: Arc<Schema>,
    options: CsvOptions,
) -> Result<(MemoryDataset, CsvDictionaries)> {
    let file = std::fs::File::open(path)?;
    let mut parser = RowParser::new(schema.clone(), options);
    let mut records = Vec::new();
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if i == 0 && parser.options.has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        records.push(parser.parse(i + 1, &line)?);
    }
    Ok((MemoryDataset::new(schema, records), parser.dicts))
}

/// Stream a CSV file into an on-disk [`FileDataset`] (constant memory).
pub fn import_csv(
    csv_path: impl AsRef<Path>,
    out_path: impl AsRef<Path>,
    schema: Arc<Schema>,
    options: CsvOptions,
    stats: IoStats,
) -> Result<(FileDataset, CsvDictionaries)> {
    let file = std::fs::File::open(csv_path)?;
    let mut parser = RowParser::new(schema.clone(), options);
    let mut writer = FileDatasetWriter::create(out_path, schema, stats)?;
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if i == 0 && parser.options.has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        writer.append(&parser.parse(i + 1, &line)?)?;
    }
    Ok((writer.finish()?, parser.dicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::RecordSource;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::shared(
            vec![
                Attribute::numeric("age"),
                Attribute::categorical("city", 4),
                Attribute::numeric("income"),
            ],
            2,
        )
        .unwrap()
    }

    fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("boat-csv-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn reads_numeric_codes_and_strings() {
        let path = write_tmp(
            "basic.csv",
            "age,city,income,label\n34,berlin,52000,yes\n41,tokyo,61000,no\n29,berlin,38000,yes\n",
        );
        let (ds, dicts) = read_csv(&path, schema(), CsvOptions::default()).unwrap();
        assert_eq!(ds.len(), 3);
        let r = &ds.records()[0];
        assert_eq!(r.num(0), 34.0);
        assert_eq!(r.cat(1), 0); // berlin interned first
        assert_eq!(r.num(2), 52000.0);
        assert_eq!(r.label(), 0); // "yes" interned first
        assert_eq!(ds.records()[1].cat(1), 1); // tokyo
        assert_eq!(ds.records()[1].label(), 1); // no
        assert_eq!(ds.records()[2].cat(1), 0);
        assert_eq!(dicts.attributes[1].name(1), Some("tokyo"));
        assert_eq!(dicts.label.code("no"), Some(1));
    }

    #[test]
    fn numeric_category_codes_pass_through() {
        let path = write_tmp("codes.csv", "30,2,1000,1\n31,0,2000,0\n");
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let (ds, dicts) = read_csv(&path, schema(), opts).unwrap();
        assert_eq!(ds.records()[0].cat(1), 2);
        assert_eq!(ds.records()[0].label(), 1);
        assert!(dicts.attributes[1].is_empty(), "no interning needed");
    }

    #[test]
    fn quoted_fields_and_embedded_delimiters() {
        let path = write_tmp(
            "quotes.csv",
            "age,city,income,label\n34,\"san, francisco\",52000,\"yes\"\n35,\"ab\"\"cd\",1,no\n",
        );
        let (ds, dicts) = read_csv(&path, schema(), CsvOptions::default()).unwrap();
        assert_eq!(dicts.attributes[1].name(0), Some("san, francisco"));
        assert_eq!(dicts.attributes[1].name(1), Some("ab\"cd"));
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn label_column_override() {
        let path = write_tmp("labelfirst.csv", "1,30,2,1000\n0,31,0,2000\n");
        let opts = CsvOptions {
            has_header: false,
            label_column: Some(0),
            ..CsvOptions::default()
        };
        let (ds, _) = read_csv(&path, schema(), opts).unwrap();
        assert_eq!(ds.records()[0].label(), 1);
        assert_eq!(ds.records()[0].num(0), 30.0);
    }

    #[test]
    fn wrong_column_count_is_an_error_with_line_number() {
        let path = write_tmp("short.csv", "30,2,1000,1\n31,0\n");
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let err = read_csv(&path, schema(), opts).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn bad_number_is_an_error() {
        let path = write_tmp("badnum.csv", "abc,2,1000,1\n");
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        assert!(read_csv(&path, schema(), opts).is_err());
    }

    #[test]
    fn dictionary_overflow_is_an_error() {
        let path = write_tmp(
            "overflow.csv",
            "1,a,1,0\n1,b,1,0\n1,c,1,0\n1,d,1,0\n1,e,1,0\n",
        );
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let err = read_csv(&path, schema(), opts).unwrap_err();
        assert!(err.to_string().contains("city"), "{err}");
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let path = write_tmp("unterm.csv", "1,\"oops,1,0\n");
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        assert!(read_csv(&path, schema(), opts).is_err());
    }

    #[test]
    fn import_streams_to_a_file_dataset() {
        let csv = write_tmp(
            "streamed.csv",
            "age,city,income,label\n34,berlin,52000,yes\n41,tokyo,61000,no\n",
        );
        let out = std::env::temp_dir()
            .join("boat-csv-tests")
            .join("streamed.boat");
        let (ds, dicts) =
            import_csv(&csv, &out, schema(), CsvOptions::default(), IoStats::new()).unwrap();
        assert_eq!(ds.len(), 2);
        let records = ds.collect_records().unwrap();
        assert_eq!(records[1].cat(1), 1);
        assert_eq!(dicts.label.len(), 2);
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = write_tmp("blank.csv", "30,2,1000,1\n\n31,0,2000,0\n\n");
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let (ds, _) = read_csv(&path, schema(), opts).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn semicolon_delimiter() {
        let path = write_tmp("semi.csv", "30;2;1000;1\n");
        let opts = CsvOptions {
            has_header: false,
            delimiter: ';',
            ..CsvOptions::default()
        };
        let (ds, _) = read_csv(&path, schema(), opts).unwrap();
        assert_eq!(ds.records()[0].num(2), 1000.0);
    }
}
