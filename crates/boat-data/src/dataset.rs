//! Streaming record sources.
//!
//! Everything BOAT and the baselines do with the training database goes
//! through [`RecordSource::scan`]: a resettable, sequential, *counted* scan.
//! Two concrete sources live here — [`MemoryDataset`] (samples, tests) and
//! [`FileDataset`] (the on-disk training database) — and other crates add
//! more (the synthetic generator and the base-plus-delta [`crate::log`]).

use crate::codec;
use crate::iostats::{IoSnapshot, IoStats};
use crate::partition::RowRange;
use crate::record::Record;
use crate::schema::{AttrType, Attribute, Schema};
use crate::{DataError, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A streaming scan over records. The blanket impl makes any
/// `Iterator<Item = Result<Record>>` a scan.
pub trait RecordScan: Iterator<Item = Result<Record>> {}
impl<T: Iterator<Item = Result<Record>>> RecordScan for T {}

/// A dataset that can be sequentially scanned any number of times.
pub trait RecordSource {
    /// The schema all records conform to.
    fn schema(&self) -> &Arc<Schema>;

    /// Begin a fresh sequential scan. Each call increments the source's
    /// scan counter.
    fn scan(&self) -> Result<Box<dyn RecordScan + '_>>;

    /// Number of records.
    fn len(&self) -> u64;

    /// Whether the source has no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The I/O counter handle this source reports into.
    fn stats(&self) -> &IoStats;

    /// Collect every record into memory. Intended for small sources (node
    /// families below the in-memory threshold, samples, tests).
    fn collect_records(&self) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for r in self.scan()? {
            out.push(r?);
        }
        Ok(out)
    }

    /// Begin a fresh scan delivered as fixed-size [`RecordChunk`]s (the
    /// last chunk may be short). Chunks carry their scan-order `index` so
    /// consumers that process them out of order — e.g. a parallel cleanup
    /// scan — can still apply order-sensitive state deterministically.
    ///
    /// The default implementation slices [`RecordSource::scan`]; sources
    /// with a natural chunk structure (or tests that want to permute
    /// delivery order) may override it. Counts as one scan.
    fn scan_chunks(&self, chunk_size: usize) -> Result<Box<dyn ChunkScan + '_>> {
        Ok(Box::new(Chunks::new(
            self.scan()?,
            self.stats().clone(),
            chunk_size,
        )))
    }

    /// Begin a fresh scan over only the rows in `range` (scan-order
    /// positions, clamped to the source length). Counts as one scan.
    ///
    /// The default implementation skips the prefix of a full
    /// [`RecordSource::scan`] record by record — correct for any source,
    /// but linear in `range.start`. Seekable sources ([`FileDataset`]) and
    /// sliceable ones ([`MemoryDataset`]) override it with O(1) positioning,
    /// which is what makes per-shard scans of a partitioned fit start in
    /// the middle of a 100M-row file without re-reading the prefix.
    fn scan_range(&self, range: RowRange) -> Result<Box<dyn RecordScan + '_>> {
        let mut scan = self.scan()?;
        for _ in 0..range.start.min(self.len()) {
            match scan.next() {
                Some(Ok(_)) => {}
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(Box::new(scan.take(range.len() as usize)))
    }

    /// Begin a chunked scan over only the rows in `range`, numbering chunks
    /// as the full [`RecordSource::scan_chunks`] would: the first chunk gets
    /// index `range.start / chunk_size` and `first_record = range.start`.
    ///
    /// When `range.start` is a multiple of `chunk_size` (which the
    /// [`crate::partition::RowRangePartitioner`] guarantees), the chunks a
    /// shard sees are *identical* — same index, same rows — to the
    /// corresponding chunks of a serial full scan, so order-sensitive
    /// consumers can merge shard outputs by chunk index. Counts as one scan.
    fn scan_chunks_range(
        &self,
        chunk_size: usize,
        range: RowRange,
    ) -> Result<Box<dyn ChunkScan + '_>> {
        let chunk_size = chunk_size.max(1);
        let first_index = (range.start / chunk_size as u64) as usize;
        Ok(Box::new(Chunks::with_origin(
            self.scan_range(range)?,
            self.stats().clone(),
            chunk_size,
            first_index,
            range.start,
        )))
    }
}

// ---------------------------------------------------------------------------
// Chunked scans
// ---------------------------------------------------------------------------

/// A contiguous run of records from a chunked scan, tagged with its position
/// so out-of-order consumers can restore scan order.
#[derive(Debug, Clone)]
pub struct RecordChunk {
    /// 0-based position of this chunk in scan order.
    pub index: usize,
    /// Scan-order index of the first record in this chunk.
    pub first_record: u64,
    /// The records, in scan order.
    pub records: Vec<Record>,
    /// I/O performed while producing this chunk (a snapshot delta over the
    /// source's counters; exact when the producing thread is the only one
    /// driving this source, which is how the cleanup scan uses it).
    pub io: IoSnapshot,
}

impl RecordChunk {
    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the chunk holds no records (never produced by [`Chunks`]).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A streaming scan over chunks. The blanket impl makes any
/// `Iterator<Item = Result<RecordChunk>>` a chunk scan.
pub trait ChunkScan: Iterator<Item = Result<RecordChunk>> {}
impl<T: Iterator<Item = Result<RecordChunk>>> ChunkScan for T {}

/// Adapter slicing any [`RecordScan`] into fixed-size [`RecordChunk`]s;
/// backs the default [`RecordSource::scan_chunks`].
pub struct Chunks<'a> {
    inner: Box<dyn RecordScan + 'a>,
    stats: IoStats,
    chunk_size: usize,
    index: usize,
    first_record: u64,
    done: bool,
}

impl<'a> Chunks<'a> {
    /// Wrap `scan`, reporting per-chunk I/O deltas against `stats`.
    /// `chunk_size` is clamped to at least 1.
    pub fn new(scan: Box<dyn RecordScan + 'a>, stats: IoStats, chunk_size: usize) -> Self {
        Self::with_origin(scan, stats, chunk_size, 0, 0)
    }

    /// Like [`Chunks::new`] but numbering chunks from `first_index` /
    /// `first_record` instead of zero — the chunk coordinates a range-scan
    /// of a shard would have had inside a full serial scan.
    pub fn with_origin(
        scan: Box<dyn RecordScan + 'a>,
        stats: IoStats,
        chunk_size: usize,
        first_index: usize,
        first_record: u64,
    ) -> Self {
        Chunks {
            inner: scan,
            stats,
            chunk_size: chunk_size.max(1),
            index: first_index,
            first_record,
            done: false,
        }
    }
}

impl Iterator for Chunks<'_> {
    type Item = Result<RecordChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let before = self.stats.snapshot();
        let mut records = Vec::with_capacity(self.chunk_size);
        while records.len() < self.chunk_size {
            match self.inner.next() {
                None => {
                    self.done = true;
                    break;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(r)) => records.push(r),
            }
        }
        if records.is_empty() {
            return None;
        }
        let io = self.stats.snapshot() - before;
        let chunk = RecordChunk {
            index: self.index,
            first_record: self.first_record,
            records,
            io,
        };
        self.index += 1;
        self.first_record += chunk.records.len() as u64;
        Some(Ok(chunk))
    }
}

// ---------------------------------------------------------------------------
// In-memory dataset
// ---------------------------------------------------------------------------

/// A fully in-memory dataset. Scans are counted like file scans so that
/// algorithms behave identically regardless of backing store.
#[derive(Debug, Clone)]
pub struct MemoryDataset {
    schema: Arc<Schema>,
    records: Vec<Record>,
    stats: IoStats,
}

impl MemoryDataset {
    /// Wrap records (assumed schema-conformant) in a dataset.
    pub fn new(schema: Arc<Schema>, records: Vec<Record>) -> Self {
        MemoryDataset {
            schema,
            records,
            stats: IoStats::new(),
        }
    }

    /// Like [`MemoryDataset::new`] but reporting into an existing counter
    /// handle.
    pub fn with_stats(schema: Arc<Schema>, records: Vec<Record>, stats: IoStats) -> Self {
        MemoryDataset {
            schema,
            records,
            stats,
        }
    }

    /// Validate every record against the schema, then wrap.
    pub fn validated(schema: Arc<Schema>, records: Vec<Record>) -> Result<Self> {
        for r in &records {
            r.validate(&schema)?;
        }
        Ok(Self::new(schema, records))
    }

    /// Direct slice access (no scan accounting); for in-memory algorithms.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consume the dataset, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl RecordSource for MemoryDataset {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let width = self.schema.record_width() as u64;
        let stats = self.stats.clone();
        Ok(Box::new(self.records.iter().map(move |r| {
            stats.record_read(1, width);
            Ok(r.clone())
        })))
    }

    fn len(&self) -> u64 {
        self.records.len() as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn scan_range(&self, range: RowRange) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let start = (range.start.min(self.len())) as usize;
        let end = (range.end.min(self.len())) as usize;
        let width = self.schema.record_width() as u64;
        let stats = self.stats.clone();
        Ok(Box::new(self.records[start..end.max(start)].iter().map(
            move |r| {
                stats.record_read(1, width);
                Ok(r.clone())
            },
        )))
    }
}

// ---------------------------------------------------------------------------
// On-disk dataset
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 8] = b"BOATDS01";

/// Largest attribute count the header format round-trips. The writer and
/// reader share this bound: anything the writer accepts, the reader accepts
/// back. (It also keeps a corrupt header from provoking a giant allocation.)
const MAX_HEADER_ATTRS: usize = 1 << 20;

fn write_schema(w: &mut impl Write, schema: &Schema) -> Result<()> {
    // Validate every narrowing cast *before* writing a byte: a silently
    // truncated count or length produces a header that misparses on
    // read-back (the length prefixes double as field delimiters).
    if schema.n_classes() > u16::MAX as usize {
        return Err(DataError::Invalid(format!(
            "cannot serialize schema: {} classes exceeds the u16 header field",
            schema.n_classes()
        )));
    }
    if schema.n_attributes() > MAX_HEADER_ATTRS {
        return Err(DataError::Invalid(format!(
            "cannot serialize schema: {} attributes exceeds the header limit of {MAX_HEADER_ATTRS}",
            schema.n_attributes()
        )));
    }
    w.write_all(&(schema.n_classes() as u16).to_le_bytes())?;
    w.write_all(&(schema.n_attributes() as u32).to_le_bytes())?;
    for attr in schema.attributes() {
        match attr.ty() {
            AttrType::Numeric => {
                w.write_all(&[0u8])?;
                w.write_all(&0u32.to_le_bytes())?;
            }
            AttrType::Categorical { cardinality } => {
                w.write_all(&[1u8])?;
                w.write_all(&cardinality.to_le_bytes())?;
            }
        }
        let name = attr.name().as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(DataError::Invalid(format!(
                "cannot serialize schema: attribute name {:?}… is {} bytes, limit {}",
                &attr.name()[..16.min(attr.name().len())],
                name.len(),
                u16::MAX
            )));
        }
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
    }
    Ok(())
}

fn read_exact_buf<const N: usize>(r: &mut impl Read) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_schema(r: &mut impl Read) -> Result<Schema> {
    let n_classes = u16::from_le_bytes(read_exact_buf::<2>(r)?);
    let n_attrs = u32::from_le_bytes(read_exact_buf::<4>(r)?);
    if n_attrs as usize > MAX_HEADER_ATTRS {
        return Err(DataError::Corrupt(format!(
            "implausible attribute count {n_attrs}"
        )));
    }
    let mut attrs = Vec::with_capacity(n_attrs as usize);
    for _ in 0..n_attrs {
        let tag = read_exact_buf::<1>(r)?[0];
        let cardinality = u32::from_le_bytes(read_exact_buf::<4>(r)?);
        let name_len = u16::from_le_bytes(read_exact_buf::<2>(r)?) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| DataError::Corrupt("attribute name is not UTF-8".into()))?;
        attrs.push(match tag {
            0 => Attribute::numeric(name),
            1 => Attribute::categorical(name, cardinality),
            t => return Err(DataError::Corrupt(format!("unknown attribute tag {t}"))),
        });
    }
    Schema::new(attrs, n_classes)
}

/// A fixed-width binary dataset file:
/// `magic | schema | record-count | records…`.
#[derive(Debug, Clone)]
pub struct FileDataset {
    path: PathBuf,
    schema: Arc<Schema>,
    n_records: u64,
    data_offset: u64,
    stats: IoStats,
}

impl FileDataset {
    /// Open an existing dataset file.
    pub fn open(path: impl AsRef<Path>, stats: IoStats) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let magic = read_exact_buf::<8>(&mut reader)?;
        if &magic != MAGIC {
            return Err(DataError::Corrupt(format!(
                "bad magic in {}: expected BOATDS01",
                path.display()
            )));
        }
        let schema = Arc::new(read_schema(&mut reader)?);
        let n_records = u64::from_le_bytes(read_exact_buf::<8>(&mut reader)?);
        let data_offset = reader.stream_position()?;
        let expected = data_offset + n_records * schema.record_width() as u64;
        let actual = std::fs::metadata(&path)?.len();
        if actual != expected {
            return Err(DataError::Corrupt(format!(
                "{}: file is {actual} bytes, header implies {expected}",
                path.display()
            )));
        }
        Ok(FileDataset {
            path,
            schema,
            n_records,
            data_offset,
            stats,
        })
    }

    /// Materialize any source into a new dataset file at `path`.
    pub fn create_from(
        path: impl AsRef<Path>,
        source: &dyn RecordSource,
        stats: IoStats,
    ) -> Result<Self> {
        let mut writer = FileDatasetWriter::create(path, source.schema().clone(), stats)?;
        for r in source.scan()? {
            writer.append(&r?)?;
        }
        writer.finish()
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl RecordSource for FileDataset {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let mut reader = BufReader::with_capacity(1 << 18, File::open(&self.path)?);
        reader.seek(SeekFrom::Start(self.data_offset))?;
        Ok(Box::new(FileScan {
            reader,
            schema: self.schema.clone(),
            remaining: self.n_records,
            buf: vec![0u8; self.schema.record_width()],
            stats: self.stats.clone(),
        }))
    }

    fn len(&self) -> u64 {
        self.n_records
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn scan_range(&self, range: RowRange) -> Result<Box<dyn RecordScan + '_>> {
        self.stats.record_scan();
        let start = range.start.min(self.n_records);
        let end = range.end.min(self.n_records).max(start);
        let width = self.schema.record_width() as u64;
        let mut reader = BufReader::with_capacity(1 << 18, File::open(&self.path)?);
        reader.seek(SeekFrom::Start(self.data_offset + start * width))?;
        Ok(Box::new(FileScan {
            reader,
            schema: self.schema.clone(),
            remaining: end - start,
            buf: vec![0u8; self.schema.record_width()],
            stats: self.stats.clone(),
        }))
    }
}

struct FileScan {
    reader: BufReader<File>,
    schema: Arc<Schema>,
    remaining: u64,
    buf: Vec<u8>,
    stats: IoStats,
}

impl Iterator for FileScan {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if let Err(e) = self.reader.read_exact(&mut self.buf) {
            self.remaining = 0;
            return Some(Err(e.into()));
        }
        self.stats.record_read(1, self.buf.len() as u64);
        Some(codec::decode(&self.schema, &self.buf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Incremental writer for [`FileDataset`] files.
pub struct FileDatasetWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    schema: Arc<Schema>,
    n_records: u64,
    count_offset: u64,
    buf: Vec<u8>,
    stats: IoStats,
}

impl FileDatasetWriter {
    /// Create (truncating) a dataset file at `path`.
    pub fn create(path: impl AsRef<Path>, schema: Arc<Schema>, stats: IoStats) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut writer = BufWriter::with_capacity(1 << 18, File::create(&path)?);
        writer.write_all(MAGIC)?;
        write_schema(&mut writer, &schema)?;
        let count_offset = writer.stream_position()?;
        writer.write_all(&0u64.to_le_bytes())?; // patched by finish()
        Ok(FileDatasetWriter {
            path,
            writer,
            schema,
            n_records: 0,
            count_offset,
            buf: Vec::new(),
            stats,
        })
    }

    /// The schema records must conform to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append one record.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        self.buf.clear();
        codec::encode_into(&self.schema, record, &mut self.buf)?;
        self.writer.write_all(&self.buf)?;
        self.n_records += 1;
        self.stats.record_write(1, self.buf.len() as u64);
        Ok(())
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Patch the record count into the header and open the finished dataset.
    pub fn finish(mut self) -> Result<FileDataset> {
        self.writer.flush()?;
        let mut file = self
            .writer
            .into_inner()
            .map_err(|e| DataError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(self.count_offset))?;
        file.write_all(&self.n_records.to_le_bytes())?;
        file.sync_data()?;
        drop(file);
        FileDataset::open(&self.path, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Field;

    fn schema() -> Arc<Schema> {
        Schema::shared(
            vec![Attribute::numeric("x"), Attribute::categorical("c", 4)],
            2,
        )
        .unwrap()
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(
                    vec![Field::Num(i as f64 * 0.5), Field::Cat((i % 4) as u32)],
                    (i % 2) as u16,
                )
            })
            .collect()
    }

    #[test]
    fn memory_dataset_scan_roundtrip_and_counts() {
        let ds = MemoryDataset::new(schema(), records(10));
        assert_eq!(ds.len(), 10);
        let collected = ds.collect_records().unwrap();
        assert_eq!(collected, records(10));
        let snap = ds.stats().snapshot();
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.records_read, 10);
    }

    #[test]
    fn memory_dataset_validated_rejects_bad_records() {
        let bad = vec![Record::new(vec![Field::Num(1.0), Field::Cat(9)], 0)];
        assert!(MemoryDataset::validated(schema(), bad).is_err());
    }

    #[test]
    fn file_dataset_roundtrip() {
        let dir = std::env::temp_dir().join("boat-data-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.boat");
        let stats = IoStats::new();
        let mut w = FileDatasetWriter::create(&path, schema(), stats.clone()).unwrap();
        for r in records(100) {
            w.append(&r).unwrap();
        }
        let ds = w.finish().unwrap();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.collect_records().unwrap(), records(100));
        // one scan; 100 records of width 14 read
        let snap = stats.snapshot();
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.records_read, 100);
        assert_eq!(snap.bytes_read, 100 * ds.schema().record_width() as u64);
        assert_eq!(snap.records_written, 100);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_dataset_rescan_restarts() {
        let dir = std::env::temp_dir().join("boat-data-test-rescan");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.boat");
        let mut w = FileDatasetWriter::create(&path, schema(), IoStats::new()).unwrap();
        for r in records(5) {
            w.append(&r).unwrap();
        }
        let ds = w.finish().unwrap();
        for _ in 0..3 {
            assert_eq!(ds.collect_records().unwrap().len(), 5);
        }
        assert_eq!(ds.stats().snapshot().scans, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic() {
        let dir = std::env::temp_dir().join("boat-data-test-magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.boat");
        std::fs::write(&path, b"NOTBOAT!rest").unwrap();
        assert!(FileDataset::open(&path, IoStats::new()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = std::env::temp_dir().join("boat-data-test-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.boat");
        let mut w = FileDatasetWriter::create(&path, schema(), IoStats::new()).unwrap();
        for r in records(8) {
            w.append(&r).unwrap();
        }
        let ds = w.finish().unwrap();
        let full = std::fs::metadata(ds.path()).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        assert!(FileDataset::open(&path, IoStats::new()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_from_materializes_a_source() {
        let dir = std::env::temp_dir().join("boat-data-test-createfrom");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("copy.boat");
        let mem = MemoryDataset::new(schema(), records(17));
        let ds = FileDataset::create_from(&path, &mem, IoStats::new()).unwrap();
        assert_eq!(ds.len(), 17);
        assert_eq!(ds.collect_records().unwrap(), records(17));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_dataset_is_valid() {
        let dir = std::env::temp_dir().join("boat-data-test-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.boat");
        let w = FileDatasetWriter::create(&path, schema(), IoStats::new()).unwrap();
        assert!(w.is_empty());
        let ds = w.finish().unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.collect_records().unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_scan_covers_source_in_order() {
        let ds = MemoryDataset::new(schema(), records(10));
        let chunks: Vec<_> = ds
            .scan_chunks(3)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(chunks.len(), 4);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        assert_eq!(
            chunks.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            chunks.iter().map(|c| c.first_record).collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
        let flat: Vec<Record> = chunks.into_iter().flat_map(|c| c.records).collect();
        assert_eq!(flat, records(10));
        // One scan counted, same as a plain scan.
        assert_eq!(ds.stats().snapshot().scans, 1);
    }

    #[test]
    fn chunked_scan_reports_per_chunk_io() {
        let ds = MemoryDataset::new(schema(), records(7));
        let width = ds.schema().record_width() as u64;
        let chunks: Vec<_> = ds
            .scan_chunks(4)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].io.records_read, 4);
        assert_eq!(chunks[0].io.bytes_read, 4 * width);
        assert_eq!(chunks[1].io.records_read, 3);
        assert_eq!(chunks[1].io.bytes_read, 3 * width);
    }

    #[test]
    fn chunked_scan_on_file_dataset_matches_memory() {
        let dir = std::env::temp_dir().join("boat-data-test-chunks");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.boat");
        let mut w = FileDatasetWriter::create(&path, schema(), IoStats::new()).unwrap();
        for r in records(25) {
            w.append(&r).unwrap();
        }
        let ds = w.finish().unwrap();
        let flat: Vec<Record> = ds
            .scan_chunks(8)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap()
            .into_iter()
            .flat_map(|c| c.records)
            .collect();
        assert_eq!(flat, records(25));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_scan_of_empty_source_yields_no_chunks() {
        let ds = MemoryDataset::new(schema(), vec![]);
        assert_eq!(ds.scan_chunks(4).unwrap().count(), 0);
    }

    #[test]
    fn chunk_size_zero_is_clamped() {
        let ds = MemoryDataset::new(schema(), records(3));
        let chunks: Vec<_> = ds
            .scan_chunks(0)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scan_range_slices_memory_and_file_identically() {
        let dir = std::env::temp_dir().join("boat-data-test-range");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.boat");
        let mem = MemoryDataset::new(schema(), records(30));
        let mut w = FileDatasetWriter::create(&path, schema(), IoStats::new()).unwrap();
        for r in records(30) {
            w.append(&r).unwrap();
        }
        let file = w.finish().unwrap();
        for (start, end) in [(0u64, 30u64), (8, 24), (29, 30), (12, 12), (24, 99)] {
            let range = RowRange { start, end };
            let from_mem: Vec<Record> = mem
                .scan_range(range)
                .unwrap()
                .collect::<Result<Vec<_>>>()
                .unwrap();
            let from_file: Vec<Record> = file
                .scan_range(range)
                .unwrap()
                .collect::<Result<Vec<_>>>()
                .unwrap();
            let want = &records(30)[start as usize..(end.min(30)).max(start) as usize];
            assert_eq!(from_mem, want, "memory range {start}..{end}");
            assert_eq!(from_file, want, "file range {start}..{end}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_range_file_reads_only_the_range() {
        let dir = std::env::temp_dir().join("boat-data-test-range-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ri.boat");
        let stats = IoStats::new();
        let mut w = FileDatasetWriter::create(&path, schema(), stats.clone()).unwrap();
        for r in records(50) {
            w.append(&r).unwrap();
        }
        let ds = w.finish().unwrap();
        let before = stats.snapshot();
        let n = ds
            .scan_range(RowRange { start: 40, end: 50 })
            .unwrap()
            .count();
        assert_eq!(n, 10);
        let delta = stats.snapshot() - before;
        assert_eq!(delta.records_read, 10, "seek must skip the prefix");
        assert_eq!(delta.scans, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_chunks_range_keeps_global_chunk_coordinates() {
        let ds = MemoryDataset::new(schema(), records(20));
        // Second shard of a chunk_size-3 partition: rows 9..20.
        let chunks: Vec<_> = ds
            .scan_chunks_range(3, RowRange { start: 9, end: 20 })
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(
            chunks.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(
            chunks.iter().map(|c| c.first_record).collect::<Vec<_>>(),
            vec![9, 12, 15, 18]
        );
        // Identical to the same chunks of a full serial scan.
        let serial: Vec<_> = ds
            .scan_chunks(3)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        for c in &chunks {
            assert_eq!(c.records, serial[c.index].records);
        }
    }

    #[test]
    fn default_scan_range_skips_by_reading() {
        // DatasetLog-style sources fall back to the skip-based default; it
        // must deliver the same rows as the overrides.
        struct Plain(MemoryDataset);
        impl RecordSource for Plain {
            fn schema(&self) -> &Arc<Schema> {
                self.0.schema()
            }
            fn scan(&self) -> Result<Box<dyn RecordScan + '_>> {
                self.0.scan()
            }
            fn len(&self) -> u64 {
                self.0.len()
            }
            fn stats(&self) -> &IoStats {
                self.0.stats()
            }
        }
        let src = Plain(MemoryDataset::new(schema(), records(12)));
        let got: Vec<Record> = src
            .scan_range(RowRange { start: 5, end: 9 })
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(got, records(12)[5..9]);
    }

    #[test]
    fn writer_rejects_overlong_attribute_name_with_typed_error() {
        // Regression: the name length used to be cast to u16 after an
        // untyped check; an oversized name must fail creation with
        // DataError::Invalid, not write a misparsing header.
        let long = "n".repeat(u16::MAX as usize + 1);
        let schema = Schema::shared(vec![Attribute::numeric(long)], 2).unwrap();
        let dir = std::env::temp_dir().join("boat-data-test-longname");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ln.boat");
        match FileDatasetWriter::create(&path, schema, IoStats::new()) {
            Err(DataError::Invalid(msg)) => assert!(msg.contains("name")),
            Err(other) => panic!("expected DataError::Invalid, got {other:?}"),
            Ok(_) => panic!("expected DataError::Invalid, got Ok"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_roundtrips_maximum_length_attribute_name() {
        // The boundary case must keep working: exactly u16::MAX bytes.
        let name = "m".repeat(u16::MAX as usize);
        let schema = Schema::shared(vec![Attribute::numeric(name)], 2).unwrap();
        let dir = std::env::temp_dir().join("boat-data-test-maxname");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mx.boat");
        let w = FileDatasetWriter::create(&path, schema.clone(), IoStats::new()).unwrap();
        let ds = w.finish().unwrap();
        assert_eq!(**ds.schema(), *schema);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_implausible_attribute_count() {
        // Everything write_schema accepts, read_schema must accept back:
        // the writer enforces the reader's MAX_HEADER_ATTRS cap up front.
        let attrs: Vec<Attribute> = (0..MAX_HEADER_ATTRS + 1)
            .map(|i| Attribute::numeric(format!("a{i}")))
            .collect();
        let schema = Schema::shared(attrs, 2).unwrap();
        let mut sink = Vec::new();
        match write_schema(&mut sink, &schema) {
            Err(DataError::Invalid(msg)) => assert!(msg.contains("attributes")),
            other => panic!("expected DataError::Invalid, got {other:?}"),
        }
    }

    #[test]
    fn schema_header_roundtrips_exotic_names() {
        let schema = Schema::shared(
            vec![
                Attribute::numeric("日本語 name"),
                Attribute::categorical("c-2", 64),
            ],
            7,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("boat-data-test-names");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("n.boat");
        let w = FileDatasetWriter::create(&path, schema.clone(), IoStats::new()).unwrap();
        let ds = w.finish().unwrap();
        assert_eq!(**ds.schema(), *schema);
        std::fs::remove_file(&path).unwrap();
    }
}
